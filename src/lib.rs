//! # recopack — optimal FPGA module placement with temporal precedence constraints
//!
//! A faithful, production-quality reproduction of Fekete, Köhler & Teich,
//! *"Optimal FPGA Module Placement with Temporal Precedence Constraints"*
//! (DATE 2001): hardware modules on a partially reconfigurable FPGA are
//! three-dimensional boxes in space-time, and optimal placement becomes an
//! exact 3D orthogonal packing problem solved through the *packing class*
//! characterization, extended with Gallai-style implication machinery to
//! honor precedence (data-dependency) constraints.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`model`] — tasks, chips, instances, schedules, placements, verifier,
//!   and the paper's benchmark instances (DE, H.261 video codec);
//! * [`solver`] — the exact packing-class solvers: OPP (feasibility),
//!   BMP (minimal chip), SPP (minimal makespan), fixed-schedule variants,
//!   and Pareto-front enumeration;
//! * [`bounds`] — fast lower bounds (volume, dual feasible functions,
//!   precedence-aware bounds) used to refute infeasible instances early;
//! * [`heur`] — list-scheduling heuristics used to confirm feasible
//!   instances early;
//! * [`baseline`] — a naive geometric branch-and-bound placer, the
//!   comparison point the paper argues against;
//! * [`graph`] / [`order`] — the graph-theoretic substrates (chordality,
//!   cliques, comparability graphs, transitive orientation, interval orders).
//!
//! # Quickstart
//!
//! ```
//! use recopack::model::{Instance, Chip, Task};
//! use recopack::solver::{Opp, SolveOutcome};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two 2x2 modules running 2 cycles each, second depends on the first.
//! let mut instance = Instance::builder()
//!     .chip(Chip::new(2, 2))
//!     .horizon(4)
//!     .task(Task::new("a", 2, 2, 2))
//!     .task(Task::new("b", 2, 2, 2))
//!     .precedence("a", "b")
//!     .build()?;
//! instance = instance.with_transitive_closure();
//!
//! let outcome = Opp::new(&instance).solve();
//! match outcome {
//!     SolveOutcome::Feasible(placement) => {
//!         assert!(placement.verify(&instance).is_ok());
//!     }
//!     SolveOutcome::Infeasible(_) => unreachable!("serial schedule fits"),
//!     SolveOutcome::ResourceLimit(limit) => unreachable!("tiny instance hit the {limit}"),
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use recopack_baseline as baseline;
pub use recopack_bounds as bounds;
pub use recopack_core as solver;
pub use recopack_graph as graph;
pub use recopack_heur as heur;
pub use recopack_model as model;
pub use recopack_order as order;
