//! A domain-specific scenario beyond the paper's benchmarks: a streaming
//! DSP front-end (windowing → FIR bank → FFT → feature extraction) mapped
//! onto a partially reconfigurable FPGA. Demonstrates the full workflow:
//! model, explore the area/time tradeoff, inspect the best schedule, and
//! export the instance in the text format for the `recopack` CLI.
//!
//! Run with: `cargo run --release --example filter_bank`

use recopack::model::{format, render, Chip, Instance, Task};
use recopack::solver::{pareto_front, SolverConfig};

fn build_instance() -> Instance {
    // Module library: a window unit (needs loading its coefficient ROM:
    // 2 cycles of reconfiguration), four FIR lanes, one shared FFT core,
    // and a small feature extractor.
    let window = Task::new("window", 8, 4, 2).with_reconfiguration(2);
    let fir = |k: usize| Task::new(format!("fir{k}"), 6, 6, 4);
    let fft = Task::new("fft", 12, 12, 6).with_reconfiguration(2);
    let features = Task::new("features", 8, 2, 2);

    let mut builder = Instance::builder()
        .chip(Chip::square(1)) // re-targeted by the Pareto sweep
        .horizon(1)
        .task(window)
        .task(fft)
        .task(features);
    for k in 0..4 {
        builder = builder
            .task(fir(k))
            .precedence("window", format!("fir{k}"))
            .precedence(format!("fir{k}"), "fft");
    }
    builder
        .precedence("fft", "features")
        .build()
        .expect("the filter bank is a valid instance")
}

fn main() {
    let instance = build_instance().with_transitive_closure();
    println!(
        "filter bank: {} tasks, {} dependency arcs, critical path {} cycles\n",
        instance.task_count(),
        instance.precedence().arc_count(),
        instance.critical_path_length()
    );

    let front =
        pareto_front(&instance, &SolverConfig::default()).expect("no resource limits configured");
    println!("Pareto-optimal implementations:");
    for p in &front {
        println!(
            "  chip {:>2}x{:<2}  =>  {:>2} cycles",
            p.side, p.side, p.makespan
        );
    }

    let best = front.last().expect("nonempty front");
    println!(
        "\nschedule at the fastest point ({}x{}):",
        best.side, best.side
    );
    let target = instance
        .clone()
        .with_chip(Chip::square(best.side))
        .with_horizon(best.makespan);
    best.placement
        .verify(&target)
        .expect("Pareto witnesses always verify");
    println!("{}", render::gantt(&best.placement, &target));

    println!("instance file (feed to `recopack spp -`):\n");
    print!("{}", format::format_instance(&target));
}
