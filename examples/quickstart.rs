//! Quickstart: model a tiny reconfigurable design and solve it exactly.
//!
//! Run with: `cargo run --release --example quickstart`

use recopack::model::{Chip, Instance, Task};
use recopack::solver::{Opp, SolveOutcome, Spp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 8x8-cell FPGA runs four modules; the filter depends on both
    // multipliers, and the output stage depends on the filter.
    let instance = Instance::builder()
        .chip(Chip::square(8))
        .horizon(10)
        .task(Task::new("mul_a", 4, 4, 3))
        .task(Task::new("mul_b", 4, 4, 3))
        .task(Task::new("filter", 8, 4, 2))
        .task(Task::new("output", 8, 2, 1))
        .precedence("mul_a", "filter")
        .precedence("mul_b", "filter")
        .precedence("filter", "output")
        .build()?
        .with_transitive_closure();

    // 1. Decision: does everything fit in 10 cycles?
    match Opp::new(&instance).solve() {
        SolveOutcome::Feasible(placement) => {
            placement.verify(&instance)?;
            println!("feasible within {} cycles:", instance.horizon());
            for (id, b) in placement.boxes().iter().enumerate() {
                println!(
                    "  {:<8} at (x={}, y={}) cycles [{}, {})",
                    instance.task(id).name(),
                    b.origin[0],
                    b.origin[1],
                    b.origin[2],
                    b.origin[2] + instance.task(id).duration(),
                );
            }
        }
        SolveOutcome::Infeasible(proof) => println!("infeasible: {proof}"),
        SolveOutcome::ResourceLimit(limit) => println!("gave up: {limit} exhausted"),
    }

    // 2. Optimization: the minimal execution time on this chip.
    let best = Spp::new(&instance).solve().expect("tasks fit the chip");
    println!(
        "minimal execution time on {}: {} cycles ({} exact decisions)",
        instance.chip(),
        best.makespan,
        best.decisions
    );
    Ok(())
}
