//! The H.261 video-codec benchmark — reproduces Table 2 of the paper: the
//! single Pareto point (64x64 chip, latency 59) and its witness placement.
//!
//! Run with: `cargo run --release --example video_codec`

use std::time::Instant;

use recopack::model::{benchmarks, Chip, Dim};
use recopack::solver::{pareto_front, SolverConfig};

fn main() {
    println!("video codec benchmark (paper §5.2, Table 2)");
    println!("module library: PUM 25x25, BMM 64x64, DCTM 16x16; 17 tasks\n");
    let instance = benchmarks::video_codec(Chip::square(1), 1).with_transitive_closure();
    println!("critical path: {} cycles", instance.critical_path_length());

    let started = Instant::now();
    let front =
        pareto_front(&instance, &SolverConfig::default()).expect("no resource limits configured");
    let elapsed = started.elapsed();

    println!("\n{:>2} | {:>3} | container | {:>9}", "#", "t", "time");
    println!("---+-----+-----------+----------");
    for (k, p) in front.iter().enumerate() {
        println!(
            "{:>2} | {:>3} | {:>4}x{:<4} | {:>7.1?}",
            k + 1,
            p.makespan,
            p.side,
            p.side,
            elapsed
        );
    }
    assert_eq!(front.len(), 1, "Table 2 reports a single Pareto point");
    assert_eq!((front[0].side, front[0].makespan), (64, 59));

    // Show when the full-chip block matcher runs in the witness.
    let p = &front[0].placement;
    let bmm = instance
        .task_id("motion_estimation")
        .expect("module exists");
    let b = p.task_box(bmm);
    println!(
        "\nmotion estimation (BMM, full chip) occupies cycles [{}, {})",
        b.start(Dim::Time),
        b.end(Dim::Time)
    );
    println!("matches Table 2: one Pareto point, 64x64 at t = 59.");
}
