//! FixedS problems (paper §4, FeasA&FixedS / MinA&FixedS): the start times
//! are already decided — say, by an upstream scheduler — and only the
//! spatial placement question remains. The packing-class machinery then
//! degenerates from three dimensions to two.
//!
//! Run with: `cargo run --release --example fixed_schedule`

use recopack::model::{benchmarks, render, Chip, Schedule};
use recopack::solver::FixedSchedule;

fn main() {
    // Take the DE benchmark on the Table 1 chip for T = 13 ...
    let instance = benchmarks::de(Chip::square(17), 13).with_transitive_closure();

    // ... and impose a hand-written schedule: multipliers back to back,
    // ALU operations tucked into the strip alongside them.
    let mut starts = vec![0u64; instance.task_count()];
    let at = |name: &str| instance.task_id(name).expect("task exists");
    for (name, start) in [
        ("v1", 0u64),
        ("v2", 2),
        ("v3", 4),
        ("v6", 6),
        ("v8", 8),
        ("v7", 10),
        ("v4", 6),  // after v3
        ("v5", 12), // after v4 and v7
        ("v9", 10), // after v8
        ("v10", 0),
        ("v11", 1),
    ] {
        starts[at(name)] = start;
    }
    let schedule = Schedule::new(starts);
    assert!(schedule.respects_precedence(&instance));

    // 1. FeasA&FixedS: does this schedule admit a spatial placement on 17x17?
    let outcome = FixedSchedule::new(&instance, &schedule).feasible();
    let placement = outcome
        .placement()
        .expect("the hand-written schedule fits the 17x17 chip");
    placement
        .verify(&instance)
        .expect("certificates always verify");
    println!("FeasA&FixedS on {}: feasible\n", instance.chip());
    println!("{}", render::gantt(placement, &instance));

    // 2. MinA&FixedS: the smallest square chip for the same schedule.
    let (side, _, stats) = FixedSchedule::new(&instance, &schedule)
        .min_square_chip()
        .expect("schedule is valid");
    println!(
        "MinA&FixedS: minimal square chip {side}x{side} ({} search nodes)",
        stats.nodes
    );
    assert_eq!(side, 17, "the strip layout needs exactly one extra row");
}
