//! Area/time tradeoff exploration — reproduces Figure 7 of the paper: the
//! Pareto-optimal (chip side, execution time) points of the DE benchmark,
//! with precedence constraints (solid curve) and without (dashed curve).
//!
//! Run with: `cargo run --release --example pareto`

use std::time::Instant;

use recopack::model::{benchmarks, Chip};
use recopack::solver::{pareto_front, SolverConfig};

fn main() {
    let instance = benchmarks::de(Chip::square(1), 1).with_transitive_closure();
    let config = SolverConfig::default();

    println!("Fig. 7: Pareto-optimal chip area vs processing time, DE benchmark\n");

    let started = Instant::now();
    let solid = pareto_front(&instance, &config).expect("no limits configured");
    println!("(a) with partial-order constraints (solid):");
    for p in &solid {
        println!("    h = {:>2}  =>  t = {:>2}", p.side, p.makespan);
    }

    let dashed = pareto_front(&instance.clone().without_precedence(), &config)
        .expect("no limits configured");
    println!("(b) without partial-order constraints (dashed):");
    for p in &dashed {
        println!("    h = {:>2}  =>  t = {:>2}", p.side, p.makespan);
    }
    println!("\ncomputed in {:.1?}", started.elapsed());

    let pairs = |front: &[recopack::solver::ParetoPoint]| {
        front
            .iter()
            .map(|p| (p.side, p.makespan))
            .collect::<Vec<_>>()
    };
    assert_eq!(pairs(&solid), vec![(16, 14), (17, 13), (32, 6)]);
    assert_eq!(pairs(&dashed), vec![(16, 13), (17, 12), (32, 4), (48, 2)]);
    println!("fronts match the paper's Figure 7 (see EXPERIMENTS.md).");
}
