//! The DE (differential equation) benchmark — reproduces Table 1 of the
//! paper: minimal square chips for deadlines T = 6, 13, 14, with solver
//! statistics in place of the paper's SUN Ultra 30 CPU times.
//!
//! Run with: `cargo run --release --example de_benchmark`

use std::time::Instant;

use recopack::model::{benchmarks, Chip};
use recopack::solver::Bmp;

fn main() {
    println!("DE benchmark (paper §5.1, Table 1)");
    println!("module library: MUL 16x16x2, ALU 16x1x1; 11 tasks, 8 arcs\n");
    println!(
        "{:>4} | {:>10} | {:>10} | {:>9} | {:>9}",
        "T", "paper chip", "our chip", "decisions", "time"
    );
    println!("-----+------------+------------+-----------+----------");
    for (horizon, paper) in [(6u64, 32u64), (13, 17), (14, 16)] {
        let instance = benchmarks::de(Chip::square(1), horizon).with_transitive_closure();
        let started = Instant::now();
        let result = Bmp::new(&instance)
            .solve()
            .expect("all Table 1 rows are feasible");
        let elapsed = started.elapsed();
        println!(
            "{horizon:>4} | {:>7}x{:<2} | {:>7}x{:<2} | {:>9} | {:>7.1?}",
            paper, paper, result.side, result.side, result.decisions, elapsed
        );
        assert_eq!(
            result.side, paper,
            "optimal chip for T={horizon} must match the paper"
        );
    }
    println!("\nall rows match Table 1.");
}
