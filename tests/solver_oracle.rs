//! Cross-validation of the packing-class solver against the independent
//! geometric baseline: two exact algorithms with disjoint designs must agree
//! on every instance.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use recopack::baseline::{BaselineOutcome, GeometricSolver};
use recopack::model::generate::{random_feasible_instance, random_instance, GeneratorConfig};
use recopack::solver::{Opp, SolveOutcome, SolverConfig};

fn decide_packing_class(instance: &recopack::model::Instance, config: SolverConfig) -> bool {
    match Opp::new(instance).with_config(config).solve() {
        SolveOutcome::Feasible(p) => {
            assert_eq!(p.verify(instance), Ok(()), "certificates must verify");
            true
        }
        SolveOutcome::Infeasible(_) => false,
        SolveOutcome::ResourceLimit(_) => panic!("no limits configured"),
    }
}

fn decide_baseline(instance: &recopack::model::Instance) -> bool {
    match GeometricSolver::new(instance).solve() {
        BaselineOutcome::Feasible(p) => {
            assert_eq!(p.verify(instance), Ok(()));
            true
        }
        BaselineOutcome::Infeasible => false,
        BaselineOutcome::NodeLimit => panic!("no limit configured"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// The headline property: on random instances with precedence, the
    /// packing-class decision equals the geometric baseline's.
    #[test]
    fn packing_class_agrees_with_geometric_baseline(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = GeneratorConfig {
            task_count: 2 + (seed as usize % 4),
            max_side: 3,
            max_duration: 3,
            arc_percent: 30,
        };
        let instance = random_instance(&config, &mut rng);
        let ours = decide_packing_class(&instance, SolverConfig::default());
        let baseline = decide_baseline(&instance);
        prop_assert_eq!(ours, baseline, "disagreement on {:?}", instance);
    }

    /// Same agreement with every acceleration disabled — the bare search
    /// must still be exact.
    #[test]
    fn bare_search_is_still_exact(seed in 0u64..2_000) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(77));
        let config = GeneratorConfig {
            task_count: 2 + (seed as usize % 3),
            max_side: 3,
            max_duration: 3,
            arc_percent: 30,
        };
        let instance = random_instance(&config, &mut rng);
        let bare = decide_packing_class(&instance, SolverConfig::bare());
        let full = decide_packing_class(&instance, SolverConfig::default());
        prop_assert_eq!(bare, full, "config changed the answer on {:?}", instance);
    }

    /// Witnessed-feasible instances are always accepted.
    #[test]
    fn witnessed_instances_are_accepted(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(13));
        let config = GeneratorConfig {
            task_count: 3 + (seed as usize % 5),
            ..GeneratorConfig::default()
        };
        let (instance, witness) = random_feasible_instance(&config, &mut rng);
        prop_assert_eq!(witness.verify(&instance), Ok(()));
        prop_assert!(decide_packing_class(&instance, SolverConfig::default()));
    }
}

/// A deterministic sweep over a fixed seed set, heavier than the proptest
/// cases (5-6 tasks), as a regression net.
#[test]
fn deterministic_agreement_sweep() {
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let config = GeneratorConfig {
            task_count: 5 + (seed as usize % 2),
            max_side: 3,
            max_duration: 3,
            arc_percent: 25,
        };
        let instance = random_instance(&config, &mut rng);
        let ours = decide_packing_class(&instance, SolverConfig::default());
        let baseline = decide_baseline(&instance);
        assert_eq!(ours, baseline, "seed {seed}: disagreement on {instance:?}");
    }
}
