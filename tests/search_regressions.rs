//! Performance regression net: the propagation rules must keep the search
//! trees of the paper workloads tiny. These are the exact workloads that
//! once blew up during development (DESIGN.md experiment A1), pinned with
//! generous headroom.

use recopack::model::{benchmarks, Chip};
use recopack::solver::{Opp, SolveOutcome, SolverConfig};

fn search_only() -> SolverConfig {
    SolverConfig {
        use_bounds: false,
        use_heuristics: false,
        node_limit: Some(100_000),
        ..SolverConfig::default()
    }
}

#[test]
fn de_17x17_t12_infeasibility_stays_cheap() {
    let instance = benchmarks::de(Chip::square(17), 12).with_transitive_closure();
    let (outcome, stats) = Opp::new(&instance)
        .with_config(search_only())
        .solve_with_stats();
    assert!(matches!(outcome, SolveOutcome::Infeasible(_)));
    assert!(
        stats.nodes < 1_000,
        "tree regressed to {} nodes",
        stats.nodes
    );
}

#[test]
fn de_31x31_t6_infeasibility_stays_cheap() {
    let instance = benchmarks::de(Chip::square(31), 6).with_transitive_closure();
    let (outcome, stats) = Opp::new(&instance)
        .with_config(search_only())
        .solve_with_stats();
    assert!(matches!(outcome, SolveOutcome::Infeasible(_)));
    assert!(
        stats.nodes < 1_000,
        "tree regressed to {} nodes",
        stats.nodes
    );
}

#[test]
fn codec_63x63_infeasibility_stays_cheap() {
    let instance = benchmarks::video_codec(Chip::square(63), 200).with_transitive_closure();
    let (outcome, stats) = Opp::new(&instance)
        .with_config(search_only())
        .solve_with_stats();
    assert!(matches!(outcome, SolveOutcome::Infeasible(_)));
    assert!(
        stats.nodes < 10_000,
        "tree regressed to {} nodes",
        stats.nodes
    );
}

#[test]
fn de_feasible_rows_find_leaves_quickly() {
    for (h, t) in [(16u64, 14u64), (17, 13), (32, 6)] {
        let instance = benchmarks::de(Chip::square(h), t).with_transitive_closure();
        let (outcome, stats) = Opp::new(&instance)
            .with_config(search_only())
            .solve_with_stats();
        match outcome {
            SolveOutcome::Feasible(p) => assert_eq!(p.verify(&instance), Ok(())),
            other => panic!("{h}x{h}@T={t} should be feasible, got {other:?}"),
        }
        assert!(
            stats.nodes < 100_000,
            "{h}x{h}@T={t} took {} nodes",
            stats.nodes
        );
    }
}
