//! Cross-crate invariants of the solver pipeline: bounds never refute
//! feasible instances, heuristics never fabricate packings, ablated
//! configurations never change answers, and optimizers return true optima.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use recopack::baseline::GeometricSolver;
use recopack::bounds::refute;
use recopack::heur::{find_feasible, HeuristicConfig};
use recopack::model::generate::{random_feasible_instance, random_instance, GeneratorConfig};
use recopack::model::Chip;
use recopack::solver::{Bmp, Opp, SolverConfig, Spp};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Soundness of stage 1: a refutation on a witnessed instance would be
    /// a catastrophic bug.
    #[test]
    fn bounds_never_refute_witnessed_instances(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (instance, _) = random_feasible_instance(&GeneratorConfig::default(), &mut rng);
        prop_assert_eq!(refute(&instance), None);
    }

    /// Soundness of stage 2: every heuristic success verifies geometrically.
    #[test]
    fn heuristics_only_return_verified_packings(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(31));
        let instance = random_instance(&GeneratorConfig::default(), &mut rng);
        if let Some(p) = find_feasible(&instance, &HeuristicConfig::default()) {
            prop_assert_eq!(p.verify(&instance), Ok(()));
        }
    }

    /// Each single pruning rule can be disabled without changing answers.
    #[test]
    fn single_rule_ablations_preserve_answers(seed in 0u64..1_500, rule in 0usize..4) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(3));
        let config = GeneratorConfig {
            task_count: 3 + (seed as usize % 3),
            max_side: 3,
            max_duration: 3,
            arc_percent: 30,
        };
        let instance = random_instance(&config, &mut rng);
        let mut ablated = SolverConfig {
            use_bounds: false,
            use_heuristics: false,
            ..SolverConfig::default()
        };
        match rule {
            0 => ablated.clique_rule = false,
            1 => ablated.c4_rule = false,
            2 => ablated.orientation_rules = false,
            _ => ablated.must_overlap_rule = false,
        }
        let reference = SolverConfig {
            use_bounds: false,
            use_heuristics: false,
            ..SolverConfig::default()
        };
        let a = Opp::new(&instance).with_config(ablated).solve().is_feasible();
        let b = Opp::new(&instance).with_config(reference).solve().is_feasible();
        prop_assert_eq!(a, b, "rule {} changed the answer on {:?}", rule, instance);
    }
}

/// BMP optimality against brute force: the returned side is feasible and
/// side - 1 is infeasible per the independent baseline.
#[test]
fn bmp_returns_true_minimum() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut checked = 0;
    for _ in 0..40 {
        let config = GeneratorConfig {
            task_count: 4,
            max_side: 3,
            max_duration: 3,
            arc_percent: 30,
        };
        let instance = random_instance(&config, &mut rng);
        let Some(result) = Bmp::new(&instance).solve() else {
            continue;
        };
        let at = instance.clone().with_chip(Chip::square(result.side));
        assert!(GeometricSolver::new(&at).solve().is_feasible());
        if result.side > 0 {
            let below = instance.clone().with_chip(Chip::square(result.side - 1));
            assert!(
                !GeometricSolver::new(&below).solve().is_feasible(),
                "side {} was not minimal for {instance:?}",
                result.side
            );
        }
        checked += 1;
    }
    assert!(checked >= 10, "too few feasible draws ({checked})");
}

/// SPP optimality against brute force, same scheme over the horizon.
#[test]
fn spp_returns_true_minimum() {
    let mut rng = StdRng::seed_from_u64(123);
    let mut checked = 0;
    for _ in 0..40 {
        let config = GeneratorConfig {
            task_count: 4,
            max_side: 3,
            max_duration: 3,
            arc_percent: 30,
        };
        let instance = random_instance(&config, &mut rng);
        let Some(result) = Spp::new(&instance).solve() else {
            continue;
        };
        let at = instance.clone().with_horizon(result.makespan);
        assert!(GeometricSolver::new(&at).solve().is_feasible());
        if result.makespan > 0 {
            let below = instance.clone().with_horizon(result.makespan - 1);
            assert!(
                !GeometricSolver::new(&below).solve().is_feasible(),
                "makespan {} was not minimal for {instance:?}",
                result.makespan
            );
        }
        checked += 1;
    }
    assert!(checked >= 10, "too few feasible draws ({checked})");
}

/// The time budget is honored: an effectively zero limit turns a nontrivial
/// bare search into `ResourceLimit` instead of an answer.
#[test]
fn time_limit_yields_resource_limit() {
    use recopack::model::Task;
    use recopack::solver::SolveOutcome;
    let instance = recopack::model::Instance::builder()
        .chip(Chip::square(6))
        .horizon(10)
        .tasks((0..8).map(|k| Task::new(format!("t{k}"), 3, 3, 3)))
        .build()
        .expect("valid");
    let config = SolverConfig {
        time_limit: Some(std::time::Duration::ZERO),
        ..SolverConfig::bare()
    };
    // The bare tree for 8 tasks dwarfs the node-counting check interval, so
    // the zero deadline must fire (whatever the answer would have been) —
    // and name the clock, not the node budget, as the cause.
    let outcome = Opp::new(&instance).with_config(config).solve();
    assert_eq!(
        outcome,
        SolveOutcome::ResourceLimit(recopack::solver::LimitKind::Time)
    );
}

/// Twin symmetry breaking must never change decisions — it only discards
/// mirror-image packings.
#[test]
fn twin_symmetry_preserves_answers() {
    let mut rng = StdRng::seed_from_u64(777);
    for k in 0..40 {
        // Force duplicate shapes so twins actually occur.
        let config = GeneratorConfig {
            task_count: 5,
            max_side: 2,
            max_duration: 2,
            arc_percent: 20,
        };
        let instance = random_instance(&config, &mut rng);
        let on = SolverConfig {
            use_bounds: false,
            use_heuristics: false,
            twin_symmetry: true,
            ..SolverConfig::default()
        };
        let off = SolverConfig {
            twin_symmetry: false,
            ..on.clone()
        };
        let a = Opp::new(&instance).with_config(on).solve().is_feasible();
        let b = Opp::new(&instance).with_config(off).solve().is_feasible();
        assert_eq!(
            a, b,
            "iteration {k}: twin rule changed answer on {instance:?}"
        );
    }
}

/// Twin symmetry must also hold when the twins end up ordered the "wrong"
/// way in a fixed schedule — the rule is disabled there.
#[test]
fn twin_symmetry_is_ignored_for_fixed_schedules() {
    use recopack::model::{Instance, Schedule, Task};
    use recopack::solver::FixedSchedule;
    let instance = Instance::builder()
        .chip(Chip::square(2))
        .horizon(4)
        .task(Task::new("a", 2, 2, 2))
        .task(Task::new("b", 2, 2, 2))
        .build()
        .expect("valid");
    // b (higher id... id 1) scheduled BEFORE a: the twin rule would force
    // the opposite orientation if it were active.
    let schedule = Schedule::new(vec![2, 0]);
    let outcome = FixedSchedule::new(&instance, &schedule).feasible();
    let p = outcome.placement().expect("schedule is packable");
    assert_eq!(p.schedule().starts(), schedule.starts());
}
