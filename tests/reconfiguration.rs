//! Reconfiguration overhead (paper §2.1): a per-task constant charged while
//! the cells are already claimed. The whole pipeline must treat the overhead
//! as part of the box.

use recopack::model::{Chip, Instance, Task};
use recopack::solver::{Opp, Spp};

fn chain(reconfig: u64, horizon: u64) -> Instance {
    Instance::builder()
        .chip(Chip::square(2))
        .horizon(horizon)
        .task(Task::new("a", 2, 2, 2).with_reconfiguration(reconfig))
        .task(Task::new("b", 2, 2, 2).with_reconfiguration(reconfig))
        .precedence("a", "b")
        .build()
        .expect("valid")
}

#[test]
fn overhead_tightens_feasibility() {
    // Without overhead the chain needs 4 cycles; with 1 cycle of
    // reconfiguration per task it needs 6.
    assert!(Opp::new(&chain(0, 4)).solve().is_feasible());
    assert!(!Opp::new(&chain(1, 5)).solve().is_feasible());
    assert!(Opp::new(&chain(1, 6)).solve().is_feasible());
}

#[test]
fn spp_reports_overhead_inclusive_makespans() {
    let r = Spp::new(&chain(1, 1)).solve().expect("fits the chip");
    assert_eq!(r.makespan, 6);
    let r = Spp::new(&chain(3, 1)).solve().expect("fits the chip");
    assert_eq!(r.makespan, 10);
}

#[test]
fn critical_path_sees_overhead() {
    assert_eq!(chain(0, 1).critical_path_length(), 4);
    assert_eq!(chain(2, 1).critical_path_length(), 8);
}

#[test]
fn mixed_overheads_pack_tightly() {
    // Two independent tasks with different overheads share a 4x2 chip:
    // makespan is the slower task's occupancy.
    let i = Instance::builder()
        .chip(Chip::new(4, 2))
        .horizon(1)
        .task(Task::new("fast", 2, 2, 2))
        .task(Task::new("slow", 2, 2, 2).with_reconfiguration(4))
        .build()
        .expect("valid");
    let r = Spp::new(&i).solve().expect("fits");
    assert_eq!(r.makespan, 6);
}
