//! Heavier randomized sweeps, ignored by default — run explicitly with
//! `cargo test --release --test stress -- --ignored` when you want extended
//! oracle cross-validation (the geometric brute force dominates; release
//! mode matters).

use rand::rngs::StdRng;
use rand::SeedableRng;

use recopack::baseline::{BaselineOutcome, GeometricSolver};
use recopack::model::generate::{
    layered_instance, random_instance, GeneratorConfig, LayeredConfig,
};
use recopack::solver::{Opp, SolveOutcome, SolverConfig};

fn agree(instance: &recopack::model::Instance) {
    let ours = match Opp::new(instance).solve() {
        SolveOutcome::Feasible(p) => {
            assert_eq!(p.verify(instance), Ok(()));
            true
        }
        SolveOutcome::Infeasible(_) => false,
        SolveOutcome::ResourceLimit(_) => panic!("no limits configured"),
    };
    // The geometric oracle occasionally blows up (that asymmetry is the
    // paper's point); skip draws it cannot decide within a generous budget.
    let baseline = match GeometricSolver::new(instance)
        .with_node_limit(30_000_000)
        .solve()
    {
        BaselineOutcome::Feasible(p) => {
            assert_eq!(p.verify(instance), Ok(()));
            true
        }
        BaselineOutcome::Infeasible => false,
        BaselineOutcome::NodeLimit => return,
    };
    assert_eq!(ours, baseline, "disagreement on {instance:?}");
}

#[test]
#[ignore = "long-running stress sweep"]
fn oracle_agreement_six_tasks() {
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    for k in 0..60 {
        let config = GeneratorConfig {
            task_count: 6,
            max_side: 3,
            max_duration: 3,
            arc_percent: 25,
        };
        let instance = random_instance(&config, &mut rng);
        agree(&instance);
        let _ = k;
    }
}

#[test]
#[ignore = "long-running stress sweep"]
fn oracle_agreement_layered_instances() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for _ in 0..40 {
        let config = LayeredConfig {
            layers: 3,
            width: 2,
            max_side: 3,
            max_duration: 3,
            arc_percent: 60,
        };
        let instance = layered_instance(&config, &mut rng);
        agree(&instance);
    }
}

/// Work-stealing at stress scale: 6-task instances are deep enough that
/// stolen units nest (units split from units), and `split_after_nodes: 1`
/// maximizes the donation rate. Every thread count must reproduce the
/// sequential verdict, certificate, and — on exhausted (infeasible)
/// searches — the exact merged stats.
#[test]
#[ignore = "long-running stress sweep"]
fn work_stealing_matches_sequential_at_scale() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    for _ in 0..30 {
        let config = GeneratorConfig {
            task_count: 6,
            max_side: 3,
            max_duration: 3,
            arc_percent: 25,
        };
        let instance = random_instance(&config, &mut rng);
        let run = |threads: usize, split_after_nodes: u64| {
            let config = SolverConfig {
                use_bounds: false,
                use_heuristics: false,
                threads,
                split_after_nodes,
                split_backlog: 2,
                ..SolverConfig::default()
            };
            Opp::new(&instance).with_config(config).solve_with_stats()
        };
        let (sequential, seq_stats) = run(1, 256);
        for threads in [2, 4, 8] {
            for split_after_nodes in [1, 64] {
                let (outcome, stats) = run(threads, split_after_nodes);
                match (&outcome, &sequential) {
                    (SolveOutcome::Feasible(p), SolveOutcome::Feasible(q)) => {
                        assert_eq!(p.verify(&instance), Ok(()));
                        assert_eq!(p, q, "certificate diverged on {instance:?}");
                    }
                    (SolveOutcome::Infeasible(_), SolveOutcome::Infeasible(_)) => {
                        assert_eq!(stats, seq_stats, "merged stats diverged on {instance:?}");
                    }
                    _ => panic!(
                        "verdict diverged at {threads} threads \
                         (split_after_nodes {split_after_nodes}) on {instance:?}"
                    ),
                }
            }
        }
    }
}

#[test]
#[ignore = "long-running stress sweep"]
fn bare_config_agreement_six_tasks() {
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for _ in 0..50 {
        let config = GeneratorConfig {
            task_count: 5,
            max_side: 3,
            max_duration: 3,
            arc_percent: 30,
        };
        let instance = random_instance(&config, &mut rng);
        let bare = Opp::new(&instance)
            .with_config(SolverConfig::bare())
            .solve()
            .is_feasible();
        let full = Opp::new(&instance).solve().is_feasible();
        assert_eq!(bare, full, "bare/full disagreement on {instance:?}");
    }
}
