//! End-to-end reproduction of every table and figure of the paper
//! (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
//! recorded paper-vs-measured comparison).

use recopack::model::{benchmarks, Chip};
use recopack::solver::{pareto_front, Bmp, Opp, SolverConfig, Spp};

/// Table 1 — DE benchmark, BMP at T = 6, 13, 14: minimal square chips
/// 32x32, 17x17, 16x16.
#[test]
fn table1_de_bmp_rows() {
    for (horizon, expected_side) in [(6u64, 32u64), (13, 17), (14, 16)] {
        let instance = benchmarks::de(Chip::square(1), horizon).with_transitive_closure();
        let result = Bmp::new(&instance)
            .solve()
            .unwrap_or_else(|| panic!("T={horizon} must be feasible"));
        assert_eq!(
            result.side, expected_side,
            "Table 1 row T={horizon}: expected {expected_side}"
        );
        let target = instance.with_chip(Chip::square(result.side));
        assert_eq!(result.placement.verify(&target), Ok(()));
    }
}

/// §5.1: "as the longest path in the graph has length 6, there does not
/// exist any faster schedule" — T = 5 is infeasible on any chip.
#[test]
fn table1_no_schedule_beats_the_critical_path() {
    let instance = benchmarks::de(Chip::square(1), 5).with_transitive_closure();
    assert_eq!(Bmp::new(&instance).solve(), None);
    let huge = benchmarks::de(Chip::square(512), 5).with_transitive_closure();
    assert!(!Opp::new(&huge).solve().is_feasible());
}

/// §5.1: "for T >= 14, a chip of size 16x16 cells is sufficient which is the
/// smallest chip possible... as one multiplication by itself uses the full
/// chip" — 15x15 never works, whatever the horizon.
#[test]
fn table1_sixteen_is_the_floor() {
    let instance = benchmarks::de(Chip::square(15), 100).with_transitive_closure();
    assert!(!Opp::new(&instance).solve().is_feasible());
    let instance = benchmarks::de(Chip::square(16), 100).with_transitive_closure();
    assert!(Opp::new(&instance).solve().is_feasible());
}

/// Figure 7(a) — Pareto points with precedence constraints (solid).
#[test]
fn fig7_solid_front() {
    let instance = benchmarks::de(Chip::square(1), 1).with_transitive_closure();
    let front = pareto_front(&instance, &SolverConfig::default()).expect("no limits");
    let pairs: Vec<(u64, u64)> = front.iter().map(|p| (p.side, p.makespan)).collect();
    assert_eq!(pairs, vec![(16, 14), (17, 13), (32, 6)]);
    for p in &front {
        let target = instance
            .clone()
            .with_chip(Chip::square(p.side))
            .with_horizon(p.makespan);
        assert_eq!(p.placement.verify(&target), Ok(()));
    }
}

/// Figure 7(b) — Pareto points without precedence constraints (dashed).
#[test]
fn fig7_dashed_front() {
    let instance = benchmarks::de(Chip::square(1), 1).without_precedence();
    let front = pareto_front(&instance, &SolverConfig::default()).expect("no limits");
    let pairs: Vec<(u64, u64)> = front.iter().map(|p| (p.side, p.makespan)).collect();
    assert_eq!(pairs, vec![(16, 13), (17, 12), (32, 4), (48, 2)]);
}

/// Table 2 — video codec: a single Pareto point, 64x64 at latency 59.
#[test]
fn table2_video_codec_single_point() {
    let instance = benchmarks::video_codec(Chip::square(1), 1).with_transitive_closure();
    let front = pareto_front(&instance, &SolverConfig::default()).expect("no limits");
    let pairs: Vec<(u64, u64)> = front.iter().map(|p| (p.side, p.makespan)).collect();
    assert_eq!(pairs, vec![(64, 59)]);
}

/// §5.2: "there is no solution for container sizes smaller than 64x64" and
/// "t = 59 is the smallest latency possible due to the data dependencies".
#[test]
fn table2_boundaries() {
    let at_63 = benchmarks::video_codec(Chip::square(63), 1000).with_transitive_closure();
    assert!(!Opp::new(&at_63).solve().is_feasible());
    let at_58 = benchmarks::video_codec(Chip::square(64), 58).with_transitive_closure();
    assert!(!Opp::new(&at_58).solve().is_feasible());
    let exact = benchmarks::video_codec(Chip::square(64), 59).with_transitive_closure();
    assert!(Opp::new(&exact).solve().is_feasible());
}

/// Table 1's hardest row (T = 6) solved via SPP from the other direction:
/// minimal time on the 32x32 chip is 6, on 31x31 it is worse.
#[test]
fn spp_cross_checks_table1() {
    let on_32 = benchmarks::de(Chip::square(32), 1).with_transitive_closure();
    let r = Spp::new(&on_32).solve().expect("fits");
    assert_eq!(r.makespan, 6);
    let on_31 = benchmarks::de(Chip::square(31), 1).with_transitive_closure();
    let r = Spp::new(&on_31).solve().expect("fits");
    assert_eq!(r.makespan, 13, "MULs serialize below 32 cells width");
}
