//! Outcome determinism of the parallel branch-and-bound: for every thread
//! count the solver must return the *same verdict* and, when feasible, the
//! *same verifying certificate* as the sequential search (DESIGN.md,
//! "Adaptive work-stealing parallel search").
//!
//! Bounds and heuristics are disabled so every decision below actually runs
//! the search tree — with them on, most of these instances never reach the
//! branch-and-bound and the test would prove nothing about it.

use rand::rngs::StdRng;
use rand::SeedableRng;

use recopack::model::generate::{random_instance, GeneratorConfig};
use recopack::model::Placement;
use recopack::solver::{Opp, SolveOutcome, SolverConfig};

fn search_only(threads: usize) -> SolverConfig {
    SolverConfig {
        use_bounds: false,
        use_heuristics: false,
        threads,
        ..SolverConfig::default()
    }
}

fn decide(instance: &recopack::model::Instance, threads: usize) -> Option<Placement> {
    match Opp::new(instance).with_config(search_only(threads)).solve() {
        SolveOutcome::Feasible(p) => {
            assert_eq!(p.verify(instance), Ok(()), "certificates must verify");
            Some(p)
        }
        SolveOutcome::Infeasible(_) => None,
        SolveOutcome::ResourceLimit(_) => panic!("no limits configured"),
    }
}

/// 60 seeded random instances, threads 1 / 2 / 4 / 8: identical verdicts
/// and identical certificates. The seeds cover both feasible and
/// infeasible instances (the generator's arc density plus tight horizons
/// produces a mix), and the oversubscribed 8-thread runs exercise far more
/// workers than the host's single CPU.
#[test]
fn verdicts_and_certificates_are_thread_count_invariant() {
    let mut feasible_seen = 0u32;
    let mut infeasible_seen = 0u32;
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(7000 + seed);
        let config = GeneratorConfig {
            task_count: 3 + (seed as usize % 4),
            max_side: 3,
            max_duration: 3,
            arc_percent: 30,
        };
        let instance = random_instance(&config, &mut rng);
        let sequential = decide(&instance, 1);
        match &sequential {
            Some(_) => feasible_seen += 1,
            None => infeasible_seen += 1,
        }
        for threads in [2, 4, 8] {
            let parallel = decide(&instance, threads);
            assert_eq!(
                parallel, sequential,
                "seed {seed}, {threads} threads: outcome diverged on {instance:?}"
            );
        }
    }
    // The sweep must actually exercise both answers, or the invariance
    // claim is vacuous for one of them.
    assert!(feasible_seen >= 10, "only {feasible_seen} feasible seeds");
    assert!(
        infeasible_seen >= 10,
        "only {infeasible_seen} infeasible seeds"
    );
}

/// Merged telemetry counters are thread-count invariant for exhausted
/// searches: an infeasible instance (no limits configured) forces every
/// thread count to explore exactly the same tree, so the per-thread
/// [`SolverStats`](recopack::solver::SolverStats) must sum to identical
/// totals — nodes, depth histogram, per-rule conflicts, fixations, budget
/// checks, everything.
#[test]
fn merged_stats_are_thread_count_invariant_on_exhausted_searches() {
    use recopack::model::{Chip, Instance, Task};

    // Fixed search-heavy infeasible instances. The quad family packs
    // 2x2x2 tasks into the single time slot of a 4x4 chip that holds only
    // four of them; the mixed variant adds unit-duration tasks, whose
    // pairs can be time-separated, so the time dimension branches too.
    // All are volume-infeasible, but with bounds disabled only exhaustive
    // search can prove it.
    let quad = |count: usize, extra_units: usize, horizon: u64| {
        let mut builder = Instance::builder().chip(Chip::square(4)).horizon(horizon);
        for i in 0..count {
            builder = builder.task(Task::new(format!("t{i}"), 2, 2, 2));
        }
        for i in 0..extra_units {
            builder = builder.task(Task::new(format!("u{i}"), 2, 2, 1));
        }
        builder.build().expect("valid").with_transitive_closure()
    };
    let mut instances = vec![quad(5, 0, 2), quad(6, 0, 2), quad(4, 4, 2)];

    // Plus every infeasible seed of a small random sweep, for variety in
    // tree shape (the feasible ones are covered by the verdict test above —
    // their node counts legitimately differ across thread counts because
    // cancellation skips subtrees behind the certificate).
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(7000 + seed);
        let config = GeneratorConfig {
            task_count: 3 + (seed as usize % 4),
            max_side: 3,
            max_duration: 3,
            arc_percent: 30,
        };
        let instance = random_instance(&config, &mut rng);
        if decide(&instance, 1).is_none() {
            instances.push(instance);
        }
    }
    assert!(instances.len() >= 4, "need several infeasible instances");

    let stats_at = |instance: &recopack::model::Instance, threads: usize| {
        let (outcome, stats) = Opp::new(instance)
            .with_config(search_only(threads))
            .solve_with_stats();
        assert!(
            matches!(outcome, SolveOutcome::Infeasible(_)),
            "expected exhaustion"
        );
        stats
    };
    let mut searched = 0u32;
    for (i, instance) in instances.iter().enumerate() {
        let sequential = stats_at(instance, 1);
        // Some random seeds are refuted during root propagation (0 nodes);
        // they still participate in the equality check below.
        if sequential.nodes > 0 {
            searched += 1;
        } else {
            assert!(i >= 3, "crafted instance {i} must actually search");
        }
        assert_eq!(
            sequential.depth_histogram.iter().sum::<u64>(),
            sequential.nodes,
            "instance {i}: histogram must partition the nodes"
        );
        for threads in [2, 4, 8] {
            let parallel = stats_at(instance, threads);
            assert_eq!(
                parallel, sequential,
                "instance {i}, {threads} threads: merged stats diverged"
            );
        }
        // And repeat runs at the same thread count are identical too.
        assert_eq!(stats_at(instance, 8), sequential, "instance {i}: rerun");
    }
    assert!(searched >= 3, "only {searched} instances actually searched");
}

/// Profiling must not break stats invariance: with `profile: true` the
/// timing fields are nondeterministic wall-clock measurements, but zeroing
/// them must recover exactly the counters of an unprofiled run at any
/// thread count. This is the contract documented on
/// [`SolverConfig::profile`](recopack::solver::SolverConfig) — timings are
/// informational, counters stay exact.
#[test]
fn profiling_changes_timings_but_not_counters() {
    use recopack::model::{Chip, Instance, Task};
    use recopack::solver::SolverStats;

    let mut builder = Instance::builder().chip(Chip::square(4)).horizon(2);
    for i in 0..5 {
        builder = builder.task(Task::new(format!("t{i}"), 2, 2, 2));
    }
    let instance = builder.build().expect("valid").with_transitive_closure();

    let strip_timings = |mut stats: SolverStats| {
        stats.propagate_ns = 0;
        stats.bounds_ns = 0;
        stats.realize_ns = 0;
        stats.prune_ns = [0; 4];
        stats
    };
    let stats_at = |threads: usize, profile: bool| {
        let config = SolverConfig {
            profile,
            ..search_only(threads)
        };
        let (outcome, stats) = Opp::new(&instance).with_config(config).solve_with_stats();
        assert!(matches!(outcome, SolveOutcome::Infeasible(_)));
        stats
    };

    let plain = stats_at(1, false);
    assert!(plain.nodes > 0, "the instance must actually search");
    assert_eq!(plain.profiled_ns(), 0, "profiling off records no time");
    for threads in [1, 2, 8] {
        let profiled = stats_at(threads, true);
        assert!(
            profiled.profiled_ns() > 0,
            "{threads} threads: profiling must record time somewhere"
        );
        assert_eq!(
            strip_timings(profiled),
            plain,
            "{threads} threads: profiling changed the counters"
        );
    }
}

/// A tree deep enough that the work-stealing scheduler *actually* splits
/// (the mixed quad/unit family runs thousands of nodes, far past the
/// default split threshold), checked at 1 / 2 / 4 / 8 threads and under
/// forced-split knobs: identical verdicts, identical merged stats. With
/// `split_after_nodes: 1` every node offers a split, so this exercises
/// unit donation, cloning, and abandonment bookkeeping at maximum rate.
#[test]
fn stealing_scale_verdicts_and_stats_are_invariant() {
    use recopack::model::{Chip, Instance, Task};

    // ~5000 nodes, infeasible by volume: six 2x2x2 tasks plus four
    // unit-duration 2x2x1 tasks on a 4x4 chip with horizon 2 (the bench
    // suite's `mixed64` case).
    let mut builder = Instance::builder().chip(Chip::square(4)).horizon(2);
    for i in 0..6 {
        builder = builder.task(Task::new(format!("t{i}"), 2, 2, 2));
    }
    for i in 0..4 {
        builder = builder.task(Task::new(format!("u{i}"), 2, 2, 1));
    }
    let instance = builder.build().expect("valid").with_transitive_closure();

    let stats_at = |threads: usize, split_after_nodes: u64, split_backlog: usize| {
        let config = SolverConfig {
            split_after_nodes,
            split_backlog,
            ..search_only(threads)
        };
        let (outcome, stats) = Opp::new(&instance).with_config(config).solve_with_stats();
        assert!(
            matches!(outcome, SolveOutcome::Infeasible(_)),
            "{threads} threads (split_after_nodes {split_after_nodes}): expected exhaustion"
        );
        stats
    };
    let sequential = stats_at(1, 256, 0);
    assert!(
        sequential.nodes > 1000,
        "the instance must be deep enough to split (got {} nodes)",
        sequential.nodes
    );
    for threads in [2, 4, 8] {
        assert_eq!(stats_at(threads, 256, 0), sequential, "{threads} threads");
        assert_eq!(
            stats_at(threads, 1, 2),
            sequential,
            "{threads} threads, forced splitting"
        );
    }
}

/// Resource limits are thread-count invariant on this infeasible deep
/// instance: the node budget is a single global counter and an
/// already-expired time limit is observed at the first node, so every
/// thread count reports the same [`LimitKind`]
/// (recopack::solver::LimitKind).
#[test]
fn budget_limited_runs_report_the_same_limit_at_every_thread_count() {
    use recopack::model::{Chip, Instance, Task};
    use recopack::solver::LimitKind;

    let mut builder = Instance::builder().chip(Chip::square(4)).horizon(2);
    for i in 0..6 {
        builder = builder.task(Task::new(format!("t{i}"), 2, 2, 2));
    }
    for i in 0..4 {
        builder = builder.task(Task::new(format!("u{i}"), 2, 2, 1));
    }
    let instance = builder.build().expect("valid").with_transitive_closure();

    for threads in [1, 2, 4, 8] {
        // Node budget well below the ~5000-node tree. Force splitting so
        // the budget is also exercised across stolen units.
        let config = SolverConfig {
            node_limit: Some(500),
            split_after_nodes: 1,
            ..search_only(threads)
        };
        let (outcome, stats) = Opp::new(&instance).with_config(config).solve_with_stats();
        assert!(
            matches!(outcome, SolveOutcome::ResourceLimit(LimitKind::Nodes)),
            "{threads} threads: expected the node limit, got {outcome:?}"
        );
        assert!(
            stats.nodes <= 500 + 8,
            "{threads} threads: budget is global, got {} nodes",
            stats.nodes
        );

        // A pre-expired time limit stops before any work at every thread
        // count.
        let config = SolverConfig {
            time_limit: Some(std::time::Duration::ZERO),
            ..search_only(threads)
        };
        let (outcome, _) = Opp::new(&instance).with_config(config).solve_with_stats();
        assert!(
            matches!(outcome, SolveOutcome::ResourceLimit(LimitKind::Time)),
            "{threads} threads: expected the time limit, got {outcome:?}"
        );
    }
}

/// The same invariance under the bare configuration (no propagation rules):
/// much larger trees per instance, so fewer seeds.
#[test]
fn bare_search_is_thread_count_invariant() {
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(9100 + seed);
        let config = GeneratorConfig {
            task_count: 3 + (seed as usize % 2),
            max_side: 3,
            max_duration: 3,
            arc_percent: 30,
        };
        let instance = random_instance(&config, &mut rng);
        let decide_bare = |threads: usize| {
            let config = SolverConfig {
                threads,
                ..SolverConfig::bare()
            };
            match Opp::new(&instance).with_config(config).solve() {
                SolveOutcome::Feasible(p) => {
                    assert_eq!(p.verify(&instance), Ok(()));
                    Some(p)
                }
                SolveOutcome::Infeasible(_) => None,
                SolveOutcome::ResourceLimit(_) => panic!("no limits configured"),
            }
        };
        let sequential = decide_bare(1);
        for threads in [2, 4, 8] {
            assert_eq!(
                decide_bare(threads),
                sequential,
                "seed {seed}, {threads} threads (bare) diverged on {instance:?}"
            );
        }
    }
}
