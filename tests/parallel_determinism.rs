//! Outcome determinism of the parallel branch-and-bound: for every thread
//! count the solver must return the *same verdict* and, when feasible, the
//! *same verifying certificate* as the sequential search (DESIGN.md,
//! "Frontier-split parallel search").
//!
//! Bounds and heuristics are disabled so every decision below actually runs
//! the search tree — with them on, most of these instances never reach the
//! branch-and-bound and the test would prove nothing about it.

use rand::rngs::StdRng;
use rand::SeedableRng;

use recopack::model::generate::{random_instance, GeneratorConfig};
use recopack::model::Placement;
use recopack::solver::{Opp, SolveOutcome, SolverConfig};

fn search_only(threads: usize) -> SolverConfig {
    SolverConfig {
        use_bounds: false,
        use_heuristics: false,
        threads,
        ..SolverConfig::default()
    }
}

fn decide(instance: &recopack::model::Instance, threads: usize) -> Option<Placement> {
    match Opp::new(instance).with_config(search_only(threads)).solve() {
        SolveOutcome::Feasible(p) => {
            assert_eq!(p.verify(instance), Ok(()), "certificates must verify");
            Some(p)
        }
        SolveOutcome::Infeasible(_) => None,
        SolveOutcome::ResourceLimit(_) => panic!("no limits configured"),
    }
}

/// 60 seeded random instances, threads 1 / 2 / 8: identical verdicts and
/// identical certificates. The seeds cover both feasible and infeasible
/// instances (the generator's arc density plus tight horizons produces a
/// mix), and the oversubscribed 8-thread run exercises frontier splits far
/// wider than the host's single CPU.
#[test]
fn verdicts_and_certificates_are_thread_count_invariant() {
    let mut feasible_seen = 0u32;
    let mut infeasible_seen = 0u32;
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(7000 + seed);
        let config = GeneratorConfig {
            task_count: 3 + (seed as usize % 4),
            max_side: 3,
            max_duration: 3,
            arc_percent: 30,
        };
        let instance = random_instance(&config, &mut rng);
        let sequential = decide(&instance, 1);
        match &sequential {
            Some(_) => feasible_seen += 1,
            None => infeasible_seen += 1,
        }
        for threads in [2, 8] {
            let parallel = decide(&instance, threads);
            assert_eq!(
                parallel, sequential,
                "seed {seed}, {threads} threads: outcome diverged on {instance:?}"
            );
        }
    }
    // The sweep must actually exercise both answers, or the invariance
    // claim is vacuous for one of them.
    assert!(feasible_seen >= 10, "only {feasible_seen} feasible seeds");
    assert!(
        infeasible_seen >= 10,
        "only {infeasible_seen} infeasible seeds"
    );
}

/// The same invariance under the bare configuration (no propagation rules):
/// much larger trees per instance, so fewer seeds.
#[test]
fn bare_search_is_thread_count_invariant() {
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(9100 + seed);
        let config = GeneratorConfig {
            task_count: 3 + (seed as usize % 2),
            max_side: 3,
            max_duration: 3,
            arc_percent: 30,
        };
        let instance = random_instance(&config, &mut rng);
        let decide_bare = |threads: usize| {
            let config = SolverConfig {
                threads,
                ..SolverConfig::bare()
            };
            match Opp::new(&instance).with_config(config).solve() {
                SolveOutcome::Feasible(p) => {
                    assert_eq!(p.verify(&instance), Ok(()));
                    Some(p)
                }
                SolveOutcome::Infeasible(_) => None,
                SolveOutcome::ResourceLimit(_) => panic!("no limits configured"),
            }
        };
        let sequential = decide_bare(1);
        for threads in [2, 8] {
            assert_eq!(
                decide_bare(threads),
                sequential,
                "seed {seed}, {threads} threads (bare) diverged on {instance:?}"
            );
        }
    }
}
