//! Integration tests for the FixedS problem family: prescribed start times,
//! residual 2D placement (paper §4, referencing [22, 23]).

use rand::rngs::StdRng;
use rand::SeedableRng;

use recopack::heur::{find_feasible, HeuristicConfig};
use recopack::model::generate::{random_feasible_instance, GeneratorConfig};
use recopack::model::{benchmarks, Chip, Schedule};
use recopack::solver::FixedSchedule;

/// Any schedule extracted from a feasible placement must be spatially
/// packable again.
#[test]
fn schedules_of_witnesses_are_packable() {
    let mut rng = StdRng::seed_from_u64(2024);
    for _ in 0..25 {
        let (instance, witness) = random_feasible_instance(&GeneratorConfig::default(), &mut rng);
        let schedule = witness.schedule();
        let outcome = FixedSchedule::new(&instance, &schedule).feasible();
        let placement = outcome
            .placement()
            .unwrap_or_else(|| panic!("witnessed schedule must pack: {instance:?}"));
        assert_eq!(placement.verify(&instance), Ok(()));
        assert_eq!(placement.schedule().starts(), schedule.starts());
    }
}

/// The DE benchmark under the heuristic's own schedule on the Table 1 chip.
#[test]
fn de_heuristic_schedule_round_trips() {
    let instance = benchmarks::de(Chip::square(17), 13).with_transitive_closure();
    let heuristic =
        find_feasible(&instance, &HeuristicConfig::default()).expect("Table 1 row is feasible");
    let schedule = heuristic.schedule();
    let packed = FixedSchedule::new(&instance, &schedule).feasible();
    assert!(packed.is_feasible());
}

/// MinA&FixedS: for the DE benchmark serialized greedily, the minimal chip
/// is 16 (one multiplier at a time uses the full chip).
#[test]
fn min_chip_for_a_serial_de_schedule() {
    let instance = benchmarks::de(Chip::square(16), 17).with_transitive_closure();
    // Serial schedule in topological order: v1..v11 back to back.
    let order = instance.precedence().topological_order().expect("acyclic");
    let mut starts = vec![0u64; instance.task_count()];
    let mut clock = 0;
    for v in order {
        starts[v] = clock;
        clock += instance.task(v).duration();
    }
    let schedule = Schedule::new(starts);
    assert!(schedule.respects_precedence(&instance));
    let (side, placement, _) = FixedSchedule::new(&instance, &schedule)
        .min_square_chip()
        .expect("serial schedules always pack");
    assert_eq!(side, 16);
    assert!(placement
        .verify(&instance.clone().with_chip(Chip::square(16)))
        .is_ok());
}

/// An invalid schedule (precedence broken) is rejected outright.
#[test]
fn invalid_schedules_are_rejected() {
    let instance = benchmarks::de(Chip::square(32), 20).with_transitive_closure();
    let schedule = Schedule::new(vec![0; instance.task_count()]);
    assert!(!schedule.respects_precedence(&instance));
    assert!(!FixedSchedule::new(&instance, &schedule)
        .feasible()
        .is_feasible());
    assert_eq!(
        FixedSchedule::new(&instance, &schedule).min_square_chip(),
        None
    );
}
