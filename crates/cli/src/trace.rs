//! Offline exporters for NDJSON search traces written by `--trace`.
//!
//! The `recopack trace` subcommand reads a trace back with the shared
//! [`recopack_json`] parser and converts it into:
//!
//! * **Chrome trace-event JSON** (`--chrome`) — loadable in Perfetto or
//!   `chrome://tracing`; every work unit becomes a track, each
//!   branch decision opens a duration slice that its backtrack closes, and
//!   prunes/propagations/leaves appear as instant events;
//! * **folded stacks** (`--folded`) — `inferno`/`flamegraph.pl` input where
//!   a stack is the chain of branch decisions (`x:3:c;t:7:s;...`) and the
//!   weight is either visited nodes or self-time in nanoseconds;
//! * a **terminal summary** (`--summary`) — hottest subtrees, prune-rule
//!   breakdown, and the branch-depth profile.
//!
//! All three exporters tolerate truncated traces (a journal with a capacity
//! limit or an interrupted solve): unmatched branches are closed at the
//! last timestamp seen, stray backtracks are ignored.

use std::collections::HashMap;
use std::fmt::Write as _;

use recopack_json::Json;

use crate::CliError;

/// One parsed line of an NDJSON search trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TraceEvent {
    pub(crate) subtree: u64,
    pub(crate) depth: u64,
    pub(crate) t_ns: u64,
    pub(crate) kind: TraceKind,
}

/// The payload of a [`TraceEvent`], mirroring the solver's `EventKind`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TraceKind {
    Branch {
        dim: u64,
        pair: u64,
        component: bool,
    },
    Propagate {
        fixes: u64,
    },
    Prune {
        rule: String,
    },
    Backtrack,
    Leaf {
        accepted: bool,
    },
}

fn field(json: &Json, line_no: usize, key: &str) -> Result<u64, CliError> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| CliError::runtime(format!("trace line {line_no}: missing numeric {key:?}")))
}

fn bool_field(json: &Json, line_no: usize, key: &str) -> Result<bool, CliError> {
    json.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| CliError::runtime(format!("trace line {line_no}: missing boolean {key:?}")))
}

/// Parses one NDJSON trace line into an event.
fn parse_line(line: &str, line_no: usize) -> Result<TraceEvent, CliError> {
    let json =
        Json::parse(line).map_err(|e| CliError::runtime(format!("trace line {line_no}: {e}")))?;
    let kind = match json.get("event").and_then(Json::as_str) {
        Some("branch") => TraceKind::Branch {
            dim: field(&json, line_no, "dim")?,
            pair: field(&json, line_no, "pair")?,
            component: bool_field(&json, line_no, "component")?,
        },
        Some("propagate") => TraceKind::Propagate {
            fixes: field(&json, line_no, "fixes")?,
        },
        Some("prune") => TraceKind::Prune {
            rule: json
                .get("rule")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
        },
        Some("backtrack") => TraceKind::Backtrack,
        Some("leaf") => TraceKind::Leaf {
            accepted: bool_field(&json, line_no, "accepted")?,
        },
        other => {
            return Err(CliError::runtime(format!(
                "trace line {line_no}: unknown event {other:?}"
            )));
        }
    };
    Ok(TraceEvent {
        subtree: field(&json, line_no, "subtree")?,
        depth: field(&json, line_no, "depth")?,
        t_ns: field(&json, line_no, "t_ns")?,
        kind,
    })
}

/// Parses a whole NDJSON trace document; blank lines are allowed.
///
/// Malformed lines — truncated tails of an interrupted solve, unknown
/// event kinds from a newer writer, or stray non-JSON — are skipped and
/// counted rather than aborting the export; the caller surfaces the count
/// as a warning. Only a document where *nothing* parses is an error, so a
/// wrong file (a log, a report) still fails loudly with the reason the
/// first line was refused.
pub(crate) fn parse_ndjson(text: &str) -> Result<(Vec<TraceEvent>, u64), CliError> {
    let mut events = Vec::new();
    let mut skipped = 0u64;
    let mut first_error: Option<CliError> = None;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line, i + 1) {
            Ok(event) => events.push(event),
            Err(e) => {
                skipped += 1;
                first_error.get_or_insert(e);
            }
        }
    }
    match first_error {
        Some(e) if events.is_empty() => Err(CliError::runtime(format!(
            "no valid trace events ({skipped} malformed line{}; first: {})",
            if skipped == 1 { "" } else { "s" },
            e.message
        ))),
        _ => Ok((events, skipped)),
    }
}

/// Reassembles NDJSON lines from arbitrarily-split read chunks.
///
/// A poll of a journal that is still being written can end mid-line; the
/// trailing fragment is carried and completed by the next feed, so the
/// parser only ever sees whole lines.
pub(crate) struct LineCarry {
    carry: String,
}

impl LineCarry {
    pub(crate) fn new() -> Self {
        Self {
            carry: String::new(),
        }
    }

    /// Feeds one read chunk; returns the lines it completed, newline
    /// stripped. A chunk with no newline completes nothing.
    pub(crate) fn feed(&mut self, chunk: &str) -> Vec<String> {
        self.carry.push_str(chunk);
        let mut lines = Vec::new();
        while let Some(pos) = self.carry.find('\n') {
            let line: String = self.carry.drain(..=pos).collect();
            lines.push(line.trim_end_matches(['\r', '\n']).to_string());
        }
        lines
    }
}

/// How long `--follow` tolerates a journal that has stopped growing before
/// concluding the writer died without an explicit end record, unless
/// overridden with `--idle-timeout-ms`.
pub(crate) const FOLLOW_IDLE: std::time::Duration = std::time::Duration::from_secs(2);

/// Poll interval while tailing.
const FOLLOW_POLL: std::time::Duration = std::time::Duration::from_millis(25);

/// Tails a journal that may still be written: polls for appended bytes,
/// carries partial lines across reads, and returns the accumulated text
/// once an `"event":"end"` record arrives (excluded from the result) or
/// the file has been silent for `idle_timeout` (zero = wait forever for
/// the end record).
pub(crate) fn follow(path: &str, idle_timeout: std::time::Duration) -> Result<String, CliError> {
    use std::io::Read as _;
    let mut file = std::fs::File::open(path)
        .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
    let mut carry = LineCarry::new();
    let mut collected = String::new();
    let mut idle = std::time::Duration::ZERO;
    let mut buf = Vec::new();
    loop {
        buf.clear();
        let read = file
            .read_to_end(&mut buf)
            .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
        if read == 0 {
            idle += FOLLOW_POLL;
            if !idle_timeout.is_zero() && idle >= idle_timeout {
                break;
            }
            std::thread::sleep(FOLLOW_POLL);
            continue;
        }
        idle = std::time::Duration::ZERO;
        // The journal is ASCII JSON, so a lossy conversion never splits a
        // character across reads.
        for line in carry.feed(&String::from_utf8_lossy(&buf)) {
            if line.contains("\"event\":\"end\"") {
                return Ok(collected);
            }
            collected.push_str(&line);
            collected.push('\n');
        }
    }
    Ok(collected)
}

/// The slice name of a branch decision: dimension, pair, and choice
/// (`c` = component/overlap, `s` = comparability/separate).
fn branch_name(dim: u64, pair: u64, component: bool) -> String {
    let d = match dim {
        0 => "x",
        1 => "y",
        2 => "t",
        _ => "?",
    };
    format!("{d}:{pair}:{}", if component { 'c' } else { 's' })
}

fn push_ts(out: &mut String, t_ns: u64) {
    // Chrome trace timestamps are microseconds; keep ns resolution.
    let _ = write!(out, "{}.{:03}", t_ns / 1_000, t_ns % 1_000);
}

/// Converts a trace into Chrome trace-event JSON (the `traceEvents` array
/// format): one track (`tid`) per work unit, duration slices from
/// branch to matching backtrack, instant events for everything else.
pub(crate) fn to_chrome(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut emit = |piece: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(&piece);
    };
    // Open-slice stack per subtree, for defensive EOF handling.
    let mut open: HashMap<u64, Vec<String>> = HashMap::new();
    let mut seen: Vec<u64> = Vec::new();
    let mut last_ts = 0;
    for e in events {
        last_ts = last_ts.max(e.t_ns);
        if !seen.contains(&e.subtree) {
            seen.push(e.subtree);
        }
        let mut piece = String::new();
        match &e.kind {
            TraceKind::Branch {
                dim,
                pair,
                component,
            } => {
                let name = branch_name(*dim, *pair, *component);
                piece.push_str("{\"ph\":\"B\",\"pid\":1,\"tid\":");
                let _ = write!(piece, "{}", e.subtree);
                piece.push_str(",\"ts\":");
                push_ts(&mut piece, e.t_ns);
                piece.push_str(",\"name\":\"");
                piece.push_str(&name);
                piece.push_str("\",\"cat\":\"branch\"}");
                open.entry(e.subtree).or_default().push(name);
            }
            TraceKind::Backtrack => {
                // A backtrack without an open slice (truncated trace head)
                // is dropped rather than corrupting the nesting.
                if open.entry(e.subtree).or_default().pop().is_none() {
                    continue;
                }
                piece.push_str("{\"ph\":\"E\",\"pid\":1,\"tid\":");
                let _ = write!(piece, "{}", e.subtree);
                piece.push_str(",\"ts\":");
                push_ts(&mut piece, e.t_ns);
                piece.push('}');
            }
            TraceKind::Propagate { fixes } => {
                piece.push_str("{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":");
                let _ = write!(piece, "{}", e.subtree);
                piece.push_str(",\"ts\":");
                push_ts(&mut piece, e.t_ns);
                let _ = write!(
                    piece,
                    ",\"name\":\"propagate\",\"cat\":\"propagate\",\"args\":{{\"fixes\":{fixes}}}}}"
                );
            }
            TraceKind::Prune { rule } => {
                piece.push_str("{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":");
                let _ = write!(piece, "{}", e.subtree);
                piece.push_str(",\"ts\":");
                push_ts(&mut piece, e.t_ns);
                let _ = write!(piece, ",\"name\":\"prune:{rule}\",\"cat\":\"prune\"}}");
            }
            TraceKind::Leaf { accepted } => {
                piece.push_str("{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":");
                let _ = write!(piece, "{}", e.subtree);
                piece.push_str(",\"ts\":");
                push_ts(&mut piece, e.t_ns);
                let _ = write!(
                    piece,
                    ",\"name\":\"leaf:{}\",\"cat\":\"leaf\"}}",
                    if *accepted { "accepted" } else { "rejected" }
                );
            }
        }
        emit(piece, &mut out);
    }
    // Close slices left open by a truncated or interrupted trace.
    for (subtree, stack) in &open {
        for _ in stack {
            let mut piece = String::new();
            piece.push_str("{\"ph\":\"E\",\"pid\":1,\"tid\":");
            let _ = write!(piece, "{subtree}");
            piece.push_str(",\"ts\":");
            push_ts(&mut piece, last_ts);
            piece.push('}');
            emit(piece, &mut out);
        }
    }
    // Name the tracks so Perfetto shows "subtree N" instead of bare tids.
    for subtree in &seen {
        let mut piece = String::new();
        let _ = write!(
            piece,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{subtree},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"subtree {subtree}\"}}}}"
        );
        emit(piece, &mut out);
    }
    out.push_str("]}");
    out
}

/// How folded-stack samples are weighted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum FoldedWeight {
    /// One sample per branch decision (node counts; thread-count invariant).
    #[default]
    Nodes,
    /// Self-time in nanoseconds between a branch and its backtrack.
    TimeNs,
}

/// One open frame of the folded-stack reconstruction.
struct FoldedFrame {
    name: String,
    opened_ns: u64,
    child_ns: u64,
}

/// Converts a trace into folded-stack lines (`frame;frame;... weight`),
/// the input format of `flamegraph.pl` and `inferno-flamegraph`.
pub(crate) fn to_folded(events: &[TraceEvent], weight: FoldedWeight) -> String {
    // Stack of open branch frames per subtree, and the accumulated weights.
    let mut stacks: HashMap<u64, Vec<FoldedFrame>> = HashMap::new();
    let mut weights: HashMap<String, u64> = HashMap::new();
    let mut last_ts = 0;
    let stack_key = |subtree: u64, frames: &[FoldedFrame]| {
        let mut key = format!("subtree:{subtree}");
        for frame in frames {
            key.push(';');
            key.push_str(&frame.name);
        }
        key
    };
    let pop = |subtree: u64,
               frames: &mut Vec<FoldedFrame>,
               t_ns: u64,
               weights: &mut HashMap<String, u64>| {
        let Some(frame) = frames.pop() else {
            return;
        };
        if weight == FoldedWeight::TimeNs {
            let total = t_ns.saturating_sub(frame.opened_ns);
            let self_ns = total.saturating_sub(frame.child_ns);
            let mut key = stack_key(subtree, frames);
            key.push(';');
            key.push_str(&frame.name);
            *weights.entry(key).or_default() += self_ns;
            if let Some(parent) = frames.last_mut() {
                parent.child_ns += total;
            }
        }
    };
    for e in events {
        last_ts = last_ts.max(e.t_ns);
        let frames = stacks.entry(e.subtree).or_default();
        match &e.kind {
            TraceKind::Branch {
                dim,
                pair,
                component,
            } => {
                frames.push(FoldedFrame {
                    name: branch_name(*dim, *pair, *component),
                    opened_ns: e.t_ns,
                    child_ns: 0,
                });
                if weight == FoldedWeight::Nodes {
                    *weights.entry(stack_key(e.subtree, frames)).or_default() += 1;
                }
            }
            TraceKind::Backtrack => pop(e.subtree, frames, e.t_ns, &mut weights),
            TraceKind::Propagate { .. } | TraceKind::Prune { .. } | TraceKind::Leaf { .. } => {}
        }
    }
    // Unwind frames left open by a truncated trace at the last timestamp.
    for (subtree, frames) in &mut stacks {
        while !frames.is_empty() {
            pop(*subtree, frames, last_ts, &mut weights);
        }
    }
    let mut lines: Vec<(String, u64)> = weights.into_iter().filter(|(_, w)| *w > 0).collect();
    lines.sort();
    let mut out = String::new();
    for (stack, w) in lines {
        let _ = writeln!(out, "{stack} {w}");
    }
    out
}

/// Renders a terminal summary: totals, prune-rule breakdown, hottest
/// subtrees, and the branch-depth profile.
pub(crate) fn summary(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    if events.is_empty() {
        out.push_str("empty trace\n");
        return out;
    }
    let mut branches = 0u64;
    let mut propagates = 0u64;
    let mut backtracks = 0u64;
    let mut leaves = [0u64; 2];
    let mut prunes: Vec<(String, u64)> = Vec::new();
    let mut per_subtree: HashMap<u64, u64> = HashMap::new();
    let mut per_depth: Vec<u64> = Vec::new();
    let mut span_ns = 0u64;
    for e in events {
        span_ns = span_ns.max(e.t_ns);
        match &e.kind {
            TraceKind::Branch { .. } => {
                branches += 1;
                *per_subtree.entry(e.subtree).or_default() += 1;
                let depth = e.depth as usize;
                if per_depth.len() <= depth {
                    per_depth.resize(depth + 1, 0);
                }
                per_depth[depth] += 1;
            }
            TraceKind::Propagate { .. } => propagates += 1,
            TraceKind::Backtrack => backtracks += 1,
            TraceKind::Leaf { accepted } => leaves[usize::from(*accepted)] += 1,
            TraceKind::Prune { rule } => match prunes.iter_mut().find(|(r, _)| r == rule) {
                Some((_, n)) => *n += 1,
                None => prunes.push((rule.clone(), 1)),
            },
        }
    }
    let _ = writeln!(
        out,
        "trace: {} events, {} subtrees, span {:.3} ms",
        events.len(),
        per_subtree.len().max(1),
        span_ns as f64 / 1e6
    );
    let _ = writeln!(
        out,
        "  branches {branches} · propagations {propagates} · backtracks {backtracks} \
         · leaves {} accepted / {} rejected",
        leaves[1], leaves[0]
    );
    let total_prunes: u64 = prunes.iter().map(|(_, n)| n).sum();
    if total_prunes > 0 {
        prunes.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let _ = write!(out, "  prunes {total_prunes}:");
        for (rule, n) in &prunes {
            let _ = write!(
                out,
                " {rule} {n} ({:.0}%)",
                *n as f64 * 100.0 / total_prunes as f64
            );
        }
        out.push('\n');
    }
    // Hottest subtrees by branch count.
    let mut hot: Vec<(u64, u64)> = per_subtree.into_iter().collect();
    hot.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    if hot.len() > 1 {
        let _ = write!(out, "  hottest subtrees:");
        for (subtree, n) in hot.iter().take(5) {
            let _ = write!(out, " #{subtree} ({n} branches)");
        }
        out.push('\n');
    }
    // Depth profile as a log-ish bar chart of branch counts.
    let peak = per_depth.iter().copied().max().unwrap_or(0).max(1);
    out.push_str("  depth profile (branches per depth):\n");
    for (depth, n) in per_depth.iter().enumerate() {
        let bar = (n * 40).div_ceil(peak) as usize;
        let _ = writeln!(out, "    {depth:>4} {:<40} {n}", "#".repeat(bar));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn follow_idle_timeout_bounds_the_silent_tail() {
        // A journal with no end record: a finite idle timeout gives up
        // after roughly that much silence instead of the 2 s default.
        let path = std::env::temp_dir().join("recopack-trace-test-idle.ndjson");
        std::fs::write(
            &path,
            "{\"subtree\":0,\"depth\":0,\"t_ns\":5,\"event\":\"backtrack\"}\n",
        )
        .expect("writable temp dir");
        let started = std::time::Instant::now();
        let text = follow(
            path.to_str().expect("utf8 path"),
            std::time::Duration::from_millis(50),
        )
        .expect("follow returns");
        assert!(text.contains("backtrack"), "{text}");
        assert!(
            started.elapsed() < FOLLOW_IDLE,
            "a 50 ms idle timeout must beat the 2 s default"
        );
    }

    #[test]
    fn follow_zero_idle_timeout_waits_for_the_end_record() {
        use std::io::Write as _;
        // Timeout 0 = wait forever: the writer stays silent for far longer
        // than a short finite timeout would tolerate, then lands the end
        // record — follow must still be there to see it.
        let path = std::env::temp_dir().join("recopack-trace-test-forever.ndjson");
        std::fs::write(&path, "").expect("writable temp dir");
        let writer_path = path.clone();
        let writer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(200));
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&writer_path)
                .expect("journal opens");
            file.write_all(
                b"{\"subtree\":0,\"depth\":1,\"t_ns\":9,\"event\":\"backtrack\"}\n\
                  {\"event\":\"end\",\"job\":1,\"status\":\"done\",\"dropped\":0}\n",
            )
            .expect("append");
        });
        let text = follow(path.to_str().expect("utf8 path"), std::time::Duration::ZERO)
            .expect("follow returns at the end record");
        writer.join().expect("writer thread");
        assert!(text.contains("backtrack"), "{text}");
        assert!(!text.contains("\"end\""), "end record is excluded: {text}");
    }

    #[test]
    fn line_carry_completes_fragments_across_feeds() {
        let mut carry = LineCarry::new();
        assert!(carry.feed("ab").is_empty(), "no newline completes nothing");
        assert_eq!(carry.feed("c\nde"), vec!["abc".to_string()]);
        assert_eq!(carry.feed("f\n"), vec!["def".to_string()]);
        // Multiple lines in one chunk, CRLF stripped, empty lines preserved.
        assert_eq!(
            carry.feed("one\r\n\ntwo\npartial"),
            vec!["one".to_string(), String::new(), "two".to_string()]
        );
        assert_eq!(carry.feed("\n"), vec!["partial".to_string()]);
    }

    fn ev(subtree: u64, depth: u64, t_ns: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            subtree,
            depth,
            t_ns,
            kind,
        }
    }

    fn sample() -> Vec<TraceEvent> {
        vec![
            ev(
                0,
                0,
                100,
                TraceKind::Branch {
                    dim: 0,
                    pair: 0,
                    component: true,
                },
            ),
            ev(0, 0, 150, TraceKind::Propagate { fixes: 2 }),
            ev(
                0,
                1,
                200,
                TraceKind::Branch {
                    dim: 2,
                    pair: 1,
                    component: false,
                },
            ),
            ev(
                0,
                1,
                300,
                TraceKind::Prune {
                    rule: "c2".to_string(),
                },
            ),
            ev(0, 1, 400, TraceKind::Backtrack),
            ev(0, 1, 500, TraceKind::Leaf { accepted: false }),
            ev(0, 0, 600, TraceKind::Backtrack),
        ]
    }

    #[test]
    fn ndjson_parses_every_event_shape() {
        let text = "\
{\"subtree\":0,\"depth\":0,\"t_ns\":5,\"event\":\"branch\",\"dim\":1,\"pair\":3,\"component\":false}\n\
{\"subtree\":0,\"depth\":0,\"t_ns\":6,\"event\":\"propagate\",\"fixes\":4}\n\
{\"subtree\":1,\"depth\":2,\"t_ns\":7,\"event\":\"prune\",\"rule\":\"orientation\"}\n\
{\"subtree\":0,\"depth\":0,\"t_ns\":8,\"event\":\"backtrack\"}\n\
{\"subtree\":0,\"depth\":3,\"t_ns\":9,\"event\":\"leaf\",\"accepted\":true}\n";
        let (events, skipped) = parse_ndjson(text).expect("parses");
        assert_eq!(events.len(), 5);
        assert_eq!(skipped, 0);
        assert_eq!(
            events[0].kind,
            TraceKind::Branch {
                dim: 1,
                pair: 3,
                component: false
            }
        );
        assert_eq!(events[2].subtree, 1);
        assert_eq!(events[4].kind, TraceKind::Leaf { accepted: true });
        assert!(parse_ndjson("{\"event\":\"wat\"}").is_err());
        assert!(parse_ndjson("not json").is_err());
    }

    #[test]
    fn malformed_lines_are_skipped_and_counted() {
        // A valid backtrack surrounded by every flavor of damage: truncated
        // JSON, an unknown event kind, a missing required field, and noise.
        let text = "\
{\"subtree\":0,\"depth\":0,\"t_ns\":5,\"event\":\"branch\",\"dim\":1,\"pa\n\
{\"subtree\":0,\"depth\":0,\"t_ns\":6,\"event\":\"backtrack\"}\n\
{\"subtree\":0,\"depth\":0,\"t_ns\":7,\"event\":\"quantum_tunnel\"}\n\
{\"subtree\":0,\"depth\":0,\"event\":\"propagate\",\"fixes\":4}\n\
totally not json\n";
        let (events, skipped) = parse_ndjson(text).expect("one valid line survives");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, TraceKind::Backtrack);
        assert_eq!(skipped, 4);
    }

    #[test]
    fn all_malformed_is_an_error_naming_the_first_cause() {
        let err = parse_ndjson("nope\n{\"event\":\"wat\"}\n").expect_err("nothing parses");
        assert!(err.message.contains("no valid trace events"), "{err:?}");
        assert!(err.message.contains("2 malformed lines"), "{err:?}");
        assert!(err.message.contains("line 1"), "{err:?}");
    }

    #[test]
    fn empty_documents_parse_to_nothing() {
        assert_eq!(parse_ndjson("").expect("empty ok"), (Vec::new(), 0));
        assert_eq!(parse_ndjson("\n  \n").expect("blank ok"), (Vec::new(), 0));
    }

    #[test]
    fn chrome_slices_balance_and_parse() {
        let chrome = to_chrome(&sample());
        let json = Json::parse(&chrome).expect("chrome JSON parses");
        let events = json
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        let count = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
                .count()
        };
        assert_eq!(count("B"), 2);
        assert_eq!(count("E"), 2, "every branch slice is closed");
        assert_eq!(count("i"), 3, "propagate, prune, leaf instants");
        assert_eq!(count("M"), 1, "one track-name record per subtree");
        assert!(chrome.contains("\"name\":\"x:0:c\""), "{chrome}");
        assert!(chrome.contains("\"name\":\"prune:c2\""), "{chrome}");
    }

    #[test]
    fn chrome_closes_unmatched_slices_at_eof() {
        let mut events = sample();
        events.truncate(4); // drop the backtracks: two slices stay open
        let chrome = to_chrome(&events);
        let json = Json::parse(&chrome).expect("chrome JSON parses");
        let arr = json
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("array");
        let b = arr
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
            .count();
        let e = arr
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("E"))
            .count();
        assert_eq!(b, e);
    }

    #[test]
    fn folded_node_weights_sum_to_branch_count() {
        let folded = to_folded(&sample(), FoldedWeight::Nodes);
        let total: u64 = folded
            .lines()
            .map(|l| {
                l.rsplit(' ')
                    .next()
                    .expect("weight")
                    .parse::<u64>()
                    .expect("number")
            })
            .sum();
        assert_eq!(total, 2, "one sample per branch");
        assert!(folded.contains("subtree:0;x:0:c 1"), "{folded}");
        assert!(folded.contains("subtree:0;x:0:c;t:1:s 1"), "{folded}");
    }

    #[test]
    fn folded_self_time_partitions_the_span() {
        let folded = to_folded(&sample(), FoldedWeight::TimeNs);
        // Outer frame [100, 600] minus inner [200, 400] = 300 self;
        // inner frame = 200 self.
        assert!(folded.contains("subtree:0;x:0:c 300"), "{folded}");
        assert!(folded.contains("subtree:0;x:0:c;t:1:s 200"), "{folded}");
    }

    #[test]
    fn summary_reports_rules_and_depths() {
        let text = summary(&sample());
        assert!(text.contains("7 events"), "{text}");
        assert!(text.contains("c2 1 (100%)"), "{text}");
        assert!(text.contains("branches 2"), "{text}");
        assert!(summary(&[]).contains("empty trace"));
    }
}
