//! The live `--progress` reporter: a sampler thread that periodically reads
//! a [`ProgressCounters`] sink and rewrites one stderr status line, e.g.
//!
//! ```text
//! nodes 1.2M (410.0k/s) · depth 14/31 · prunes c2:62% c3:20% · elapsed 12.4s
//! ```
//!
//! The line is rewritten in place (`\r` + clear-to-end), so it only makes
//! sense on a terminal; the CLI auto-disables it when stderr is not a TTY
//! unless an explicit interval forces it. On finish the final totals are
//! printed and terminated with a newline, leaving the scrollback clean.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use recopack_core::{EventTotals, ProgressCounters, PruneRule};

/// Formats a count with a metric suffix (`1234` → `1.2k`).
fn human(n: u64) -> String {
    match n {
        0..=9_999 => format!("{n}"),
        10_000..=999_999 => format!("{:.1}k", n as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}M", n as f64 / 1e6),
        _ => format!("{:.2}G", n as f64 / 1e9),
    }
}

/// Renders one status line from a snapshot.
fn status_line(totals: &EventTotals, rate: f64, total_slots: u64, elapsed: Duration) -> String {
    use std::fmt::Write as _;
    let mut line = format!(
        "nodes {} ({}/s)",
        human(totals.branches),
        human(rate as u64)
    );
    let _ = write!(line, " · depth {}/{}", totals.max_depth, total_slots);
    let prunes = totals.prunes_total();
    if prunes > 0 {
        line.push_str(" · prunes");
        let mut rules: Vec<(PruneRule, u64)> = PruneRule::ALL
            .into_iter()
            .map(|r| (r, totals.prunes[r.index()]))
            .filter(|(_, n)| *n > 0)
            .collect();
        rules.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        for (rule, n) in rules.into_iter().take(2) {
            let _ = write!(
                line,
                " {}:{:.0}%",
                rule.name(),
                n as f64 * 100.0 / prunes as f64
            );
        }
    }
    let _ = write!(line, " · elapsed {:.1}s", elapsed.as_secs_f64());
    line
}

/// A running progress reporter; dropping (or calling [`finish`]) stops the
/// sampler thread and prints the final line.
///
/// [`finish`]: Reporter::finish
pub(crate) struct Reporter {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Reporter {
    /// Starts the sampler over `counters`, redrawing every `interval`.
    /// `total_slots` is the depth budget shown as `depth <max>/<total>`
    /// (three dimensions times the number of task pairs).
    pub(crate) fn start(
        counters: Arc<ProgressCounters>,
        interval: Duration,
        total_slots: u64,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("recopack-progress".to_string())
            .spawn(move || {
                let started = Instant::now();
                let mut last = (Instant::now(), 0u64);
                while !stop_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(interval.min(Duration::from_millis(50)));
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    if last.0.elapsed() < interval {
                        continue;
                    }
                    let totals = counters.snapshot();
                    let dt = last.0.elapsed().as_secs_f64();
                    let rate = (totals.branches - last.1) as f64 / dt.max(1e-9);
                    last = (Instant::now(), totals.branches);
                    let line = status_line(&totals, rate, total_slots, started.elapsed());
                    let mut err = std::io::stderr().lock();
                    let _ = write!(err, "\r\x1b[K{line}");
                    let _ = err.flush();
                }
                // Final totals, average rate, then release the line.
                let totals = counters.snapshot();
                let elapsed = started.elapsed();
                let rate = totals.branches as f64 / elapsed.as_secs_f64().max(1e-9);
                let line = status_line(&totals, rate, total_slots, elapsed);
                let mut err = std::io::stderr().lock();
                let _ = writeln!(err, "\r\x1b[K{line}");
                let _ = err.flush();
            })
            .expect("progress thread spawns");
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the sampler and prints the final line.
    pub(crate) fn finish(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_suffixes() {
        assert_eq!(human(950), "950");
        assert_eq!(human(12_345), "12.3k");
        assert_eq!(human(1_234_567), "1.2M");
        assert_eq!(human(7_000_000_000), "7.00G");
    }

    #[test]
    fn status_line_shows_the_dominant_rules() {
        let totals = EventTotals {
            branches: 1_200_000,
            prunes: [620, 200, 10, 0],
            max_depth: 14,
            ..EventTotals::default()
        };
        let line = status_line(&totals, 410_000.0, 31, Duration::from_millis(12_400));
        assert!(line.contains("nodes 1.2M"), "{line}");
        assert!(line.contains("(410.0k/s)"), "{line}");
        assert!(line.contains("depth 14/31"), "{line}");
        assert!(line.contains("c2:75%"), "{line}");
        assert!(line.contains("c3:24%"), "{line}");
        assert!(!line.contains("c4:"), "only the top two rules are shown");
        assert!(line.contains("elapsed 12.4s"), "{line}");
    }

    #[test]
    fn reporter_stops_cleanly() {
        let counters = Arc::new(ProgressCounters::new());
        let reporter = Reporter::start(counters, Duration::from_millis(5), 10);
        std::thread::sleep(Duration::from_millis(20));
        reporter.finish();
    }
}
