//! The `recopack` binary: see [`recopack_cli::USAGE`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match recopack_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code);
        }
    }
}
