//! Implementation of the `recopack` command-line tool.
//!
//! Subcommands (instances use the text format of
//! [`recopack_model::format`]):
//!
//! * `solve <file>` — decide feasibility, print the placement and timeline;
//! * `bmp <file>` — minimize the square chip for the file's horizon;
//! * `spp <file>` — minimize the execution time on the file's chip;
//! * `pareto <file>` — enumerate Pareto-optimal (chip, time) points;
//! * `check <file> <placement>` — verify a placement file geometrically;
//! * `render <file> <placement>` — print a Gantt chart (or SVG with `--svg`);
//! * `sample <de|codec|pair>` — print a ready-made instance file;
//! * `trace <events.ndjson>` — export a `--trace` journal as a Chrome
//!   trace, folded flamegraph stacks, or a terminal summary;
//! * `serve` — run the long-lived solver service (HTTP job queue, health,
//!   Prometheus metrics) until SIGTERM/ctrl-c;
//! * `help` — usage.
//!
//! All subcommands accept `--no-precedence` (drop the partial order, the
//! paper's Figure 7(b) mode), `--floorplans` (print the chip occupancy
//! between reconfiguration events), and `--emit-placement` (print solutions
//! as `place` lines consumable by `check`/`render`). The solver subcommands
//! (`solve`, `bmp`, `spp`, `pareto`) additionally accept
//! `--stats-json <path>` to write a versioned [`SolveReport`] JSON document,
//! `--trace <path>` to stream the search event journal as NDJSON,
//! `--progress[=<ms>]` for a live stderr status line, and `--profile` to
//! collect per-phase wall times into the report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod progress;
mod trace;

use std::fmt::Write as _;
use std::io::IsTerminal as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use recopack_core::{
    pareto_front_with_stats, per_second, Bmp, EventTotals, Fanout, FileJournal, Opp,
    ProgressCounters, Sampler, SolveOutcome, SolveReport, SolverConfig, SolverStats, Spp,
    Telemetry, TelemetrySink, SAMPLER_DEFAULT_HZ,
};
use recopack_model::{benchmarks, format, render, Chip, Instance, Placement};

/// A CLI failure with a message and a suggested exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Suggested process exit code.
    pub exit_code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            exit_code: 2,
        }
    }

    fn runtime(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            exit_code: 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

/// Usage text printed by `help` and on argument errors.
pub const USAGE: &str = "\
recopack — optimal FPGA module placement with temporal precedence constraints

USAGE:
    recopack <command> [options]

COMMANDS:
    solve  <file>            decide feasibility of the instance file
    bmp    <file>            minimize the square chip for the file's horizon
    spp    <file>            minimize the execution time on the file's chip
    pareto <file>            enumerate Pareto-optimal (chip side, time) points
    check  <file> <place>    verify a placement file against the instance
    render <file> <place>    print a Gantt chart of a placement file
    sample <de|codec|pair>   print a ready-made instance file
    trace  <events.ndjson>   export a recorded search trace (see below)
    serve                    run the solver service until SIGTERM/ctrl-c
    help                     show this message

OPTIONS:
    --no-precedence          drop all precedence arcs before solving
    --no-bounds              skip the lower-bound refutation stage
    --no-heuristics          skip the heuristic placement stage (useful with
                             --trace/--progress to observe the exact search)
    --floorplans             also print chip occupancy between events
    --emit-placement         print solutions as `place` lines
    --svg                    render as an SVG document instead of a Gantt
    --threads <n|auto>       worker threads for the branch-and-bound
                             (default 1 = sequential, auto = all hardware
                             threads; the answer is thread-count invariant)
    --stats-json <path>      write a versioned JSON telemetry report (wall
                             time, node counts, per-rule conflicts) for
                             solve/bmp/spp/pareto
    --trace <path>           stream every search event to <path> as NDJSON
                             (read back with `recopack trace`)
    --progress[=<ms>]        live stderr status line while solving, redrawn
                             every <ms> (default 200; requires a TTY unless
                             an explicit interval forces it)
    --profile                collect per-phase wall times (propagation,
                             bounds, realization, per-rule refutations) into
                             the stats report; timings are informational and
                             vary with the thread count
    --sample-profile[=<hz>]  attach the sampling profiler to the solve: a
                             detached thread reads the always-on worker
                             activity beacons at <hz> (default 97) and
                             writes folded stacks plus a top-K summary;
                             node counts are unaffected
    --sample-out <path>      folded-stack output path for --sample-profile
                             (default sample.folded; flamegraph-compatible,
                             like `recopack trace --folded`)

SERVICE (for `recopack serve`):
    --addr <host:port>       listen address (default 127.0.0.1:7878; port 0
                             binds an ephemeral port)
    --queue-depth <n>        bounded job-queue capacity; submissions beyond
                             it get 503 (default 16)
    --max-connections <n>    concurrent client connection cap; further
                             connects get an immediate 503 (default 64)
                             (`--threads` sets the solver worker count)
    --slow-job-ms <n>        flight-recorder slow-job threshold: jobs whose
                             solve wall time exceeds it are pinned in
                             GET /debug/jobs and logged as job_slow
                             (default 1000; 0 disables the slow log)

TRACE EXPORT (for `recopack trace <events.ndjson>`):
    --chrome <path>          write Chrome trace-event JSON (Perfetto,
                             chrome://tracing); one track per subtree
    --folded <path>          write folded stacks for flamegraph tooling
    --weight <nodes|t_ns>    folded-stack weighting (default nodes)
    --summary                print totals, prune shares, depth profile
                             (default when no export flag is given)
    --follow                 tail a journal that is still being written:
                             poll for appended lines until its end record
                             (or --idle-timeout-ms of silence), then export
                             as usual
    --idle-timeout-ms <n>    how long --follow tolerates a silent journal
                             before giving up (default 2000; 0 = wait
                             forever for the end record)
";

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Options {
    no_precedence: bool,
    no_bounds: bool,
    no_heuristics: bool,
    floorplans: bool,
    emit_placement: bool,
    svg: bool,
    threads: usize,
    stats_json: Option<String>,
    trace: Option<String>,
    /// `None` = no progress; `Some(None)` = on with the default interval
    /// (TTY-gated); `Some(Some(ms))` = explicit interval, forces output.
    progress: Option<Option<u64>>,
    profile: bool,
    /// `None` = no sampling; `Some(None)` = on at the default rate;
    /// `Some(Some(hz))` = explicit sampling rate.
    sample_profile: Option<Option<u64>>,
    sample_out: String,
    chrome: Option<String>,
    folded: Option<String>,
    summary: bool,
    follow: bool,
    idle_timeout_ms: u64,
    weight: trace::FoldedWeight,
    addr: Option<String>,
    queue_depth: usize,
    max_connections: usize,
    slow_job_ms: u64,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            no_precedence: false,
            no_bounds: false,
            no_heuristics: false,
            floorplans: false,
            emit_placement: false,
            svg: false,
            threads: 1,
            stats_json: None,
            trace: None,
            progress: None,
            profile: false,
            sample_profile: None,
            sample_out: "sample.folded".to_string(),
            chrome: None,
            folded: None,
            summary: false,
            follow: false,
            idle_timeout_ms: trace::FOLLOW_IDLE.as_millis() as u64,
            weight: trace::FoldedWeight::default(),
            addr: None,
            queue_depth: 16,
            max_connections: 64,
            slow_job_ms: 1000,
        }
    }
}

impl Options {
    fn solver_config(&self) -> SolverConfig {
        SolverConfig {
            threads: self.threads,
            profile: self.profile,
            use_bounds: !self.no_bounds,
            use_heuristics: !self.no_heuristics,
            ..SolverConfig::default()
        }
    }
}

/// Resolves a value-taking flag: `--flag=value` or `--flag value`.
fn take_value<'a>(
    flag: &str,
    inline: Option<&'a str>,
    iter: &mut std::slice::Iter<'a, String>,
) -> Result<&'a str, CliError> {
    match inline {
        Some(v) => Ok(v),
        None => iter
            .next()
            .map(String::as_str)
            .ok_or_else(|| CliError::usage(format!("{flag} requires a value"))),
    }
}

/// Rejects an inline value on a flag that does not take one.
fn no_value(flag: &str, inline: Option<&str>) -> Result<(), CliError> {
    match inline {
        Some(v) => Err(CliError::usage(format!(
            "{flag} does not take a value (got {v:?})"
        ))),
        None => Ok(()),
    }
}

fn split_args(args: &[String]) -> Result<(Vec<&str>, Options), CliError> {
    let mut positional = Vec::new();
    let mut options = Options::default();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if !a.starts_with('-') || a == "-" {
            positional.push(a.as_str());
            continue;
        }
        let (flag, inline) = match a.split_once('=') {
            Some((f, v)) => (f, Some(v)),
            None => (a.as_str(), None),
        };
        match flag {
            "--no-precedence" => {
                no_value(flag, inline)?;
                options.no_precedence = true;
            }
            "--no-bounds" => {
                no_value(flag, inline)?;
                options.no_bounds = true;
            }
            "--no-heuristics" => {
                no_value(flag, inline)?;
                options.no_heuristics = true;
            }
            "--floorplans" => {
                no_value(flag, inline)?;
                options.floorplans = true;
            }
            "--emit-placement" => {
                no_value(flag, inline)?;
                options.emit_placement = true;
            }
            "--svg" => {
                no_value(flag, inline)?;
                options.svg = true;
            }
            "--summary" => {
                no_value(flag, inline)?;
                options.summary = true;
            }
            "--follow" => {
                no_value(flag, inline)?;
                options.follow = true;
            }
            "--profile" => {
                no_value(flag, inline)?;
                options.profile = true;
            }
            "--threads" => {
                let value = take_value(flag, inline, &mut iter)?;
                options.threads = match value {
                    "auto" => 0,
                    "0" => {
                        return Err(CliError::usage(
                            "--threads 0 is not a thread count; use --threads auto \
                             for all hardware threads",
                        ));
                    }
                    n => n.parse().map_err(|_| {
                        CliError::usage(format!("--threads expects a number or auto, got {n:?}"))
                    })?,
                };
            }
            "--stats-json" => {
                options.stats_json = Some(take_value(flag, inline, &mut iter)?.to_string());
            }
            "--trace" => {
                options.trace = Some(take_value(flag, inline, &mut iter)?.to_string());
            }
            "--chrome" => {
                options.chrome = Some(take_value(flag, inline, &mut iter)?.to_string());
            }
            "--folded" => {
                options.folded = Some(take_value(flag, inline, &mut iter)?.to_string());
            }
            "--addr" => {
                options.addr = Some(take_value(flag, inline, &mut iter)?.to_string());
            }
            "--queue-depth" => {
                let value = take_value(flag, inline, &mut iter)?;
                options.queue_depth = match value.parse() {
                    Ok(0) | Err(_) => {
                        return Err(CliError::usage(format!(
                            "--queue-depth expects a positive number, got {value:?}"
                        )));
                    }
                    Ok(n) => n,
                };
            }
            "--max-connections" => {
                let value = take_value(flag, inline, &mut iter)?;
                options.max_connections = match value.parse() {
                    Ok(0) | Err(_) => {
                        return Err(CliError::usage(format!(
                            "--max-connections expects a positive number, got {value:?}"
                        )));
                    }
                    Ok(n) => n,
                };
            }
            "--slow-job-ms" => {
                let value = take_value(flag, inline, &mut iter)?;
                options.slow_job_ms = value.parse().map_err(|_| {
                    CliError::usage(format!(
                        "--slow-job-ms expects milliseconds (0 disables), got {value:?}"
                    ))
                })?;
            }
            "--weight" => {
                options.weight = match take_value(flag, inline, &mut iter)? {
                    "nodes" => trace::FoldedWeight::Nodes,
                    "t_ns" => trace::FoldedWeight::TimeNs,
                    other => {
                        return Err(CliError::usage(format!(
                            "--weight expects nodes or t_ns, got {other:?}"
                        )));
                    }
                };
            }
            // Only the inline form takes a rate, so a following operand is
            // never swallowed: `--sample-profile file.rpk` works.
            "--sample-profile" => {
                options.sample_profile = Some(match inline {
                    None => None,
                    Some(hz) => {
                        let parsed: u64 = hz.parse().map_err(|_| {
                            CliError::usage(format!(
                                "--sample-profile expects a sampling rate in Hz, got {hz:?}"
                            ))
                        })?;
                        if parsed == 0 {
                            return Err(CliError::usage(
                                "--sample-profile expects a positive Hz (omit the value \
                                 for the default 97)",
                            ));
                        }
                        Some(parsed)
                    }
                });
            }
            "--sample-out" => {
                options.sample_out = take_value(flag, inline, &mut iter)?.to_string();
            }
            "--idle-timeout-ms" => {
                let value = take_value(flag, inline, &mut iter)?;
                options.idle_timeout_ms = value.parse().map_err(|_| {
                    CliError::usage(format!(
                        "--idle-timeout-ms expects milliseconds (0 = wait forever), \
                         got {value:?}"
                    ))
                })?;
            }
            // Only the inline form takes an interval, so a following
            // operand is never swallowed: `--progress file.rpk` works.
            "--progress" => {
                options.progress = Some(match inline {
                    None => None,
                    Some(ms) => Some(ms.parse().map_err(|_| {
                        CliError::usage(format!("--progress expects milliseconds, got {ms:?}"))
                    })?),
                });
            }
            _ => {
                return Err(CliError::usage(format!("unknown option {a:?}\n\n{USAGE}")));
            }
        }
    }
    Ok((positional, options))
}

fn load_instance(path: &str, options: &Options) -> Result<Instance, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
    let mut instance =
        format::parse_instance(&text).map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    instance = if options.no_precedence {
        instance.without_precedence()
    } else {
        instance.with_transitive_closure()
    };
    Ok(instance)
}

/// Everything a `--stats-json` report needs besides the options and stats:
/// what ran, on what, how it went, and what the trace session observed.
struct ReportMeta<'a> {
    command: &'a str,
    instance: &'a str,
    outcome: String,
    decisions: u32,
    started: Instant,
    events: Option<EventTotals>,
    journal_dropped: Option<u64>,
}

/// Writes the `--stats-json` report, if one was requested.
fn write_report(
    options: &Options,
    meta: ReportMeta<'_>,
    stats: &SolverStats,
) -> Result<(), CliError> {
    let Some(path) = &options.stats_json else {
        return Ok(());
    };
    let wall_ms = meta.started.elapsed().as_secs_f64() * 1000.0;
    let per_sec = |count: u64| per_second(count, wall_ms);
    let report = SolveReport {
        command: meta.command.to_string(),
        instance: meta.instance.to_string(),
        outcome: meta.outcome,
        threads: options.threads,
        decisions: meta.decisions,
        wall_ms,
        nodes_per_sec: per_sec(stats.nodes),
        propagation_events_per_sec: per_sec(stats.propagation_events),
        stats: stats.clone(),
        events: meta.events,
        journal_dropped: meta.journal_dropped,
    };
    let mut text = report.to_json();
    text.push('\n');
    std::fs::write(path, text).map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))
}

/// The per-solve observability session: the `--trace` NDJSON journal, the
/// event counters backing `--progress` and the report's `events` totals,
/// and the live reporter thread. [`finish`] tears everything down and
/// returns what belongs in the [`SolveReport`].
///
/// [`finish`]: TraceSession::finish
struct TraceSession {
    journal: Option<Arc<FileJournal>>,
    counters: Option<Arc<ProgressCounters>>,
    reporter: Option<progress::Reporter>,
    trace_path: Option<String>,
}

impl TraceSession {
    fn start(options: &Options, instance: &Instance) -> Result<Self, CliError> {
        let journal = match &options.trace {
            Some(path) => Some(Arc::new(
                FileJournal::create(std::path::Path::new(path)).map_err(|e| {
                    CliError::runtime(format!("cannot create trace file {path}: {e}"))
                })?,
            )),
            None => None,
        };
        // Counters ride along whenever any observability was requested, so
        // the stats report can carry event totals.
        let counters = (journal.is_some() || options.progress.is_some())
            .then(|| Arc::new(ProgressCounters::new()));
        let reporter = match (&counters, options.progress) {
            (Some(counters), Some(interval)) => {
                // A bare `--progress` is pointless when stderr is piped; an
                // explicit interval is taken as "I know what I'm doing".
                if interval.is_some() || std::io::stderr().is_terminal() {
                    let n = instance.task_count() as u64;
                    let total_slots = 3 * n * n.saturating_sub(1) / 2;
                    Some(progress::Reporter::start(
                        counters.clone(),
                        Duration::from_millis(interval.unwrap_or(200).max(1)),
                        total_slots,
                    ))
                } else {
                    None
                }
            }
            _ => None,
        };
        Ok(Self {
            journal,
            counters,
            reporter,
            trace_path: options.trace.clone(),
        })
    }

    /// The telemetry handle to install into the solver configuration.
    fn telemetry(&self) -> Telemetry {
        let mut sinks: Vec<Arc<dyn TelemetrySink>> = Vec::new();
        if let Some(journal) = &self.journal {
            sinks.push(journal.clone());
        }
        if let Some(counters) = &self.counters {
            sinks.push(counters.clone());
        }
        match sinks.len() {
            0 => Telemetry::none(),
            1 => Telemetry::to(sinks.remove(0)),
            _ => Telemetry::to(Arc::new(Fanout::new(sinks))),
        }
    }

    /// Stops the reporter, flushes the journal, and returns the event
    /// totals and the journal's dropped count for the stats report.
    fn finish(mut self) -> Result<(Option<EventTotals>, Option<u64>), CliError> {
        if let Some(reporter) = self.reporter.take() {
            reporter.finish();
        }
        let totals = self.counters.as_ref().map(|c| c.snapshot());
        let dropped = match &self.journal {
            Some(journal) => {
                journal.flush().map_err(|e| {
                    let path = self.trace_path.as_deref().unwrap_or("<trace>");
                    CliError::runtime(format!("cannot write trace file {path}: {e}"))
                })?;
                Some(journal.dropped())
            }
            None => None,
        };
        Ok((totals, dropped))
    }
}

/// The per-solve sampling-profiler session (`--sample-profile`): starts the
/// detached beacon sampler before the solve; [`finish`](Self::finish) stops
/// it, writes the folded stacks, and appends a top-K summary to the output.
struct SampleSession {
    sampler: Option<Sampler>,
    out_path: String,
}

impl SampleSession {
    fn start(options: &Options) -> Self {
        let sampler = options
            .sample_profile
            .map(|hz| Sampler::start(hz.unwrap_or(SAMPLER_DEFAULT_HZ)));
        Self {
            sampler,
            out_path: options.sample_out.clone(),
        }
    }

    fn finish(self, out: &mut String) -> Result<(), CliError> {
        let Some(sampler) = self.sampler else {
            return Ok(());
        };
        let profile = sampler.stop();
        std::fs::write(&self.out_path, profile.to_folded())
            .map_err(|e| CliError::runtime(format!("cannot write {}: {e}", self.out_path)))?;
        let _ = writeln!(
            out,
            "sampling profile: {} samples at {} Hz, {} stacks -> {}",
            profile.samples,
            profile.hz,
            profile.stacks.len(),
            self.out_path
        );
        for (stack, count) in profile.top(5) {
            let percent = if profile.worker_samples > 0 {
                count as f64 * 100.0 / profile.worker_samples as f64
            } else {
                0.0
            };
            let _ = writeln!(out, "  {percent:5.1}%  {stack}");
        }
        if !profile.stalled_workers.is_empty() {
            let _ = writeln!(
                out,
                "  stalled workers at stop: {:?}",
                profile.stalled_workers
            );
        }
        Ok(())
    }
}

fn describe_placement(
    out: &mut String,
    instance: &Instance,
    placement: &Placement,
    options: &Options,
) {
    let _ = writeln!(out, "makespan: {} cycles", placement.makespan());
    let _ = writeln!(out, "\n{}", render::gantt(placement, instance));
    if options.emit_placement {
        let _ = writeln!(out, "{}", format::format_placement(placement, instance));
    }
    if options.floorplans {
        let events = render::events(placement);
        for w in events.windows(2) {
            if let Some(plan) = render::floorplan(placement, instance, w[0], w[1]) {
                let _ = writeln!(out, "cycles [{}, {}):\n{}", w[0], w[1], plan);
            }
        }
    }
}

/// Runs the CLI on `args` (without the program name); returns the text to
/// print on stdout.
///
/// # Errors
///
/// [`CliError`] with a message and exit code on bad usage, unreadable or
/// malformed files, and infeasible optimization goals.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (positional, options) = split_args(args)?;
    let mut out = String::new();
    match positional.as_slice() {
        [] | ["help"] => out.push_str(USAGE),
        ["solve", path] => {
            let instance = load_instance(path, &options)?;
            let session = TraceSession::start(&options, &instance)?;
            let sampling = SampleSession::start(&options);
            let started = Instant::now();
            let mut config = options.solver_config();
            config.telemetry = session.telemetry();
            let (outcome, stats) = Opp::new(&instance).with_config(config).solve_with_stats();
            let (events, journal_dropped) = session.finish()?;
            sampling.finish(&mut out)?;
            let label = match &outcome {
                SolveOutcome::Feasible(_) => "feasible".to_string(),
                SolveOutcome::Infeasible(_) => "infeasible".to_string(),
                SolveOutcome::ResourceLimit(limit) => format!("{limit} reached"),
            };
            write_report(
                &options,
                ReportMeta {
                    command: "solve",
                    instance: path,
                    outcome: label,
                    decisions: 1,
                    started,
                    events,
                    journal_dropped,
                },
                &stats,
            )?;
            match outcome {
                SolveOutcome::Feasible(p) => {
                    p.verify(&instance)
                        .map_err(|e| CliError::runtime(format!("certificate invalid: {e}")))?;
                    let _ = writeln!(
                        out,
                        "feasible on {} within {} cycles",
                        instance.chip(),
                        instance.horizon()
                    );
                    describe_placement(&mut out, &instance, &p, &options);
                }
                SolveOutcome::Infeasible(proof) => {
                    let _ = writeln!(out, "infeasible: {proof}");
                }
                SolveOutcome::ResourceLimit(limit) => {
                    return Err(CliError::runtime(format!("{limit} reached")));
                }
            }
        }
        ["bmp", path] => {
            let instance = load_instance(path, &options)?;
            let session = TraceSession::start(&options, &instance)?;
            let sampling = SampleSession::start(&options);
            let started = Instant::now();
            let mut config = options.solver_config();
            config.telemetry = session.telemetry();
            let result = Bmp::new(&instance).with_config(config).solve();
            let (events, journal_dropped) = session.finish()?;
            sampling.finish(&mut out)?;
            let result = result.ok_or_else(|| {
                CliError::runtime("no chip admits the deadline (critical path too long)")
            })?;
            write_report(
                &options,
                ReportMeta {
                    command: "bmp",
                    instance: path,
                    outcome: format!("side {}", result.side),
                    decisions: result.decisions,
                    started,
                    events,
                    journal_dropped,
                },
                &result.stats,
            )?;
            let _ = writeln!(
                out,
                "minimal square chip for horizon {}: {}x{} ({} exact decisions)",
                instance.horizon(),
                result.side,
                result.side,
                result.decisions
            );
            let target = instance.clone().with_chip(Chip::square(result.side));
            describe_placement(&mut out, &target, &result.placement, &options);
        }
        ["spp", path] => {
            let instance = load_instance(path, &options)?;
            let session = TraceSession::start(&options, &instance)?;
            let sampling = SampleSession::start(&options);
            let started = Instant::now();
            let mut config = options.solver_config();
            config.telemetry = session.telemetry();
            let result = Spp::new(&instance).with_config(config).solve();
            let (events, journal_dropped) = session.finish()?;
            sampling.finish(&mut out)?;
            let result = result
                .ok_or_else(|| CliError::runtime("some module does not fit the chip spatially"))?;
            write_report(
                &options,
                ReportMeta {
                    command: "spp",
                    instance: path,
                    outcome: format!("makespan {}", result.makespan),
                    decisions: result.decisions,
                    started,
                    events,
                    journal_dropped,
                },
                &result.stats,
            )?;
            let _ = writeln!(
                out,
                "minimal execution time on {}: {} cycles ({} exact decisions)",
                instance.chip(),
                result.makespan,
                result.decisions
            );
            let target = instance.clone().with_horizon(result.makespan);
            describe_placement(&mut out, &target, &result.placement, &options);
        }
        ["pareto", path] => {
            let instance = load_instance(path, &options)?;
            let session = TraceSession::start(&options, &instance)?;
            let sampling = SampleSession::start(&options);
            let started = Instant::now();
            let mut config = options.solver_config();
            config.telemetry = session.telemetry();
            let result = pareto_front_with_stats(&instance, &config);
            let (events, journal_dropped) = session.finish()?;
            sampling.finish(&mut out)?;
            let (front, stats, decisions) =
                result.ok_or_else(|| CliError::runtime("resource limit reached"))?;
            write_report(
                &options,
                ReportMeta {
                    command: "pareto",
                    instance: path,
                    outcome: format!("{} pareto points", front.len()),
                    decisions,
                    started,
                    events,
                    journal_dropped,
                },
                &stats,
            )?;
            let _ = writeln!(out, "{:>6} | {:>6}", "chip", "time");
            for p in &front {
                let _ = writeln!(out, "{:>3}x{:<3}| {:>6}", p.side, p.side, p.makespan);
            }
        }
        ["check", path, placement_path] => {
            let instance = load_instance(path, &options)?;
            let text = std::fs::read_to_string(placement_path)
                .map_err(|e| CliError::runtime(format!("cannot read {placement_path}: {e}")))?;
            let placement = format::parse_placement(&text, &instance)
                .map_err(|e| CliError::runtime(format!("{placement_path}: {e}")))?;
            match placement.verify(&instance) {
                Ok(()) => {
                    let _ = writeln!(
                        out,
                        "valid: fits {} within {} cycles (makespan {})",
                        instance.chip(),
                        instance.horizon(),
                        placement.makespan()
                    );
                }
                Err(e) => return Err(CliError::runtime(format!("invalid placement: {e}"))),
            }
        }
        ["render", path, placement_path] => {
            let instance = load_instance(path, &options)?;
            let text = std::fs::read_to_string(placement_path)
                .map_err(|e| CliError::runtime(format!("cannot read {placement_path}: {e}")))?;
            let placement = format::parse_placement(&text, &instance)
                .map_err(|e| CliError::runtime(format!("{placement_path}: {e}")))?;
            if options.svg {
                out.push_str(&render::svg(&placement, &instance));
            } else {
                out.push_str(&render::gantt(&placement, &instance));
            }
        }
        ["sample", which] => {
            let instance = match *which {
                "de" => benchmarks::de(Chip::square(32), 6),
                "codec" => benchmarks::video_codec(Chip::square(64), 59),
                "pair" => {
                    use recopack_model::Task;
                    Instance::builder()
                        .chip(Chip::square(2))
                        .horizon(4)
                        .task(Task::new("a", 2, 2, 2))
                        .task(Task::new("b", 2, 2, 2))
                        .precedence("a", "b")
                        .build()
                        .expect("sample instance is valid")
                }
                other => {
                    return Err(CliError::usage(format!(
                        "unknown sample {other:?} (expected de, codec, or pair)"
                    )));
                }
            };
            out.push_str(&format::format_instance(&instance));
        }
        ["serve"] => {
            let stop = recopack_serve::install_shutdown_handler();
            let config = recopack_serve::ServeConfig {
                addr: options
                    .addr
                    .clone()
                    .unwrap_or_else(|| "127.0.0.1:7878".to_string()),
                workers: options.threads,
                queue_depth: options.queue_depth,
                max_connections: options.max_connections,
                slow_job_ms: options.slow_job_ms,
                ..recopack_serve::ServeConfig::default()
            };
            let server = recopack_serve::Server::bind(&config)
                .map_err(|e| CliError::runtime(format!("cannot bind {}: {e}", config.addr)))?;
            server.run_until(stop);
            let _ = writeln!(out, "server drained and stopped");
        }
        ["trace", path] => {
            let text = if options.follow {
                trace::follow(path, Duration::from_millis(options.idle_timeout_ms))?
            } else {
                std::fs::read_to_string(path)
                    .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?
            };
            let (events, skipped) = trace::parse_ndjson(&text)?;
            if skipped > 0 {
                let _ = writeln!(
                    out,
                    "warning: skipped {skipped} malformed line{} in {path}",
                    if skipped == 1 { "" } else { "s" }
                );
            }
            let mut exported = false;
            if let Some(chrome_path) = &options.chrome {
                std::fs::write(chrome_path, trace::to_chrome(&events))
                    .map_err(|e| CliError::runtime(format!("cannot write {chrome_path}: {e}")))?;
                let _ = writeln!(
                    out,
                    "wrote Chrome trace for {} events to {chrome_path}",
                    events.len()
                );
                exported = true;
            }
            if let Some(folded_path) = &options.folded {
                std::fs::write(folded_path, trace::to_folded(&events, options.weight))
                    .map_err(|e| CliError::runtime(format!("cannot write {folded_path}: {e}")))?;
                let _ = writeln!(out, "wrote folded stacks to {folded_path}");
                exported = true;
            }
            if options.summary || !exported {
                out.push_str(&trace::summary(&events));
            }
        }
        [command, rest @ ..]
            if matches!(
                *command,
                "solve"
                    | "bmp"
                    | "spp"
                    | "pareto"
                    | "check"
                    | "render"
                    | "sample"
                    | "trace"
                    | "serve"
                    | "help"
            ) =>
        {
            return Err(CliError::usage(format!(
                "wrong number of operands for {command} (got {})\n\n{USAGE}",
                rest.len()
            )));
        }
        other => {
            return Err(CliError::usage(format!(
                "unrecognized command {:?}\n\n{USAGE}",
                other.join(" ")
            )));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("recopack-cli-test-{name}"));
        std::fs::write(&path, contents).expect("writable temp dir");
        path
    }

    #[test]
    fn help_and_empty_print_usage() {
        assert_eq!(run(&args(&["help"])).expect("ok"), USAGE);
        assert_eq!(run(&args(&[])).expect("ok"), USAGE);
    }

    #[test]
    fn unknown_command_and_flag_are_usage_errors() {
        let err = run(&args(&["frobnicate"])).expect_err("usage error");
        assert_eq!(err.exit_code, 2);
        let err = run(&args(&["solve", "x", "--wat"])).expect_err("usage error");
        assert_eq!(err.exit_code, 2);
    }

    #[test]
    fn sample_roundtrips_through_solve() {
        let sample = run(&args(&["sample", "pair"])).expect("sample");
        let path = temp_file("pair.rpk", &sample);
        let output = run(&args(&["solve", path.to_str().expect("utf8 path")])).expect("solves");
        assert!(output.contains("feasible"), "{output}");
        assert!(output.contains('#'), "gantt expected: {output}");
    }

    #[test]
    fn solve_reports_infeasibility() {
        let path = temp_file(
            "tight.rpk",
            "chip 2 2\nhorizon 3\ntask a 2 2 2\ntask b 2 2 2\narc a b\n",
        );
        let output = run(&args(&["solve", path.to_str().expect("utf8 path")])).expect("runs");
        assert!(output.contains("infeasible"), "{output}");
    }

    #[test]
    fn bmp_and_spp_optimize_the_pair() {
        let path = temp_file(
            "pair2.rpk",
            "chip 2 2\nhorizon 4\ntask a 2 2 2\ntask b 2 2 2\narc a b\n",
        );
        let p = path.to_str().expect("utf8 path");
        let bmp = run(&args(&["bmp", p])).expect("bmp");
        assert!(bmp.contains("2x2"), "{bmp}");
        let spp = run(&args(&["spp", p])).expect("spp");
        assert!(spp.contains("4 cycles"), "{spp}");
        let pareto = run(&args(&["pareto", p])).expect("pareto");
        assert!(pareto.contains('|'), "{pareto}");
    }

    #[test]
    fn no_precedence_changes_answers() {
        let path = temp_file(
            "pair3.rpk",
            "chip 4 2\nhorizon 2\ntask a 2 2 2\ntask b 2 2 2\narc a b\n",
        );
        let p = path.to_str().expect("utf8 path");
        let with = run(&args(&["solve", p])).expect("runs");
        assert!(with.contains("infeasible"), "{with}");
        let without = run(&args(&["solve", p, "--no-precedence"])).expect("runs");
        assert!(without.contains("feasible on"), "{without}");
    }

    #[test]
    fn floorplans_render_between_events() {
        let path = temp_file(
            "pair4.rpk",
            "chip 2 2\nhorizon 4\ntask a 2 2 2\ntask b 2 2 2\narc a b\n",
        );
        let p = path.to_str().expect("utf8 path");
        let output = run(&args(&["solve", p, "--floorplans"])).expect("runs");
        assert!(output.contains("cycles [0, 2):"), "{output}");
        assert!(output.contains("aa"), "{output}");
    }

    #[test]
    fn missing_file_is_a_runtime_error() {
        let err = run(&args(&["solve", "/nonexistent/zzz.rpk"])).expect_err("io error");
        assert_eq!(err.exit_code, 1);
        assert!(err.message.contains("cannot read"));
    }

    #[test]
    fn threads_flag_parses_and_preserves_answers() {
        let path = temp_file(
            "threads.rpk",
            "chip 2 2\nhorizon 4\ntask a 2 2 2\ntask b 2 2 2\narc a b\n",
        );
        let p = path.to_str().expect("utf8 path");
        let seq = run(&args(&["solve", p])).expect("runs");
        for t in ["1", "4", "auto"] {
            let par = run(&args(&["solve", p, "--threads", t])).expect("runs");
            assert_eq!(par, seq, "--threads {t} changed the output");
        }
        let inline = run(&args(&["solve", p, "--threads=4"])).expect("runs");
        assert_eq!(inline, seq, "--threads=4 changed the output");
        let err = run(&args(&["solve", p, "--threads"])).expect_err("missing value");
        assert_eq!(err.exit_code, 2);
        let err = run(&args(&["solve", p, "--threads", "many"])).expect_err("bad value");
        assert!(err.message.contains("expects a number"), "{err:?}");
        let err = run(&args(&["solve", p, "--threads", "0"])).expect_err("zero threads");
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("--threads auto"), "{err:?}");
    }

    #[test]
    fn argument_hardening_rejects_malformed_usage() {
        // Single-dash unknowns are options, not operands.
        let err = run(&args(&["solve", "x.rpk", "-q"])).expect_err("unknown short flag");
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("unknown option"), "{err:?}");
        // Unknown flags after operands error the same way.
        let err = run(&args(&["solve", "x.rpk", "--wat=3"])).expect_err("unknown flag");
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("unknown option"), "{err:?}");
        // Boolean flags reject inline values.
        let err = run(&args(&["solve", "x.rpk", "--svg=yes"])).expect_err("inline value");
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("does not take a value"), "{err:?}");
        // Wrong operand counts are usage errors, not file errors.
        for cmd in ["solve", "bmp", "spp", "pareto", "trace", "sample"] {
            let err = run(&args(&[cmd])).expect_err("missing operand");
            assert_eq!(err.exit_code, 2, "{cmd}");
            assert!(err.message.contains("wrong number of operands"), "{err:?}");
        }
        let err = run(&args(&["solve", "a.rpk", "b.rpk"])).expect_err("extra operand");
        assert_eq!(err.exit_code, 2);
        // Progress intervals must be numeric.
        let err = run(&args(&["solve", "x.rpk", "--progress=soon"])).expect_err("bad ms");
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("milliseconds"), "{err:?}");
    }

    #[test]
    fn sample_profile_flag_validates_and_writes_folded_stacks() {
        let path = temp_file(
            "sample.rpk",
            "chip 4 4\nhorizon 2\ntask a 2 2 2\ntask b 2 2 2\ntask c 2 2 2\n\
             task d 2 2 2\ntask e 2 2 2\n",
        );
        let p = path.to_str().expect("utf8 path");
        let folded_path = temp_file("sample.folded", "");
        let fp = folded_path.to_str().expect("utf8 path");
        let out = run(&args(&[
            "solve",
            p,
            "--no-bounds",
            "--no-heuristics",
            "--sample-profile=1000",
            "--sample-out",
            fp,
        ]))
        .expect("solves while sampling");
        assert!(out.contains("sampling profile:"), "{out}");
        assert!(out.contains(fp), "{out}");
        // Sampling is statistical: the capture may be empty on a fast
        // solve, but every captured line must be a folded stack.
        let folded = std::fs::read_to_string(&folded_path).expect("folded written");
        for line in folded.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("stack and weight");
            assert!(stack.starts_with("worker:"), "{line}");
            weight.parse::<u64>().expect("numeric weight");
        }
        // Rate validation: zero and non-numeric rates are usage errors.
        let err = run(&args(&["solve", p, "--sample-profile=0"])).expect_err("zero hz");
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("positive Hz"), "{err:?}");
        let err = run(&args(&["solve", p, "--sample-profile=fast"])).expect_err("bad hz");
        assert_eq!(err.exit_code, 2);
        // --idle-timeout-ms validates too.
        let err = run(&args(&["trace", p, "--idle-timeout-ms", "soon"])).expect_err("bad ms");
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("milliseconds"), "{err:?}");
    }

    #[test]
    fn stats_json_writes_versioned_reports() {
        let path = temp_file(
            "stats.rpk",
            "chip 2 2\nhorizon 4\ntask a 2 2 2\ntask b 2 2 2\narc a b\n",
        );
        let p = path.to_str().expect("utf8 path");
        for command in ["solve", "bmp", "spp", "pareto"] {
            let report_path = temp_file(&format!("stats-{command}.json"), "");
            let rp = report_path.to_str().expect("utf8 path");
            run(&args(&[command, p, "--stats-json", rp])).expect("runs");
            let json = std::fs::read_to_string(&report_path).expect("report written");
            assert!(
                json.starts_with("{\"schema_version\":2"),
                "{command}: {json}"
            );
            assert!(
                json.contains(&format!("\"command\":\"{command}\"")),
                "{command}: {json}"
            );
            assert!(json.contains("\"wall_ms\":"), "{command}: {json}");
            assert!(json.contains("\"conflicts\":{"), "{command}: {json}");
            assert!(json.contains("\"depth_histogram\":["), "{command}: {json}");
            assert!(json.contains("\"timings\":{"), "{command}: {json}");
            // No trace session was active, so the optional fields are null.
            assert!(json.contains("\"events\":null"), "{command}: {json}");
            assert!(
                json.contains("\"journal_dropped\":null"),
                "{command}: {json}"
            );
        }
        // Infeasible solves are reported too.
        let tight = temp_file(
            "stats-tight.rpk",
            "chip 2 2\nhorizon 3\ntask a 2 2 2\ntask b 2 2 2\narc a b\n",
        );
        let report_path = temp_file("stats-tight.json", "");
        run(&args(&[
            "solve",
            tight.to_str().expect("utf8 path"),
            "--stats-json",
            report_path.to_str().expect("utf8 path"),
        ]))
        .expect("runs");
        let json = std::fs::read_to_string(&report_path).expect("report written");
        assert!(json.contains("\"outcome\":\"infeasible\""), "{json}");
        // And the flag validates its argument.
        let err = run(&args(&["solve", p, "--stats-json"])).expect_err("missing path");
        assert_eq!(err.exit_code, 2);
    }

    #[test]
    fn trace_pipeline_records_exports_and_summarizes() {
        use recopack_json::Json;

        let path = temp_file(
            "trace.rpk",
            "chip 4 4\nhorizon 2\ntask a 2 2 2\ntask b 2 2 2\ntask c 2 2 2\n\
             task d 2 2 2\ntask e 2 2 2\n",
        );
        let p = path.to_str().expect("utf8 path");
        let trace_path = temp_file("trace.ndjson", "");
        let tp = trace_path.to_str().expect("utf8 path");
        let report_path = temp_file("trace-report.json", "");
        let rp = report_path.to_str().expect("utf8 path");
        // Bounds and heuristics would settle this instance before the
        // search starts; disabling them makes the event stream non-trivial.
        run(&args(&[
            "solve",
            p,
            "--no-bounds",
            "--no-heuristics",
            "--trace",
            tp,
            "--stats-json",
            rp,
            "--profile",
        ]))
        .expect("solves");

        // Every line of the journal is a standalone JSON object.
        let ndjson = std::fs::read_to_string(&trace_path).expect("trace written");
        assert!(
            ndjson.lines().count() > 10,
            "search-heavy instance expected"
        );
        for line in ndjson.lines() {
            Json::parse(line).expect("valid NDJSON line");
        }

        // The stats report carries event totals and the dropped count.
        let report = Json::parse(
            std::fs::read_to_string(&report_path)
                .expect("report written")
                .trim(),
        )
        .expect("report parses");
        let events = report.get("events").expect("events totals present");
        let branches = events.get("branch").and_then(Json::as_u64).expect("branch");
        assert!(branches > 0);
        assert_eq!(
            report.get("journal_dropped").and_then(Json::as_u64),
            Some(0)
        );
        // --profile: the search spent measurable time somewhere.
        let timings = report
            .get("stats")
            .and_then(|s| s.get("timings"))
            .expect("timings");
        let spent: u64 = ["propagate_ns", "bounds_ns", "realize_ns"]
            .iter()
            .filter_map(|k| timings.get(k).and_then(Json::as_u64))
            .sum();
        let prunes: u64 = ["c2", "c3", "c4", "orientation"]
            .iter()
            .filter_map(|k| {
                timings
                    .get("prune_ns")
                    .and_then(|p| p.get(k))
                    .and_then(Json::as_u64)
            })
            .sum();
        assert!(
            spent + prunes > 0,
            "profiling collected no time: {timings:?}"
        );

        // The trace subcommand exports Chrome JSON and folded stacks.
        let chrome_path = temp_file("trace.chrome.json", "");
        let folded_path = temp_file("trace.folded", "");
        let cp = chrome_path.to_str().expect("utf8 path");
        let fp = folded_path.to_str().expect("utf8 path");
        let out = run(&args(&[
            "trace",
            tp,
            "--chrome",
            cp,
            "--folded",
            fp,
            "--summary",
        ]))
        .expect("exports");
        assert!(out.contains("wrote Chrome trace"), "{out}");
        assert!(out.contains("trace:"), "summary expected: {out}");
        assert!(out.contains("depth profile"), "{out}");

        let chrome = Json::parse(&std::fs::read_to_string(&chrome_path).expect("chrome written"))
            .expect("chrome parses");
        let slices = chrome
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents");
        let count = |ph: &str| {
            slices
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
                .count()
        };
        assert!(count("B") > 0);
        assert_eq!(count("B"), count("E"), "all slices closed");

        // Folded node weights sum to the branch total from the report.
        let folded = std::fs::read_to_string(&folded_path).expect("folded written");
        let weight_sum: u64 = folded
            .lines()
            .map(|l| {
                l.rsplit(' ')
                    .next()
                    .expect("weight column")
                    .parse::<u64>()
                    .expect("numeric weight")
            })
            .sum();
        assert_eq!(weight_sum, branches);

        // Bare `trace` defaults to the summary.
        let out = run(&args(&["trace", tp])).expect("summarizes");
        assert!(out.contains("depth profile"), "{out}");
        // t_ns weighting works too.
        let out = run(&args(&["trace", tp, "--folded", fp, "--weight", "t_ns"]))
            .expect("time-weighted folded");
        assert!(out.contains("wrote folded stacks"), "{out}");
        let err = run(&args(&["trace", tp, "--weight", "bytes"])).expect_err("bad weight");
        assert_eq!(err.exit_code, 2);
    }

    #[test]
    fn serve_flags_validate() {
        let err = run(&args(&["serve", "extra"])).expect_err("no operands");
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("wrong number of operands"), "{err:?}");
        let err = run(&args(&["serve", "--addr"])).expect_err("missing value");
        assert_eq!(err.exit_code, 2);
        let err = run(&args(&["serve", "--queue-depth", "0"])).expect_err("zero depth");
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("positive number"), "{err:?}");
        let err = run(&args(&["serve", "--queue-depth", "soon"])).expect_err("bad depth");
        assert_eq!(err.exit_code, 2);
        let err = run(&args(&["serve", "--slow-job-ms", "soon"])).expect_err("bad threshold");
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("milliseconds"), "{err:?}");
        let err = run(&args(&["serve", "--slow-job-ms", "-5"])).expect_err("negative threshold");
        assert_eq!(err.exit_code, 2);
        let err = run(&args(&["serve", "--addr", "not an address"])).expect_err("bad bind");
        assert_eq!(err.exit_code, 1);
        assert!(err.message.contains("cannot bind"), "{err:?}");
    }

    #[test]
    fn serve_boots_and_drains_on_the_shutdown_flag() {
        use std::sync::atomic::Ordering;
        // Trip the shutdown flag up front: the server must bind, notice the
        // flag, drain, and return instead of serving forever.
        recopack_serve::install_shutdown_handler().store(true, Ordering::Relaxed);
        let out = run(&args(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--queue-depth",
            "2",
        ]))
        .expect("serves and drains");
        assert!(out.contains("server drained and stopped"), "{out}");
    }

    #[test]
    fn trace_skips_malformed_lines_with_a_warning() {
        let path = temp_file(
            "mixed.ndjson",
            "{\"subtree\":0,\"depth\":0,\"t_ns\":5,\"event\":\"backtrack\"}\n\
             not json at all\n",
        );
        let out = run(&args(&["trace", path.to_str().expect("utf8 path")])).expect("summarizes");
        assert!(out.contains("skipped 1 malformed line"), "{out}");
        assert!(out.contains("1 events"), "{out}");
        // A document with no valid events at all still fails loudly.
        let bad = temp_file("bad.ndjson", "garbage\nmore garbage\n");
        let err = run(&args(&["trace", bad.to_str().expect("utf8 path")])).expect_err("no events");
        assert_eq!(err.exit_code, 1);
        assert!(err.message.contains("no valid trace events"), "{err:?}");
    }

    #[test]
    fn trace_follow_tails_a_growing_journal_until_its_end_record() {
        use std::io::Write as _;
        let path = temp_file("follow.ndjson", "");
        let writer_path = path.clone();
        // A writer thread grows the journal in split chunks — including a
        // line broken across two appends — then lands the end record.
        let writer = std::thread::spawn(move || {
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&writer_path)
                .expect("journal opens for append");
            let chunks: &[&str] = &[
                "{\"subtree\":0,\"depth\":0,\"t_ns\":100,\"event\":\"branch\",\
                 \"dim\":0,\"pair\":0,\"component\":true}\n{\"subtree\":0,",
                "\"depth\":1,\"t_ns\":200,\"event\":\"backtrack\"}\n",
                "{\"event\":\"end\",\"job\":1,\"status\":\"done\",\"dropped\":0}\n",
            ];
            for chunk in chunks {
                file.write_all(chunk.as_bytes()).expect("append");
                file.flush().expect("flush");
                std::thread::sleep(std::time::Duration::from_millis(60));
            }
        });
        let out = run(&args(&[
            "trace",
            path.to_str().expect("utf8 path"),
            "--follow",
        ]))
        .expect("follow summarizes");
        writer.join().expect("writer thread");
        // Both real events arrived (the split line was reassembled) and the
        // end record terminated the tail without being parsed as an event.
        assert!(out.contains("2 events"), "{out}");
        assert!(!out.contains("malformed"), "{out}");
    }

    #[test]
    fn samples_match_benchmarks() {
        let de = run(&args(&["sample", "de"])).expect("de");
        assert!(de.contains("task v1 16 16 2"));
        let codec = run(&args(&["sample", "codec"])).expect("codec");
        assert!(codec.contains("motion_estimation 64 64 24"));
        let err = run(&args(&["sample", "zzz"])).expect_err("unknown sample");
        assert_eq!(err.exit_code, 2);
    }
}

#[cfg(test)]
mod roundtrip_tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("recopack-cli-rt-{name}"));
        std::fs::write(&path, contents).expect("writable temp dir");
        path
    }

    #[test]
    fn solve_emit_check_render_pipeline() {
        let instance_text = "chip 2 2\nhorizon 4\ntask a 2 2 2\ntask b 2 2 2\narc a b\n";
        let ipath = temp_file("pipe.rpk", instance_text);
        let ip = ipath.to_str().expect("utf8 path");
        let solved = run(&args(&["solve", ip, "--emit-placement"])).expect("solves");
        // Extract the `place` lines and feed them back through check/render.
        let placement_text: String = solved
            .lines()
            .filter(|l| l.starts_with("place "))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(placement_text.lines().count(), 2);
        let ppath = temp_file("pipe.place", &placement_text);
        let pp = ppath.to_str().expect("utf8 path");
        let checked = run(&args(&["check", ip, pp])).expect("valid placement");
        assert!(checked.contains("valid:"), "{checked}");
        let gantt = run(&args(&["render", ip, pp])).expect("renders");
        assert!(gantt.contains('#'), "{gantt}");
        let svg = run(&args(&["render", ip, pp, "--svg"])).expect("renders svg");
        assert!(svg.starts_with("<svg"), "{svg}");
    }

    #[test]
    fn check_rejects_bad_placements() {
        let instance_text = "chip 2 2\nhorizon 4\ntask a 2 2 2\ntask b 2 2 2\narc a b\n";
        let ipath = temp_file("bad.rpk", instance_text);
        let ppath = temp_file("bad.place", "place a 0 0 0\nplace b 0 0 0\n");
        let err = run(&args(&[
            "check",
            ipath.to_str().expect("utf8 path"),
            ppath.to_str().expect("utf8 path"),
        ]))
        .expect_err("overlap");
        assert!(err.message.contains("invalid placement"), "{err:?}");
    }
}
