//! Implementation of the `recopack` command-line tool.
//!
//! Subcommands (instances use the text format of
//! [`recopack_model::format`]):
//!
//! * `solve <file>` — decide feasibility, print the placement and timeline;
//! * `bmp <file>` — minimize the square chip for the file's horizon;
//! * `spp <file>` — minimize the execution time on the file's chip;
//! * `pareto <file>` — enumerate Pareto-optimal (chip, time) points;
//! * `check <file> <placement>` — verify a placement file geometrically;
//! * `render <file> <placement>` — print a Gantt chart (or SVG with `--svg`);
//! * `sample <de|codec|pair>` — print a ready-made instance file;
//! * `help` — usage.
//!
//! All subcommands accept `--no-precedence` (drop the partial order, the
//! paper's Figure 7(b) mode), `--floorplans` (print the chip occupancy
//! between reconfiguration events), and `--emit-placement` (print solutions
//! as `place` lines consumable by `check`/`render`). The solver subcommands
//! (`solve`, `bmp`, `spp`, `pareto`) additionally accept
//! `--stats-json <path>` to write a versioned [`SolveReport`] JSON document
//! with wall time, node counts and per-rule conflict counters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::Instant;

use recopack_core::{
    pareto_front_with_stats, Bmp, Opp, SolveOutcome, SolveReport, SolverConfig, SolverStats, Spp,
};
use recopack_model::{benchmarks, format, render, Chip, Instance, Placement};

/// A CLI failure with a message and a suggested exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Suggested process exit code.
    pub exit_code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            exit_code: 2,
        }
    }

    fn runtime(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            exit_code: 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

/// Usage text printed by `help` and on argument errors.
pub const USAGE: &str = "\
recopack — optimal FPGA module placement with temporal precedence constraints

USAGE:
    recopack <command> [options]

COMMANDS:
    solve  <file>            decide feasibility of the instance file
    bmp    <file>            minimize the square chip for the file's horizon
    spp    <file>            minimize the execution time on the file's chip
    pareto <file>            enumerate Pareto-optimal (chip side, time) points
    check  <file> <place>    verify a placement file against the instance
    render <file> <place>    print a Gantt chart of a placement file
    sample <de|codec|pair>   print a ready-made instance file
    help                     show this message

OPTIONS:
    --no-precedence          drop all precedence arcs before solving
    --floorplans             also print chip occupancy between events
    --emit-placement         print solutions as `place` lines
    --svg                    render as an SVG document instead of a Gantt
    --threads <n>            worker threads for the branch-and-bound
                             (default 1 = sequential, 0 = all hardware
                             threads; the answer is thread-count invariant)
    --stats-json <path>      write a versioned JSON telemetry report (wall
                             time, node counts, per-rule conflicts) for
                             solve/bmp/spp/pareto
";

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Options {
    no_precedence: bool,
    floorplans: bool,
    emit_placement: bool,
    svg: bool,
    threads: usize,
    stats_json: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            no_precedence: false,
            floorplans: false,
            emit_placement: false,
            svg: false,
            threads: 1,
            stats_json: None,
        }
    }
}

impl Options {
    fn solver_config(&self) -> SolverConfig {
        SolverConfig {
            threads: self.threads,
            ..SolverConfig::default()
        }
    }
}

fn split_args(args: &[String]) -> Result<(Vec<&str>, Options), CliError> {
    let mut positional = Vec::new();
    let mut options = Options::default();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--no-precedence" => options.no_precedence = true,
            "--floorplans" => options.floorplans = true,
            "--emit-placement" => options.emit_placement = true,
            "--svg" => options.svg = true,
            "--threads" => {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::usage("--threads requires a value"))?;
                options.threads = value.parse().map_err(|_| {
                    CliError::usage(format!("--threads expects a number, got {value:?}"))
                })?;
            }
            "--stats-json" => {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::usage("--stats-json requires a path"))?;
                options.stats_json = Some(value.clone());
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::usage(format!(
                    "unknown option {flag:?}\n\n{USAGE}"
                )));
            }
            other => positional.push(other),
        }
    }
    Ok((positional, options))
}

fn load_instance(path: &str, options: &Options) -> Result<Instance, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
    let mut instance =
        format::parse_instance(&text).map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    instance = if options.no_precedence {
        instance.without_precedence()
    } else {
        instance.with_transitive_closure()
    };
    Ok(instance)
}

/// Writes the `--stats-json` report, if one was requested.
fn write_report(
    options: &Options,
    command: &str,
    instance: &str,
    outcome: String,
    decisions: u32,
    started: Instant,
    stats: &SolverStats,
) -> Result<(), CliError> {
    let Some(path) = &options.stats_json else {
        return Ok(());
    };
    let report = SolveReport {
        command: command.to_string(),
        instance: instance.to_string(),
        outcome,
        threads: options.threads,
        decisions,
        wall_ms: started.elapsed().as_secs_f64() * 1000.0,
        stats: stats.clone(),
    };
    let mut text = report.to_json();
    text.push('\n');
    std::fs::write(path, text).map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))
}

fn describe_placement(
    out: &mut String,
    instance: &Instance,
    placement: &Placement,
    options: &Options,
) {
    let _ = writeln!(out, "makespan: {} cycles", placement.makespan());
    let _ = writeln!(out, "\n{}", render::gantt(placement, instance));
    if options.emit_placement {
        let _ = writeln!(out, "{}", format::format_placement(placement, instance));
    }
    if options.floorplans {
        let events = render::events(placement);
        for w in events.windows(2) {
            if let Some(plan) = render::floorplan(placement, instance, w[0], w[1]) {
                let _ = writeln!(out, "cycles [{}, {}):\n{}", w[0], w[1], plan);
            }
        }
    }
}

/// Runs the CLI on `args` (without the program name); returns the text to
/// print on stdout.
///
/// # Errors
///
/// [`CliError`] with a message and exit code on bad usage, unreadable or
/// malformed files, and infeasible optimization goals.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (positional, options) = split_args(args)?;
    let mut out = String::new();
    match positional.as_slice() {
        [] | ["help"] => out.push_str(USAGE),
        ["solve", path] => {
            let instance = load_instance(path, &options)?;
            let started = Instant::now();
            let (outcome, stats) = Opp::new(&instance)
                .with_config(options.solver_config())
                .solve_with_stats();
            let label = match &outcome {
                SolveOutcome::Feasible(_) => "feasible".to_string(),
                SolveOutcome::Infeasible(_) => "infeasible".to_string(),
                SolveOutcome::ResourceLimit(limit) => format!("{limit} reached"),
            };
            write_report(&options, "solve", path, label, 1, started, &stats)?;
            match outcome {
                SolveOutcome::Feasible(p) => {
                    p.verify(&instance)
                        .map_err(|e| CliError::runtime(format!("certificate invalid: {e}")))?;
                    let _ = writeln!(
                        out,
                        "feasible on {} within {} cycles",
                        instance.chip(),
                        instance.horizon()
                    );
                    describe_placement(&mut out, &instance, &p, &options);
                }
                SolveOutcome::Infeasible(proof) => {
                    let _ = writeln!(out, "infeasible: {proof}");
                }
                SolveOutcome::ResourceLimit(limit) => {
                    return Err(CliError::runtime(format!("{limit} reached")));
                }
            }
        }
        ["bmp", path] => {
            let instance = load_instance(path, &options)?;
            let started = Instant::now();
            let result = Bmp::new(&instance)
                .with_config(options.solver_config())
                .solve()
                .ok_or_else(|| {
                    CliError::runtime("no chip admits the deadline (critical path too long)")
                })?;
            write_report(
                &options,
                "bmp",
                path,
                format!("side {}", result.side),
                result.decisions,
                started,
                &result.stats,
            )?;
            let _ = writeln!(
                out,
                "minimal square chip for horizon {}: {}x{} ({} exact decisions)",
                instance.horizon(),
                result.side,
                result.side,
                result.decisions
            );
            let target = instance.clone().with_chip(Chip::square(result.side));
            describe_placement(&mut out, &target, &result.placement, &options);
        }
        ["spp", path] => {
            let instance = load_instance(path, &options)?;
            let started = Instant::now();
            let result = Spp::new(&instance)
                .with_config(options.solver_config())
                .solve()
                .ok_or_else(|| CliError::runtime("some module does not fit the chip spatially"))?;
            write_report(
                &options,
                "spp",
                path,
                format!("makespan {}", result.makespan),
                result.decisions,
                started,
                &result.stats,
            )?;
            let _ = writeln!(
                out,
                "minimal execution time on {}: {} cycles ({} exact decisions)",
                instance.chip(),
                result.makespan,
                result.decisions
            );
            let target = instance.clone().with_horizon(result.makespan);
            describe_placement(&mut out, &target, &result.placement, &options);
        }
        ["pareto", path] => {
            let instance = load_instance(path, &options)?;
            let started = Instant::now();
            let (front, stats, decisions) =
                pareto_front_with_stats(&instance, &options.solver_config())
                    .ok_or_else(|| CliError::runtime("resource limit reached"))?;
            write_report(
                &options,
                "pareto",
                path,
                format!("{} pareto points", front.len()),
                decisions,
                started,
                &stats,
            )?;
            let _ = writeln!(out, "{:>6} | {:>6}", "chip", "time");
            for p in &front {
                let _ = writeln!(out, "{:>3}x{:<3}| {:>6}", p.side, p.side, p.makespan);
            }
        }
        ["check", path, placement_path] => {
            let instance = load_instance(path, &options)?;
            let text = std::fs::read_to_string(placement_path)
                .map_err(|e| CliError::runtime(format!("cannot read {placement_path}: {e}")))?;
            let placement = format::parse_placement(&text, &instance)
                .map_err(|e| CliError::runtime(format!("{placement_path}: {e}")))?;
            match placement.verify(&instance) {
                Ok(()) => {
                    let _ = writeln!(
                        out,
                        "valid: fits {} within {} cycles (makespan {})",
                        instance.chip(),
                        instance.horizon(),
                        placement.makespan()
                    );
                }
                Err(e) => return Err(CliError::runtime(format!("invalid placement: {e}"))),
            }
        }
        ["render", path, placement_path] => {
            let instance = load_instance(path, &options)?;
            let text = std::fs::read_to_string(placement_path)
                .map_err(|e| CliError::runtime(format!("cannot read {placement_path}: {e}")))?;
            let placement = format::parse_placement(&text, &instance)
                .map_err(|e| CliError::runtime(format!("{placement_path}: {e}")))?;
            if options.svg {
                out.push_str(&render::svg(&placement, &instance));
            } else {
                out.push_str(&render::gantt(&placement, &instance));
            }
        }
        ["sample", which] => {
            let instance = match *which {
                "de" => benchmarks::de(Chip::square(32), 6),
                "codec" => benchmarks::video_codec(Chip::square(64), 59),
                "pair" => {
                    use recopack_model::Task;
                    Instance::builder()
                        .chip(Chip::square(2))
                        .horizon(4)
                        .task(Task::new("a", 2, 2, 2))
                        .task(Task::new("b", 2, 2, 2))
                        .precedence("a", "b")
                        .build()
                        .expect("sample instance is valid")
                }
                other => {
                    return Err(CliError::usage(format!(
                        "unknown sample {other:?} (expected de, codec, or pair)"
                    )));
                }
            };
            out.push_str(&format::format_instance(&instance));
        }
        other => {
            return Err(CliError::usage(format!(
                "unrecognized command {:?}\n\n{USAGE}",
                other.join(" ")
            )));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("recopack-cli-test-{name}"));
        std::fs::write(&path, contents).expect("writable temp dir");
        path
    }

    #[test]
    fn help_and_empty_print_usage() {
        assert_eq!(run(&args(&["help"])).expect("ok"), USAGE);
        assert_eq!(run(&args(&[])).expect("ok"), USAGE);
    }

    #[test]
    fn unknown_command_and_flag_are_usage_errors() {
        let err = run(&args(&["frobnicate"])).expect_err("usage error");
        assert_eq!(err.exit_code, 2);
        let err = run(&args(&["solve", "x", "--wat"])).expect_err("usage error");
        assert_eq!(err.exit_code, 2);
    }

    #[test]
    fn sample_roundtrips_through_solve() {
        let sample = run(&args(&["sample", "pair"])).expect("sample");
        let path = temp_file("pair.rpk", &sample);
        let output = run(&args(&["solve", path.to_str().expect("utf8 path")])).expect("solves");
        assert!(output.contains("feasible"), "{output}");
        assert!(output.contains('#'), "gantt expected: {output}");
    }

    #[test]
    fn solve_reports_infeasibility() {
        let path = temp_file(
            "tight.rpk",
            "chip 2 2\nhorizon 3\ntask a 2 2 2\ntask b 2 2 2\narc a b\n",
        );
        let output = run(&args(&["solve", path.to_str().expect("utf8 path")])).expect("runs");
        assert!(output.contains("infeasible"), "{output}");
    }

    #[test]
    fn bmp_and_spp_optimize_the_pair() {
        let path = temp_file(
            "pair2.rpk",
            "chip 2 2\nhorizon 4\ntask a 2 2 2\ntask b 2 2 2\narc a b\n",
        );
        let p = path.to_str().expect("utf8 path");
        let bmp = run(&args(&["bmp", p])).expect("bmp");
        assert!(bmp.contains("2x2"), "{bmp}");
        let spp = run(&args(&["spp", p])).expect("spp");
        assert!(spp.contains("4 cycles"), "{spp}");
        let pareto = run(&args(&["pareto", p])).expect("pareto");
        assert!(pareto.contains('|'), "{pareto}");
    }

    #[test]
    fn no_precedence_changes_answers() {
        let path = temp_file(
            "pair3.rpk",
            "chip 4 2\nhorizon 2\ntask a 2 2 2\ntask b 2 2 2\narc a b\n",
        );
        let p = path.to_str().expect("utf8 path");
        let with = run(&args(&["solve", p])).expect("runs");
        assert!(with.contains("infeasible"), "{with}");
        let without = run(&args(&["solve", p, "--no-precedence"])).expect("runs");
        assert!(without.contains("feasible on"), "{without}");
    }

    #[test]
    fn floorplans_render_between_events() {
        let path = temp_file(
            "pair4.rpk",
            "chip 2 2\nhorizon 4\ntask a 2 2 2\ntask b 2 2 2\narc a b\n",
        );
        let p = path.to_str().expect("utf8 path");
        let output = run(&args(&["solve", p, "--floorplans"])).expect("runs");
        assert!(output.contains("cycles [0, 2):"), "{output}");
        assert!(output.contains("aa"), "{output}");
    }

    #[test]
    fn missing_file_is_a_runtime_error() {
        let err = run(&args(&["solve", "/nonexistent/zzz.rpk"])).expect_err("io error");
        assert_eq!(err.exit_code, 1);
        assert!(err.message.contains("cannot read"));
    }

    #[test]
    fn threads_flag_parses_and_preserves_answers() {
        let path = temp_file(
            "threads.rpk",
            "chip 2 2\nhorizon 4\ntask a 2 2 2\ntask b 2 2 2\narc a b\n",
        );
        let p = path.to_str().expect("utf8 path");
        let seq = run(&args(&["solve", p])).expect("runs");
        for t in ["0", "1", "4"] {
            let par = run(&args(&["solve", p, "--threads", t])).expect("runs");
            assert_eq!(par, seq, "--threads {t} changed the output");
        }
        let err = run(&args(&["solve", p, "--threads"])).expect_err("missing value");
        assert_eq!(err.exit_code, 2);
        let err = run(&args(&["solve", p, "--threads", "many"])).expect_err("bad value");
        assert!(err.message.contains("expects a number"), "{err:?}");
    }

    #[test]
    fn stats_json_writes_versioned_reports() {
        let path = temp_file(
            "stats.rpk",
            "chip 2 2\nhorizon 4\ntask a 2 2 2\ntask b 2 2 2\narc a b\n",
        );
        let p = path.to_str().expect("utf8 path");
        for command in ["solve", "bmp", "spp", "pareto"] {
            let report_path = temp_file(&format!("stats-{command}.json"), "");
            let rp = report_path.to_str().expect("utf8 path");
            run(&args(&[command, p, "--stats-json", rp])).expect("runs");
            let json = std::fs::read_to_string(&report_path).expect("report written");
            assert!(
                json.starts_with("{\"schema_version\":1"),
                "{command}: {json}"
            );
            assert!(
                json.contains(&format!("\"command\":\"{command}\"")),
                "{command}: {json}"
            );
            assert!(json.contains("\"wall_ms\":"), "{command}: {json}");
            assert!(json.contains("\"conflicts\":{"), "{command}: {json}");
            assert!(json.contains("\"depth_histogram\":["), "{command}: {json}");
        }
        // Infeasible solves are reported too.
        let tight = temp_file(
            "stats-tight.rpk",
            "chip 2 2\nhorizon 3\ntask a 2 2 2\ntask b 2 2 2\narc a b\n",
        );
        let report_path = temp_file("stats-tight.json", "");
        run(&args(&[
            "solve",
            tight.to_str().expect("utf8 path"),
            "--stats-json",
            report_path.to_str().expect("utf8 path"),
        ]))
        .expect("runs");
        let json = std::fs::read_to_string(&report_path).expect("report written");
        assert!(json.contains("\"outcome\":\"infeasible\""), "{json}");
        // And the flag validates its argument.
        let err = run(&args(&["solve", p, "--stats-json"])).expect_err("missing path");
        assert_eq!(err.exit_code, 2);
    }

    #[test]
    fn samples_match_benchmarks() {
        let de = run(&args(&["sample", "de"])).expect("de");
        assert!(de.contains("task v1 16 16 2"));
        let codec = run(&args(&["sample", "codec"])).expect("codec");
        assert!(codec.contains("motion_estimation 64 64 24"));
        let err = run(&args(&["sample", "zzz"])).expect_err("unknown sample");
        assert_eq!(err.exit_code, 2);
    }
}

#[cfg(test)]
mod roundtrip_tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("recopack-cli-rt-{name}"));
        std::fs::write(&path, contents).expect("writable temp dir");
        path
    }

    #[test]
    fn solve_emit_check_render_pipeline() {
        let instance_text = "chip 2 2\nhorizon 4\ntask a 2 2 2\ntask b 2 2 2\narc a b\n";
        let ipath = temp_file("pipe.rpk", instance_text);
        let ip = ipath.to_str().expect("utf8 path");
        let solved = run(&args(&["solve", ip, "--emit-placement"])).expect("solves");
        // Extract the `place` lines and feed them back through check/render.
        let placement_text: String = solved
            .lines()
            .filter(|l| l.starts_with("place "))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(placement_text.lines().count(), 2);
        let ppath = temp_file("pipe.place", &placement_text);
        let pp = ppath.to_str().expect("utf8 path");
        let checked = run(&args(&["check", ip, pp])).expect("valid placement");
        assert!(checked.contains("valid:"), "{checked}");
        let gantt = run(&args(&["render", ip, pp])).expect("renders");
        assert!(gantt.contains('#'), "{gantt}");
        let svg = run(&args(&["render", ip, pp, "--svg"])).expect("renders svg");
        assert!(svg.starts_with("<svg"), "{svg}");
    }

    #[test]
    fn check_rejects_bad_placements() {
        let instance_text = "chip 2 2\nhorizon 4\ntask a 2 2 2\ntask b 2 2 2\narc a b\n";
        let ipath = temp_file("bad.rpk", instance_text);
        let ppath = temp_file("bad.place", "place a 0 0 0\nplace b 0 0 0\n");
        let err = run(&args(&[
            "check",
            ipath.to_str().expect("utf8 path"),
            ppath.to_str().expect("utf8 path"),
        ]))
        .expect_err("overlap");
        assert!(err.message.contains("invalid placement"), "{err:?}");
    }
}
