//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest it uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` attribute, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`, range and tuple
//! [`Strategy`]s, and [`collection::vec`].
//!
//! Cases are generated deterministically: the RNG for case `k` of test `t`
//! is seeded from `hash(module_path::t, k)`, so failures reproduce across
//! runs without a persistence file. There is no shrinking — the failing
//! case index and sampled values are reported instead.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not counted.
    Reject(String),
    /// `prop_assert*!` failed — the whole test fails.
    Fail(String),
}

/// Result type threaded through generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator, mirroring `proptest::strategy::Strategy` (without
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// A strategy always yielding clones of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl Strategy for bool {
    type Value = bool;
    fn sample(&self, _rng: &mut StdRng) -> bool {
        *self
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible length specifications for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Deterministic per-case RNG: FNV-1a over the test path mixed with the
/// case index.
pub fn test_rng(test_path: &str, case: u64) -> StdRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// The test-defining macro, mirroring `proptest::proptest!`.
///
/// Supports the form used in this workspace: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test function per
/// step so the shared config expression can be repeated into each.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
            $(#[$meta])*
            fn $name() {
                let cases: u32 = ($config).cases;
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case_index: u64 = 0;
                while passed < cases {
                    assert!(
                        rejected <= cases.saturating_mul(16).saturating_add(1024),
                        "proptest: too many rejected cases ({rejected}) in {}",
                        stringify!($name)
                    );
                    let mut rng = $crate::test_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        case_index,
                    );
                    case_index += 1;
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    let case_desc = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+ "(case #{})"),
                        $(&$arg,)+ case_index - 1
                    );
                    let outcome: $crate::TestCaseResult = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case failed: {msg}\n  with {case_desc}");
                        }
                    }
                }
            }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples_sample_in_bounds(
            n in 2usize..60,
            seed in 0u64..1000,
            d in 0.2f64..0.9,
            pair in (0usize..3, 0usize..6)
        ) {
            prop_assert!((2..60).contains(&n));
            prop_assert!(seed < 1000);
            prop_assert!((0.2..0.9).contains(&d));
            prop_assert!(pair.0 < 3 && pair.1 < 6);
        }

        #[test]
        fn vec_strategy_respects_length(ops in collection::vec((0usize..3, 0usize..6), 1..40)) {
            prop_assert!(!ops.is_empty() && ops.len() < 40);
            for (a, b) in ops {
                prop_assert!(a < 3 && b < 6);
            }
        }

        #[test]
        fn assume_discards_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_rng("x::t", 5);
        let mut b = crate::test_rng("x::t", 5);
        let s = 0u64..100;
        assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    #[allow(unnameable_test_items)]
    fn failures_panic_with_case_report() {
        proptest! {
            #[test]
            fn inner(n in 0usize..10) {
                prop_assert!(n > 100, "n was {n}");
            }
        }
        inner();
    }
}
