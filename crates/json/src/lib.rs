//! A minimal JSON reader shared by every telemetry *consumer* in the
//! workspace: the `recopack-bench` baseline gate and the `recopack trace`
//! exporters both parse documents produced by the telemetry writer in
//! `recopack-core`.
//!
//! The workspace is dependency-free by policy (no serde), so consumers parse
//! their input with this small recursive-descent parser. It accepts strict
//! JSON as produced by the telemetry writer; it is not a general-purpose
//! validator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, which covers every count the
    /// telemetry writer emits exactly up to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as a single JSON value (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Member lookup on objects; `None` for other kinds or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value as `u64`, when whole and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value back to compact JSON text.
    ///
    /// Object members keep their source order, so a parse → edit →
    /// serialize round trip (as done by `recopack-load` when merging its
    /// latency section into an existing `BENCH_*.json`) preserves the
    /// document layout. Whole numbers within `u64` range print without a
    /// fractional part; other numbers use the shortest `f64` form.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.abs() <= u64::MAX as f64 {
                    // Avoid "12.0" for counts: emit "-12" / "12".
                    if *n < 0.0 {
                        out.push('-');
                    }
                    out.push_str(&format!("{}", n.abs() as u64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::String(s) => write_json_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Replaces (or appends) a member of an object. No-op on other kinds.
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Object(members) = self {
            match members.iter_mut().find(|(k, _)| k == key) {
                Some((_, slot)) => *slot = value,
                None => members.push((key.to_string(), value)),
            }
        }
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogates never appear in our own writer output.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("unpaired surrogate"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits and signs are ASCII");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").expect("ok"), Json::Null);
        assert_eq!(Json::parse(" true ").expect("ok"), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e1").expect("ok"), Json::Number(-25.0));
        assert_eq!(
            Json::parse("\"a\\n\\\"b\\u0041\"").expect("ok"),
            Json::String("a\n\"bA".to_string())
        );
        assert_eq!(Json::parse("false").expect("ok").as_bool(), Some(false));
    }

    #[test]
    fn parses_nested_documents() {
        let doc =
            Json::parse(r#"{"cases":[{"name":"x","nodes":12},{"name":"y","nodes":0}],"ok":true}"#)
                .expect("ok");
        let cases = doc.get("cases").and_then(Json::as_array).expect("array");
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].get("name").and_then(Json::as_str), Some("x"));
        assert_eq!(cases[0].get("nodes").and_then(Json::as_u64), Some(12));
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn serializer_round_trips_documents() {
        for text in [
            "null",
            "true",
            "-25",
            "2.5",
            "\"a\\n\\\"b\"",
            "[1,2,[3,{}]]",
            r#"{"cases":[{"name":"x","nodes":12}],"ok":true,"ratio":0.5,"note":null}"#,
        ] {
            let doc = Json::parse(text).expect("parses");
            let emitted = doc.to_json_string();
            assert_eq!(
                Json::parse(&emitted).expect("re-parses"),
                doc,
                "round trip of {text:?} via {emitted:?}"
            );
        }
        // Source order (and thus byte layout) is preserved exactly for the
        // writer's own output shape.
        let text = r#"{"b":1,"a":[true,null],"c":"x"}"#;
        assert_eq!(Json::parse(text).expect("parses").to_json_string(), text);
    }

    #[test]
    fn set_replaces_and_appends_members() {
        let mut doc = Json::parse(r#"{"a":1}"#).expect("parses");
        doc.set("a", Json::Number(2.0));
        doc.set("b", Json::String("new".to_string()));
        assert_eq!(doc.to_json_string(), r#"{"a":2,"b":"new"}"#);
    }

    #[test]
    fn control_characters_are_escaped() {
        let doc = Json::String("a\u{1}\tb".to_string());
        let emitted = doc.to_json_string();
        assert_eq!(emitted, "\"a\\u0001\\tb\"");
        assert_eq!(Json::parse(&emitted).expect("re-parses"), doc);
    }
}
