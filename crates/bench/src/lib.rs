//! Shared helpers for the criterion benchmark harness and the
//! `recopack-bench` runner.
//!
//! The criterion benchmarks live in `benches/`; see DESIGN.md §4 for the
//! experiment index mapping each bench target to a table or figure of the
//! paper. The [`suite`] module holds the pinned instance set behind the
//! `recopack-bench` binary and the CI `bench-smoke` node-count gate; the
//! dependency-free JSON reader for the committed baseline lives in the
//! shared [`recopack_json`] crate (re-exported here as [`json`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use recopack_json as json;
pub mod suite;
pub mod trend;

use recopack_core::SolverConfig;

/// A solver configuration that skips bounds and heuristics so the benches
/// time the packing-class search itself.
pub fn search_only() -> SolverConfig {
    SolverConfig {
        use_bounds: false,
        use_heuristics: false,
        ..SolverConfig::default()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn search_only_disables_the_early_stages() {
        let c = super::search_only();
        assert!(!c.use_bounds && !c.use_heuristics);
        assert!(c.clique_rule, "propagation rules stay on");
    }
}
