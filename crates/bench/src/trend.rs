//! Cross-PR perf trajectory: joins the committed `BENCH_PR<N>.json`
//! snapshots on `(instance, threads)` and renders per-case node-count,
//! wall-clock, and throughput trends as a markdown table (for
//! EXPERIMENTS.md) plus a machine-readable JSON document.

use recopack_json::Json;

/// One report's observation of one case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendPoint {
    /// Search nodes explored (deterministic per case).
    pub nodes: u64,
    /// Wall-clock time in milliseconds (noisy; informational).
    pub wall_ms: f64,
    /// Throughput in nodes per second, when the wall was measurable.
    pub nodes_per_sec: Option<f64>,
}

/// One `(instance, threads)` case tracked across the report series.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendRow {
    /// Case name.
    pub instance: String,
    /// Pinned thread count.
    pub threads: u64,
    /// One slot per report, in argument order; `None` when the case is
    /// absent from that snapshot (suites grow and shrink across PRs).
    pub points: Vec<Option<TrendPoint>>,
}

/// The joined trajectory over a series of bench reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Trend {
    /// Report labels, in argument order.
    pub labels: Vec<String>,
    /// Rows in order of first appearance across the series.
    pub rows: Vec<TrendRow>,
}

/// Joins parsed bench reports into a [`Trend`]. Each entry pairs a
/// fallback label (typically the file path) with the parsed document; the
/// document's own `label` field wins when present.
pub fn build_trend(reports: &[(String, Json)]) -> Result<Trend, String> {
    if reports.is_empty() {
        return Err("trend needs at least one report".to_string());
    }
    let mut trend = Trend {
        labels: Vec::with_capacity(reports.len()),
        rows: Vec::new(),
    };
    for (index, (fallback, doc)) in reports.iter().enumerate() {
        let label = doc
            .get("label")
            .and_then(Json::as_str)
            .unwrap_or(fallback)
            .to_string();
        trend.labels.push(label);
        let cases = doc
            .get("cases")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{fallback}: report has no cases array"))?;
        for case in cases {
            let instance = case
                .get("instance")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{fallback}: case without an instance name"))?;
            let threads = case.get("threads").and_then(Json::as_u64).unwrap_or(1);
            let nodes = case
                .get("stats")
                .and_then(|s| s.get("nodes"))
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{fallback}: case {instance} lacks stats.nodes"))?;
            let wall_ms = case.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
            let nodes_per_sec = case
                .get("nodes_per_sec")
                .and_then(Json::as_f64)
                .or_else(|| (wall_ms > 0.0).then(|| nodes as f64 / (wall_ms / 1000.0)));
            let point = TrendPoint {
                nodes,
                wall_ms,
                nodes_per_sec,
            };
            let row = match trend
                .rows
                .iter_mut()
                .find(|r| r.instance == instance && r.threads == threads)
            {
                Some(row) => row,
                None => {
                    trend.rows.push(TrendRow {
                        instance: instance.to_string(),
                        threads,
                        points: Vec::new(),
                    });
                    trend.rows.last_mut().expect("just pushed")
                }
            };
            // Pad for reports this case skipped, then record this one.
            row.points.resize(index, None);
            row.points.push(Some(point));
        }
    }
    for row in &mut trend.rows {
        row.points.resize(reports.len(), None);
    }
    Ok(trend)
}

impl Trend {
    /// Renders the trajectory as one markdown table: a row per case and
    /// metric, a column per report, plus suite-total rows at the end.
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("| case | thr | metric |");
        for label in &self.labels {
            let _ = write!(out, " {label} |");
        }
        out.push_str("\n|---|---|---|");
        for _ in &self.labels {
            out.push_str("---|");
        }
        out.push('\n');
        let mut emit = |name: &str, threads: &str, metric: &str, cells: Vec<String>| {
            let _ = write!(out, "| {name} | {threads} | {metric} |");
            for cell in cells {
                let _ = write!(out, " {cell} |");
            }
            out.push('\n');
        };
        let fmt_rate = |rate: Option<f64>| match rate {
            Some(rate) => format!("{:.0}k", rate / 1000.0),
            None => "—".to_string(),
        };
        for row in &self.rows {
            let cell = |f: &dyn Fn(&TrendPoint) -> String| -> Vec<String> {
                row.points
                    .iter()
                    .map(|p| p.as_ref().map_or_else(|| "—".to_string(), f))
                    .collect()
            };
            let threads = row.threads.to_string();
            emit(
                &row.instance,
                &threads,
                "nodes",
                cell(&|p| p.nodes.to_string()),
            );
            emit("", "", "wall_ms", cell(&|p| format!("{:.2}", p.wall_ms)));
            emit("", "", "nodes/s", cell(&|p| fmt_rate(p.nodes_per_sec)));
        }
        // Suite totals per report, over the cases present in each.
        let mut nodes_cells = Vec::new();
        let mut wall_cells = Vec::new();
        let mut rate_cells = Vec::new();
        for index in 0..self.labels.len() {
            let points = self.rows.iter().filter_map(|r| r.points[index].as_ref());
            let (nodes, wall) =
                points.fold((0u64, 0.0f64), |(n, w), p| (n + p.nodes, w + p.wall_ms));
            nodes_cells.push(nodes.to_string());
            wall_cells.push(format!("{wall:.2}"));
            rate_cells.push(fmt_rate(
                (wall > 0.0).then(|| nodes as f64 / (wall / 1000.0)),
            ));
        }
        emit("**total**", "", "nodes", nodes_cells);
        emit("", "", "wall_ms", wall_cells);
        emit("", "", "nodes/s", rate_cells);
        out
    }

    /// Serializes the trajectory as JSON (`labels` plus parallel per-metric
    /// arrays per row, `null` where a case is absent from a snapshot).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"labels\":[");
        for (i, label) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            recopack_core::telemetry::push_json_str(&mut out, label);
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"instance\":");
            recopack_core::telemetry::push_json_str(&mut out, &row.instance);
            let _ = write!(out, ",\"threads\":{}", row.threads);
            let mut field = |name: &str, value: &dyn Fn(&TrendPoint) -> String| {
                let _ = write!(out, ",\"{name}\":[");
                for (j, point) in row.points.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    match point {
                        Some(p) => out.push_str(&value(p)),
                        None => out.push_str("null"),
                    }
                }
                out.push(']');
            };
            field("nodes", &|p| p.nodes.to_string());
            field("wall_ms", &|p| format!("{:.3}", p.wall_ms));
            field("nodes_per_sec", &|p| match p.nodes_per_sec {
                Some(rate) => format!("{rate:.1}"),
                None => "null".to_string(),
            });
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(label: &str, cases: &[(&str, u64, u64, f64)]) -> Json {
        let mut text = format!("{{\"label\":\"{label}\",\"cases\":[");
        for (i, (name, threads, nodes, wall)) in cases.iter().enumerate() {
            if i > 0 {
                text.push(',');
            }
            text.push_str(&format!(
                "{{\"instance\":\"{name}\",\"threads\":{threads},\
                 \"wall_ms\":{wall},\"stats\":{{\"nodes\":{nodes}}}}}"
            ));
        }
        text.push_str("]}");
        Json::parse(&text).expect("stub report parses")
    }

    #[test]
    fn trend_joins_on_instance_and_threads_with_gaps() {
        let trend = build_trend(&[
            (
                "a.json".into(),
                report("PR5", &[("quad5_t1", 1, 100, 2.0), ("old_case", 1, 7, 0.5)]),
            ),
            (
                "b.json".into(),
                report(
                    "PR9",
                    &[("quad5_t1", 1, 100, 1.0), ("new_case", 2, 9, 0.25)],
                ),
            ),
        ])
        .expect("trend builds");
        assert_eq!(trend.labels, vec!["PR5", "PR9"]);
        assert_eq!(trend.rows.len(), 3, "union of cases across snapshots");
        let quad = &trend.rows[0];
        assert_eq!(quad.instance, "quad5_t1");
        assert_eq!(quad.points[0].expect("present").nodes, 100);
        assert_eq!(
            quad.points[1].expect("present").nodes_per_sec,
            Some(100_000.0),
            "throughput derived from nodes and wall when absent"
        );
        let old = &trend.rows[1];
        assert!(old.points[1].is_none(), "retired case leaves a gap");
        let new = &trend.rows[2];
        assert!(new.points[0].is_none(), "new case back-fills with a gap");
        assert_eq!(new.threads, 2);
    }

    #[test]
    fn markdown_and_json_render_every_report_column() {
        let trend = build_trend(&[
            ("a".into(), report("PR5", &[("quad5_t1", 1, 100, 2.0)])),
            ("b".into(), report("PR9", &[("quad5_t1", 1, 100, 1.0)])),
        ])
        .expect("trend builds");
        let markdown = trend.to_markdown();
        assert!(markdown.starts_with("| case | thr | metric | PR5 | PR9 |"));
        assert!(
            markdown.contains("| quad5_t1 | 1 | nodes | 100 | 100 |"),
            "{markdown}"
        );
        assert!(markdown.contains("| **total** |"), "{markdown}");
        let doc = Json::parse(&trend.to_json()).expect("trend JSON parses");
        let labels = doc.get("labels").and_then(Json::as_array).expect("labels");
        assert_eq!(labels.len(), 2);
        let rows = doc.get("rows").and_then(Json::as_array).expect("rows");
        let nodes = rows[0]
            .get("nodes")
            .and_then(Json::as_array)
            .expect("nodes");
        assert_eq!(nodes.len(), 2, "one slot per report");
    }

    #[test]
    fn empty_series_and_malformed_reports_are_rejected() {
        assert!(build_trend(&[]).is_err());
        let bad = Json::parse("{\"label\":\"x\"}").expect("parses");
        assert!(build_trend(&[("x".into(), bad)]).is_err());
    }
}
