//! `recopack-bench`: the reproducible benchmark runner.
//!
//! Runs the pinned instance suite of [`recopack_bench::suite`] at the
//! thread counts pinned per case, writes a versioned JSON report, and
//! optionally gates against a committed baseline:
//!
//! ```text
//! recopack-bench [--smoke] [--only NAME] [--profile] [--out PATH]
//!                [--label NAME] [--check BASELINE] [--tolerance PCT]
//! ```
//!
//! * `--smoke` — run the CI smoke subset instead of the full suite;
//! * `--only NAME` — run a single case by name;
//! * `--profile` — collect per-phase wall times into each case's stats;
//! * `--out PATH` — report path (default `BENCH_PR9.json`; committing the
//!   default-path report of a full run at the repo root is how the perf
//!   trajectory is recorded, one snapshot per PR);
//! * `--label NAME` — report label (default `PR9`);
//! * `--check BASELINE` — compare node counts against a previous report,
//!   check two-thread wall-clock parity (t2 walls may sum to at most 1.5×
//!   the t1 walls across the paired families), and exit nonzero on a
//!   regression;
//! * `--tolerance PCT` — allowed node-count growth in percent (default 0:
//!   the search is deterministic, so the gate requires *exact* equality and
//!   flags any drift in either direction).
//!
//! Node counts are deterministic per case (see the suite docs), so the gate
//! compares them exactly; wall times are informational.

use std::process::ExitCode;

use recopack_bench::json::Json;
use recopack_bench::suite::{
    check_against_baseline, check_parallel_parity, run_suite_with, SuiteOptions,
};

/// Generous ceiling for the `--check` wall-clock parity gate: summed over
/// the paired families, two-thread walls may cost at most 1.5× the
/// one-thread walls (see [`check_parallel_parity`]).
const PARITY_MAX_PERCENT: u64 = 150;

struct Args {
    smoke: bool,
    only: Option<String>,
    profile: bool,
    out: String,
    label: String,
    check: Option<String>,
    tolerance: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        only: None,
        profile: false,
        out: "BENCH_PR9.json".to_string(),
        label: "PR9".to_string(),
        check: None,
        tolerance: 0,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--only" => args.only = Some(iter.next().ok_or("--only requires a case name")?),
            "--profile" => args.profile = true,
            "--out" => args.out = iter.next().ok_or("--out requires a path")?,
            "--label" => args.label = iter.next().ok_or("--label requires a name")?,
            "--check" => args.check = Some(iter.next().ok_or("--check requires a path")?),
            "--tolerance" => {
                let value = iter.next().ok_or("--tolerance requires a percentage")?;
                args.tolerance = value
                    .parse()
                    .map_err(|_| format!("--tolerance expects a number, got {value:?}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: recopack-bench [--smoke] [--only NAME] [--profile] \
                     [--out PATH] [--label NAME] [--check BASELINE] [--tolerance PCT]"
                    .to_string());
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let report = run_suite_with(&SuiteOptions {
        smoke: args.smoke,
        label: args.label.clone(),
        profile: args.profile,
        only: args.only.clone(),
    });
    if report.cases.is_empty() {
        eprintln!("no case matched the selection (see --only)");
        return ExitCode::from(2);
    }
    println!(
        "{:<22} {:>3} {:>12} {:>10} {:>10}  outcome",
        "case", "thr", "nodes", "conflicts", "wall_ms"
    );
    for case in &report.cases {
        println!(
            "{:<22} {:>3} {:>12} {:>10} {:>10.2}  {}",
            case.instance,
            case.threads,
            case.stats.nodes,
            case.stats.conflicts(),
            case.wall_ms,
            case.outcome
        );
    }
    if let Err(e) = std::fs::write(&args.out, report.to_json()) {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("report written to {}", args.out);

    let Some(baseline_path) = &args.check else {
        return ExitCode::SUCCESS;
    };
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("malformed baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let gate = check_against_baseline(&report, &baseline, args.tolerance);
    println!(
        "\nnode-count gate vs {baseline_path} (tolerance {}%):",
        args.tolerance
    );
    for line in &gate.lines {
        println!("  {line}");
    }
    let parity = check_parallel_parity(&report, PARITY_MAX_PERCENT);
    println!(
        "\nparallel parity gate (t2 <= {:.2}x t1, summed over pairs):",
        PARITY_MAX_PERCENT as f64 / 100.0
    );
    for line in &parity.lines {
        println!("  {line}");
    }
    if gate.passed() && parity.passed() {
        println!("gate passed");
        ExitCode::SUCCESS
    } else {
        for regression in gate.regressions.iter().chain(&parity.regressions) {
            eprintln!("regression: {regression}");
        }
        ExitCode::FAILURE
    }
}
