//! `recopack-bench`: the reproducible benchmark runner.
//!
//! Runs the pinned instance suite of [`recopack_bench::suite`] at the
//! thread counts pinned per case, writes a versioned JSON report, and
//! optionally gates against a committed baseline:
//!
//! ```text
//! recopack-bench [--smoke] [--only NAME] [--profile] [--out PATH]
//!                [--label NAME] [--check BASELINE] [--tolerance PCT]
//!                [--sample-profile[=HZ]] [--sample-out PATH]
//! recopack-bench --trend REPORT.json [REPORT.json ...]
//! ```
//!
//! * `--smoke` — run the CI smoke subset instead of the full suite;
//! * `--only NAME` — run a single case by name;
//! * `--profile` — collect per-phase wall times into each case's stats;
//! * `--out PATH` — report path (default `BENCH_PR10.json`; committing the
//!   default-path report of a full run at the repo root is how the perf
//!   trajectory is recorded, one snapshot per PR);
//! * `--label NAME` — report label (default `PR10`);
//! * `--check BASELINE` — compare node counts against a previous report,
//!   check two-thread wall-clock parity (t2 walls may sum to at most 1.5×
//!   the t1 walls across the paired families), and exit nonzero on a
//!   regression;
//! * `--tolerance PCT` — allowed node-count growth in percent (default 0:
//!   the search is deterministic, so the gate requires *exact* equality and
//!   flags any drift in either direction);
//! * `--sample-profile[=HZ]` — run the always-on sampling profiler (default
//!   97 Hz) across the suite and write folded stacks to `--sample-out`
//!   (default `bench.folded`). Beacons are pure stores, so the node-count
//!   gate holds bit-exactly with sampling enabled;
//! * `--trend REPORT...` — instead of running anything, join the given
//!   `BENCH_PR<N>.json` snapshots on `(instance, threads)` and print the
//!   per-case nodes / wall-ms / nodes-per-sec trajectory as markdown,
//!   writing the JSON form to `--out` (default `TREND.json`).
//!
//! Node counts are deterministic per case (see the suite docs), so the gate
//! compares them exactly; wall times are informational.

use std::process::ExitCode;

use recopack_bench::json::Json;
use recopack_bench::suite::{
    check_against_baseline, check_parallel_parity, run_suite_with, SuiteOptions,
};
use recopack_bench::trend::build_trend;
use recopack_core::{Sampler, SAMPLER_DEFAULT_HZ};

/// Generous ceiling for the `--check` wall-clock parity gate: summed over
/// the paired families, two-thread walls may cost at most 1.5× the
/// one-thread walls (see [`check_parallel_parity`]).
const PARITY_MAX_PERCENT: u64 = 150;

struct Args {
    smoke: bool,
    only: Option<String>,
    profile: bool,
    out: Option<String>,
    label: String,
    check: Option<String>,
    tolerance: u64,
    sample_profile: Option<u64>,
    sample_out: String,
    trend: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        only: None,
        profile: false,
        out: None,
        label: "PR10".to_string(),
        check: None,
        tolerance: 0,
        sample_profile: None,
        sample_out: "bench.folded".to_string(),
        trend: Vec::new(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--only" => args.only = Some(iter.next().ok_or("--only requires a case name")?),
            "--profile" => args.profile = true,
            "--out" => args.out = Some(iter.next().ok_or("--out requires a path")?),
            "--label" => args.label = iter.next().ok_or("--label requires a name")?,
            "--check" => args.check = Some(iter.next().ok_or("--check requires a path")?),
            "--tolerance" => {
                let value = iter.next().ok_or("--tolerance requires a percentage")?;
                args.tolerance = value
                    .parse()
                    .map_err(|_| format!("--tolerance expects a number, got {value:?}"))?;
            }
            "--sample-profile" => args.sample_profile = Some(SAMPLER_DEFAULT_HZ),
            "--sample-out" => {
                args.sample_out = iter.next().ok_or("--sample-out requires a path")?;
            }
            "--trend" => {
                // Everything after the flag is a report path.
                args.trend.extend(iter.by_ref());
                if args.trend.is_empty() {
                    return Err("--trend requires at least one report path".to_string());
                }
            }
            "--help" | "-h" => {
                return Err("usage: recopack-bench [--smoke] [--only NAME] [--profile] \
                     [--out PATH] [--label NAME] [--check BASELINE] [--tolerance PCT] \
                     [--sample-profile[=HZ]] [--sample-out PATH] | --trend REPORT..."
                    .to_string());
            }
            other => match other.strip_prefix("--sample-profile=") {
                Some(value) => {
                    let hz: u64 = value.parse().map_err(|_| {
                        format!("--sample-profile expects a Hz rate, got {value:?}")
                    })?;
                    if hz == 0 {
                        return Err("--sample-profile expects a positive Hz rate".to_string());
                    }
                    args.sample_profile = Some(hz);
                }
                None => return Err(format!("unknown argument {other:?} (try --help)")),
            },
        }
    }
    Ok(args)
}

/// `--trend` mode: join the snapshots, print markdown, write JSON.
fn run_trend(paths: &[String], out: &str) -> ExitCode {
    let mut reports = Vec::with_capacity(paths.len());
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match Json::parse(&text) {
            Ok(doc) => reports.push((path.clone(), doc)),
            Err(e) => {
                eprintln!("malformed report {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let trend = match build_trend(&reports) {
        Ok(trend) => trend,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", trend.to_markdown());
    if let Err(e) = std::fs::write(out, trend.to_json()) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("trend JSON written to {out}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    if !args.trend.is_empty() {
        let out = args.out.as_deref().unwrap_or("TREND.json");
        return run_trend(&args.trend, out);
    }
    let out = args.out.unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let sampler = args.sample_profile.map(Sampler::start);
    let report = run_suite_with(&SuiteOptions {
        smoke: args.smoke,
        label: args.label.clone(),
        profile: args.profile,
        only: args.only.clone(),
    });
    if let Some(sampler) = sampler {
        let profile = sampler.stop();
        match std::fs::write(&args.sample_out, profile.to_folded()) {
            Ok(()) => println!(
                "sampling profile: {} samples at {} Hz, {} stacks -> {}",
                profile.samples,
                profile.hz,
                profile.stacks.len(),
                args.sample_out
            ),
            Err(e) => {
                eprintln!("cannot write {}: {e}", args.sample_out);
                return ExitCode::FAILURE;
            }
        }
    }
    if report.cases.is_empty() {
        eprintln!("no case matched the selection (see --only)");
        return ExitCode::from(2);
    }
    println!(
        "{:<22} {:>3} {:>12} {:>10} {:>10}  outcome",
        "case", "thr", "nodes", "conflicts", "wall_ms"
    );
    for case in &report.cases {
        println!(
            "{:<22} {:>3} {:>12} {:>10} {:>10.2}  {}",
            case.instance,
            case.threads,
            case.stats.nodes,
            case.stats.conflicts(),
            case.wall_ms,
            case.outcome
        );
    }
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("report written to {out}");

    let Some(baseline_path) = &args.check else {
        return ExitCode::SUCCESS;
    };
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("malformed baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let gate = check_against_baseline(&report, &baseline, args.tolerance);
    println!(
        "\nnode-count gate vs {baseline_path} (tolerance {}%):",
        args.tolerance
    );
    for line in &gate.lines {
        println!("  {line}");
    }
    let parity = check_parallel_parity(&report, PARITY_MAX_PERCENT);
    println!(
        "\nparallel parity gate (t2 <= {:.2}x t1, summed over pairs):",
        PARITY_MAX_PERCENT as f64 / 100.0
    );
    for line in &parity.lines {
        println!("  {line}");
    }
    if gate.passed() && parity.passed() {
        println!("gate passed");
        ExitCode::SUCCESS
    } else {
        for regression in gate.regressions.iter().chain(&parity.regressions) {
            eprintln!("regression: {regression}");
        }
        ExitCode::FAILURE
    }
}
