//! The pinned instance suite behind the `recopack-bench` binary and the CI
//! `bench-smoke` gate.
//!
//! Every case is fully determined by this file: instances come from the
//! paper's benchmarks and from seeded generators, and thread counts are
//! pinned per case. Node counts (and every other
//! [`SolverStats`](recopack_core::SolverStats) counter)
//! are reproducible run over run:
//!
//! * cases that may be *feasible* run at `threads = 1` only — parallel
//!   cancellation can change how much of the tree is explored before the
//!   certificate is found;
//! * *infeasible-by-construction* cases run at higher thread counts too: an
//!   exhausted search explores the same tree for every thread count.
//!
//! Wall times are reported but never gated; the regression gate compares
//! node counts only (see [`check_against_baseline`]).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use recopack_core::{
    per_second, Bmp, Opp, SolveOutcome, SolveReport, SolverConfig, Spp, TELEMETRY_SCHEMA_VERSION,
};
use recopack_model::generate::{layered_instance, random_instance, GeneratorConfig, LayeredConfig};
use recopack_model::{benchmarks, Chip, Instance, Task};

use crate::json::Json;
use crate::search_only;

/// Which solver a bench case exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// One feasibility decision ([`Opp`]).
    Opp,
    /// Square-chip minimization ([`Bmp`]).
    Bmp,
    /// Makespan minimization ([`Spp`]).
    Spp,
}

impl Command {
    /// Stable name used in the report JSON.
    pub const fn name(self) -> &'static str {
        match self {
            Command::Opp => "opp",
            Command::Bmp => "bmp",
            Command::Spp => "spp",
        }
    }
}

/// One pinned benchmark case.
#[derive(Debug, Clone)]
pub struct BenchCase {
    /// Unique case name (doubles as the instance id in reports).
    pub name: String,
    /// The solver to run.
    pub command: Command,
    /// Whether the case is part of the CI smoke subset.
    pub smoke: bool,
    /// Pinned worker thread count.
    pub threads: usize,
    /// Run with bounds/heuristics disabled so the search itself is timed.
    pub search_only: bool,
    /// The instance (already transitively closed where applicable).
    pub instance: Instance,
}

/// `count >= 5` tasks of size `2×2×2` on a `4×4` chip with horizon 2:
/// every task must run in the only time slot, but the chip holds at most
/// four `2×2` footprints — infeasible, yet (with bounds disabled) provable
/// only by exhausting the spatial branching. This is the search-heavy
/// family of the suite: propagation cannot refute the root, so the node
/// count grows with `count` and is identical for every thread count.
fn quad_overflow(count: usize) -> Instance {
    let mut builder = Instance::builder().chip(Chip::square(4)).horizon(2);
    for i in 0..count {
        builder = builder.task(Task::new(format!("t{i}"), 2, 2, 2));
    }
    builder
        .build()
        .expect("structurally valid")
        .with_transitive_closure()
}

/// The *deep* infeasible family: `quads` full-height `2×2×2` tasks plus
/// `units` unit-duration `2×2×1` tasks on the same `4×4`, horizon-2 chip.
/// The unit tasks can be time-separated, so the time dimension branches
/// too and the tree is orders of magnitude deeper than `quad_overflow`
/// (thousands to ~10⁵ nodes) — deep enough that the work-stealing
/// scheduler actually splits and the `_t2` runs measure real parallel
/// search, not just scheduler overhead. Still infeasible by volume, so
/// node counts stay thread-count invariant.
fn mixed_overflow(quads: usize, units: usize) -> Instance {
    let mut builder = Instance::builder().chip(Chip::square(4)).horizon(2);
    for i in 0..quads {
        builder = builder.task(Task::new(format!("t{i}"), 2, 2, 2));
    }
    for i in 0..units {
        builder = builder.task(Task::new(format!("u{i}"), 2, 2, 1));
    }
    builder
        .build()
        .expect("structurally valid")
        .with_transitive_closure()
}

/// The full pinned suite, filtered to the smoke subset when `smoke` is set.
///
/// Case names are stable identifiers: the regression gate joins current and
/// baseline reports on `(name, command, threads)`.
pub fn cases(smoke: bool) -> Vec<BenchCase> {
    // Paper benchmarks: the full pipeline (bounds, heuristics, search).
    let mut all = vec![BenchCase {
        name: "de_opp_32x6".into(),
        command: Command::Opp,
        smoke: true,
        threads: 1,
        search_only: false,
        instance: benchmarks::de(Chip::square(32), 6).with_transitive_closure(),
    }];
    all.push(BenchCase {
        name: "de_opp_32x5_refuted".into(),
        command: Command::Opp,
        smoke: true,
        threads: 1,
        search_only: false,
        instance: benchmarks::de(Chip::square(32), 5).with_transitive_closure(),
    });
    all.push(BenchCase {
        name: "de_spp_16".into(),
        command: Command::Spp,
        smoke: false,
        threads: 1,
        search_only: false,
        instance: benchmarks::de(Chip::square(16), 1).with_transitive_closure(),
    });
    all.push(BenchCase {
        name: "de_bmp_t14".into(),
        command: Command::Bmp,
        smoke: false,
        threads: 1,
        search_only: false,
        instance: benchmarks::de(Chip::square(1), 14).with_transitive_closure(),
    });

    // Seeded random family: mixed shapes, layered DAG, volume-tight
    // container. Outcome varies by seed; feasible answers are possible, so
    // these stay sequential (see the module docs).
    for (i, seed) in [9001u64, 9002, 9003, 9004].into_iter().enumerate() {
        let config = GeneratorConfig {
            task_count: 7,
            max_side: 3,
            max_duration: 3,
            arc_percent: 30,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        all.push(BenchCase {
            name: format!("random_s{seed}"),
            command: Command::Opp,
            smoke: i < 2,
            threads: 1,
            search_only: true,
            instance: random_instance(&config, &mut rng).with_transitive_closure(),
        });
    }

    // Seeded layered (pipeline-shaped) family.
    for (i, seed) in [9101u64, 9102].into_iter().enumerate() {
        let config = LayeredConfig {
            layers: 3,
            width: 3,
            max_side: 3,
            max_duration: 3,
            arc_percent: 50,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        all.push(BenchCase {
            name: format!("layered_s{seed}"),
            command: Command::Opp,
            smoke: i < 1,
            threads: 1,
            search_only: true,
            instance: layered_instance(&config, &mut rng).with_transitive_closure(),
        });
    }

    // Infeasible-by-construction family: safe at any thread count, so this
    // is where the parallel merge path gets exercised deterministically.
    // The quad trees are a few hundred nodes — *below* the default split
    // threshold, so their `_t2` runs measure the scheduler's small-tree
    // tax (ideally zero).
    for count in [5usize, 6, 7] {
        for threads in [1usize, 2] {
            all.push(BenchCase {
                name: format!("quad{count}_t{threads}"),
                command: Command::Opp,
                smoke: count < 7,
                threads,
                search_only: true,
                instance: quad_overflow(count),
            });
        }
    }

    // Deep infeasible family (see `mixed_overflow`): thousands to ~10⁵
    // nodes, where the work-stealing scheduler genuinely splits. The
    // `_t2`/`_t1` wall ratio of these cases is the headline
    // `parallel_overhead` number.
    for (quads, units) in [(6usize, 4usize), (5, 6)] {
        for threads in [1usize, 2] {
            all.push(BenchCase {
                name: format!("mixed{quads}{units}_t{threads}"),
                command: Command::Opp,
                smoke: (quads, units) == (6, 4),
                threads,
                search_only: true,
                instance: mixed_overflow(quads, units),
            });
        }
    }

    if smoke {
        all.retain(|c| c.smoke);
    }
    all
}

/// Runs one case and packages the outcome as a [`SolveReport`].
pub fn run_case(case: &BenchCase) -> SolveReport {
    run_case_with(case, false)
}

/// Runs one case, optionally with per-phase profiling enabled.
///
/// Profiling adds clock reads around every propagation cascade; node counts
/// must be identical either way (the CI bench-smoke job asserts this).
pub fn run_case_with(case: &BenchCase, profile: bool) -> SolveReport {
    let base = if case.search_only {
        search_only()
    } else {
        SolverConfig::default()
    };
    let config = SolverConfig {
        threads: case.threads,
        profile,
        ..base
    };
    let started = Instant::now();
    let (outcome, decisions, stats) = match case.command {
        Command::Opp => {
            let (outcome, stats) = Opp::new(&case.instance)
                .with_config(config)
                .solve_with_stats();
            let label = match outcome {
                SolveOutcome::Feasible(_) => "feasible".to_string(),
                SolveOutcome::Infeasible(_) => "infeasible".to_string(),
                SolveOutcome::ResourceLimit(limit) => format!("{limit} reached"),
            };
            (label, 1, stats)
        }
        Command::Bmp => match Bmp::new(&case.instance).with_config(config).solve() {
            Some(result) => (
                format!("side {}", result.side),
                result.decisions,
                result.stats,
            ),
            None => ("unsolved".to_string(), 0, Default::default()),
        },
        Command::Spp => match Spp::new(&case.instance).with_config(config).solve() {
            Some(result) => (
                format!("makespan {}", result.makespan),
                result.decisions,
                result.stats,
            ),
            None => ("unsolved".to_string(), 0, Default::default()),
        },
    };
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
    let per_sec = |count: u64| per_second(count, wall_ms);
    SolveReport {
        command: case.command.name().to_string(),
        instance: case.name.clone(),
        outcome,
        threads: case.threads,
        decisions,
        wall_ms,
        nodes_per_sec: per_sec(stats.nodes),
        propagation_events_per_sec: per_sec(stats.propagation_events),
        stats,
        events: None,
        journal_dropped: None,
    }
}

/// A complete bench run: the document written to `BENCH_PR<N>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Report label (`PR2`, a git ref, ...).
    pub label: String,
    /// Whether this was the smoke subset.
    pub smoke: bool,
    /// One entry per case, in suite order.
    pub cases: Vec<SolveReport>,
}

/// Whole-suite aggregates: the perf-trajectory numbers a repo-root
/// `BENCH_<n>.json` snapshot carries, so run-over-run comparisons don't
/// have to re-derive them from the per-case reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteTotals {
    /// Number of cases in the report.
    pub cases: usize,
    /// Search nodes summed over all cases.
    pub nodes: u64,
    /// Propagation events summed over all cases.
    pub propagation_events: u64,
    /// Pruned subtrees summed over all cases and rules.
    pub conflicts: u64,
    /// Wall-clock time summed over all cases, in milliseconds.
    pub wall_ms: f64,
    /// Aggregate throughput: total nodes over total wall time.
    pub nodes_per_sec: Option<f64>,
}

/// A `<family>_t1` / `<family>_t2` case pair of one report: the same
/// pinned instance at one and two threads, whose wall-clock ratio is the
/// scheduler's parallel overhead (or speedup, below 1) on that tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ParityPair {
    /// The shared name prefix (`quad5`, `mixed64`, ...).
    pub family: String,
    /// Wall time of the `threads = 1` run, milliseconds.
    pub t1_wall_ms: f64,
    /// Wall time of the `threads = 2` run, milliseconds.
    pub t2_wall_ms: f64,
}

impl ParityPair {
    /// `t2 / t1` wall-clock ratio; `None` when the t1 wall rounded to
    /// zero. `1.0` is perfect parity, below 1 is a parallel speedup.
    pub fn overhead(&self) -> Option<f64> {
        (self.t1_wall_ms > 0.0).then(|| self.t2_wall_ms / self.t1_wall_ms)
    }
}

impl BenchReport {
    /// Aggregates the per-case stats into [`SuiteTotals`].
    pub fn totals(&self) -> SuiteTotals {
        let nodes = self.cases.iter().map(|c| c.stats.nodes).sum();
        let wall_ms: f64 = self.cases.iter().map(|c| c.wall_ms).sum();
        SuiteTotals {
            cases: self.cases.len(),
            nodes,
            propagation_events: self.cases.iter().map(|c| c.stats.propagation_events).sum(),
            conflicts: self.cases.iter().map(|c| c.stats.conflicts()).sum(),
            wall_ms,
            nodes_per_sec: (wall_ms > 0.0).then(|| nodes as f64 / (wall_ms / 1000.0)),
        }
    }

    /// Every `<family>_t1` / `<family>_t2` pair present in this report, in
    /// case order. Pairs are joined on the name prefix; a family with only
    /// one half present (e.g. under `--only`) is skipped.
    pub fn parity_pairs(&self) -> Vec<ParityPair> {
        let wall_of = |name: &str| {
            self.cases
                .iter()
                .find(|c| c.instance == name)
                .map(|c| c.wall_ms)
        };
        self.cases
            .iter()
            .filter_map(|case| {
                let family = case.instance.strip_suffix("_t1")?;
                Some(ParityPair {
                    family: family.to_string(),
                    t1_wall_ms: case.wall_ms,
                    t2_wall_ms: wall_of(&format!("{family}_t2"))?,
                })
            })
            .collect()
    }

    /// Serializes the report as a versioned JSON document.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{{\"schema_version\":{TELEMETRY_SCHEMA_VERSION}");
        out.push_str(",\"label\":");
        recopack_core::telemetry::push_json_str(&mut out, &self.label);
        let totals = self.totals();
        let _ = write!(
            out,
            ",\"smoke\":{},\"totals\":{{\"cases\":{},\"nodes\":{},\
             \"propagation_events\":{},\"conflicts\":{},\"wall_ms\":{:.3}",
            self.smoke,
            totals.cases,
            totals.nodes,
            totals.propagation_events,
            totals.conflicts,
            totals.wall_ms
        );
        match totals.nodes_per_sec {
            Some(rate) => {
                let _ = write!(out, ",\"nodes_per_sec\":{rate:.1}");
            }
            None => out.push_str(",\"nodes_per_sec\":null"),
        }
        // Per-family t2/t1 wall ratios — the record of what parallel
        // search costs (or saves) on each pinned pair.
        out.push_str(",\"parallel_overhead\":{");
        for (i, pair) in self.parity_pairs().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            recopack_core::telemetry::push_json_str(&mut out, &pair.family);
            match pair.overhead() {
                Some(ratio) => {
                    let _ = write!(out, ":{ratio:.3}");
                }
                None => out.push_str(":null"),
            }
        }
        out.push_str("}}");
        out.push_str(",\"cases\":[");
        for (i, case) in self.cases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&case.to_json());
        }
        out.push_str("]}\n");
        out
    }
}

/// Options for [`run_suite_with`].
#[derive(Debug, Clone, Default)]
pub struct SuiteOptions {
    /// Run the CI smoke subset instead of the full suite.
    pub smoke: bool,
    /// Report label.
    pub label: String,
    /// Collect per-phase wall times (see [`run_case_with`]).
    pub profile: bool,
    /// When set, run only the case with this exact name.
    pub only: Option<String>,
}

/// Runs the pinned suite.
pub fn run_suite(smoke: bool, label: &str) -> BenchReport {
    run_suite_with(&SuiteOptions {
        smoke,
        label: label.to_string(),
        ..Default::default()
    })
}

/// Runs the pinned suite with filtering and profiling options.
pub fn run_suite_with(options: &SuiteOptions) -> BenchReport {
    let mut selected = cases(options.smoke);
    if let Some(only) = &options.only {
        selected.retain(|c| &c.name == only);
    }
    BenchReport {
        label: options.label.clone(),
        smoke: options.smoke,
        cases: selected
            .iter()
            .map(|c| run_case_with(c, options.profile))
            .collect(),
    }
}

/// Outcome of the node-count regression gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateOutcome {
    /// One human-readable comparison line per matched case.
    pub lines: Vec<String>,
    /// Cases whose node count regressed past the tolerance.
    pub regressions: Vec<String>,
}

impl GateOutcome {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares `current` against a parsed baseline report, flagging every case
/// whose node count grew by more than `tolerance_percent`.
///
/// With `tolerance_percent == 0` the gate demands *exact* equality: the
/// search is deterministic, so any node-count drift — shrinkage included —
/// is a behavior change that must be acknowledged by refreshing the
/// baseline, not absorbed as noise. A nonzero tolerance keeps the historical
/// one-sided growth check for exploratory runs.
///
/// Cases are joined on `(instance, command, threads)`. Cases present only
/// on one side are reported but never fail the gate (suites are allowed to
/// grow and shrink across PRs); wall time is informational only.
pub fn check_against_baseline(
    current: &BenchReport,
    baseline: &Json,
    tolerance_percent: u64,
) -> GateOutcome {
    let empty = Vec::new();
    let baseline_cases = baseline
        .get("cases")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    let baseline_nodes = |case: &SolveReport| -> Option<u64> {
        baseline_cases
            .iter()
            .find(|b| {
                b.get("instance").and_then(Json::as_str) == Some(case.instance.as_str())
                    && b.get("command").and_then(Json::as_str) == Some(case.command.as_str())
                    && b.get("threads").and_then(Json::as_u64) == Some(case.threads as u64)
            })
            .and_then(|b| b.get("stats")?.get("nodes")?.as_u64())
    };
    let mut outcome = GateOutcome {
        lines: Vec::new(),
        regressions: Vec::new(),
    };
    for case in &current.cases {
        let nodes = case.stats.nodes;
        match baseline_nodes(case) {
            None => outcome.lines.push(format!(
                "{} (t{}): {} nodes [new case, not gated]",
                case.instance, case.threads, nodes
            )),
            Some(base) => {
                // Integer arithmetic: regression iff nodes > base * (1 + tol).
                // At zero tolerance the comparison is exact and two-sided.
                let regressed = if tolerance_percent == 0 {
                    nodes != base
                } else {
                    nodes * 100 > base * (100 + tolerance_percent)
                };
                outcome.lines.push(format!(
                    "{} (t{}): {} nodes vs baseline {} [{}]",
                    case.instance,
                    case.threads,
                    nodes,
                    base,
                    if regressed { "REGRESSED" } else { "ok" }
                ));
                if regressed {
                    let direction = if tolerance_percent == 0 {
                        format!("differs from baseline {base} (exact gate)")
                    } else {
                        format!("exceeds baseline {base} by more than {tolerance_percent}%")
                    };
                    outcome.regressions.push(format!(
                        "{} (t{}): {} nodes {}",
                        case.instance, case.threads, nodes, direction
                    ));
                }
            }
        }
    }
    outcome
}

/// The wall-clock parity gate: over all `_t1`/`_t2` pairs of `current`,
/// the two-thread walls summed must stay within `max_percent` of the
/// one-thread walls summed (150 = "t2 may cost at most 1.5× t1").
///
/// This is the regression class PR 6 fixed — the eager frontier split ran
/// the quad family 3–5× *slower* at two threads — kept from silently
/// returning. The gate is deliberately generous and aggregated across the
/// families: individual pinned cases run sub-millisecond, where a single
/// scheduler hiccup flips per-case ratios; the suite-wide sum is stable.
/// Wall time is noisy by nature, so this complements (never replaces) the
/// exact node-count gate of [`check_against_baseline`].
pub fn check_parallel_parity(current: &BenchReport, max_percent: u64) -> GateOutcome {
    let pairs = current.parity_pairs();
    let mut outcome = GateOutcome {
        lines: Vec::new(),
        regressions: Vec::new(),
    };
    for pair in &pairs {
        outcome.lines.push(match pair.overhead() {
            Some(ratio) => format!(
                "{}: t1 {:.2} ms, t2 {:.2} ms (ratio {:.2})",
                pair.family, pair.t1_wall_ms, pair.t2_wall_ms, ratio
            ),
            None => format!("{}: t1 wall rounded to zero, skipped", pair.family),
        });
    }
    let t1: f64 = pairs.iter().map(|p| p.t1_wall_ms).sum();
    let t2: f64 = pairs.iter().map(|p| p.t2_wall_ms).sum();
    if t1 > 0.0 && t2 * 100.0 > t1 * max_percent as f64 {
        outcome.regressions.push(format!(
            "parallel overhead: t2 walls sum to {t2:.2} ms vs {t1:.2} ms at t1 \
             ({:.2}x, limit {:.2}x)",
            t2 / t1,
            max_percent as f64 / 100.0
        ));
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_is_a_subset_with_unique_names() {
        let full = cases(false);
        let smoke = cases(true);
        assert!(smoke.len() < full.len());
        assert!(!smoke.is_empty());
        let mut keys: Vec<(String, usize)> =
            full.iter().map(|c| (c.name.clone(), c.threads)).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), full.len(), "case keys must be unique");
    }

    #[test]
    fn infeasible_family_is_thread_invariant_and_repeatable() {
        let all = cases(false);
        let quad5: Vec<&BenchCase> = all.iter().filter(|c| c.name.starts_with("quad5")).collect();
        assert_eq!(quad5.len(), 2);
        let reports: Vec<SolveReport> = quad5.iter().map(|c| run_case(c)).collect();
        assert!(reports.iter().all(|r| r.outcome == "infeasible"));
        assert!(
            reports[0].stats.nodes > 0,
            "the family must actually search"
        );
        assert_eq!(
            reports[0].stats, reports[1].stats,
            "threads 1 and 2 must explore the same tree"
        );
        let again = run_case(quad5[1]);
        assert_eq!(again.stats, reports[1].stats, "reruns must be identical");
    }

    fn stub_case(name: &str, threads: usize, wall_ms: f64) -> SolveReport {
        SolveReport {
            command: "opp".into(),
            instance: name.into(),
            outcome: "infeasible".into(),
            threads,
            decisions: 1,
            wall_ms,
            stats: Default::default(),
            events: None,
            journal_dropped: None,
            nodes_per_sec: None,
            propagation_events_per_sec: None,
        }
    }

    fn stub_report(cases: Vec<SolveReport>) -> BenchReport {
        BenchReport {
            label: "test".into(),
            smoke: false,
            cases,
        }
    }

    #[test]
    fn parity_pairs_join_on_the_family_prefix() {
        let report = stub_report(vec![
            stub_case("quad5_t1", 1, 2.0),
            stub_case("quad5_t2", 2, 3.0),
            stub_case("lonely_t1", 1, 1.0),
            stub_case("de_opp_32x6", 1, 1.0),
        ]);
        let pairs = report.parity_pairs();
        assert_eq!(pairs.len(), 1, "unpaired and unthreaded cases skipped");
        assert_eq!(pairs[0].family, "quad5");
        assert_eq!(pairs[0].overhead(), Some(1.5));
    }

    #[test]
    fn parity_gate_sums_over_pairs() {
        // Individually quad5 is 3x over, but the aggregate (5 ms vs 11 ms)
        // is fine — the gate judges the sum, not sub-millisecond blips.
        let good = stub_report(vec![
            stub_case("quad5_t1", 1, 1.0),
            stub_case("quad5_t2", 2, 3.0),
            stub_case("mixed64_t1", 1, 10.0),
            stub_case("mixed64_t2", 2, 2.0),
        ]);
        assert!(check_parallel_parity(&good, 150).passed());

        let bad = stub_report(vec![
            stub_case("quad5_t1", 1, 1.0),
            stub_case("quad5_t2", 2, 4.0),
        ]);
        let outcome = check_parallel_parity(&bad, 150);
        assert!(!outcome.passed());
        assert_eq!(outcome.regressions.len(), 1);

        // No pairs (e.g. an `--only` selection): trivially green.
        let none = stub_report(vec![stub_case("de_opp_32x6", 1, 1.0)]);
        assert!(check_parallel_parity(&none, 150).passed());
    }

    #[test]
    fn suite_has_the_deep_stealing_family() {
        let all = cases(false);
        for name in ["mixed64_t1", "mixed64_t2", "mixed56_t1", "mixed56_t2"] {
            assert!(
                all.iter().any(|c| c.name == name),
                "missing deep case {name}"
            );
        }
        let smoke = cases(true);
        assert!(
            smoke.iter().any(|c| c.name.starts_with("mixed64")),
            "smoke subset must exercise a stealing-scale pair"
        );
    }

    #[test]
    fn totals_json_records_parallel_overhead() {
        let report = stub_report(vec![
            stub_case("quad5_t1", 1, 2.0),
            stub_case("quad5_t2", 2, 1.0),
        ]);
        let doc = Json::parse(&report.to_json()).expect("valid JSON");
        let overhead = doc
            .get("totals")
            .and_then(|t| t.get("parallel_overhead"))
            .expect("totals.parallel_overhead present");
        assert_eq!(
            overhead.get("quad5").and_then(Json::as_f64),
            Some(0.5),
            "ratio = t2 wall / t1 wall"
        );
    }

    #[test]
    fn reports_serialize_and_reparse() {
        let case = &cases(true)[0];
        let report = BenchReport {
            label: "test".into(),
            smoke: true,
            cases: vec![run_case(case)],
        };
        let doc = Json::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_u64),
            Some(u64::from(TELEMETRY_SCHEMA_VERSION))
        );
        let cases_json = doc.get("cases").and_then(Json::as_array).expect("array");
        assert_eq!(
            cases_json[0].get("instance").and_then(Json::as_str),
            Some(case.name.as_str())
        );
        // The suite totals ride in the document and agree with the cases.
        let totals = doc.get("totals").expect("totals object");
        assert_eq!(totals.get("cases").and_then(Json::as_u64), Some(1));
        assert_eq!(
            totals.get("nodes").and_then(Json::as_u64),
            Some(report.cases[0].stats.nodes)
        );
        assert!(totals.get("wall_ms").and_then(Json::as_f64).is_some());
        assert!(totals.get("nodes_per_sec").is_some());
    }

    #[test]
    fn gate_flags_only_regressions_beyond_tolerance() {
        let mut report = BenchReport {
            label: "cur".into(),
            smoke: true,
            cases: vec![run_case(&cases(false)[0])],
        };
        report.cases[0].stats.nodes = 126;
        let baseline = Json::parse(&format!(
            r#"{{"cases":[{{"instance":"{}","command":"{}","threads":{},"stats":{{"nodes":100}}}}]}}"#,
            report.cases[0].instance, report.cases[0].command, report.cases[0].threads
        ))
        .expect("valid");
        let gate = check_against_baseline(&report, &baseline, 25);
        assert!(!gate.passed(), "{:?}", gate.lines);
        report.cases[0].stats.nodes = 125;
        let gate = check_against_baseline(&report, &baseline, 25);
        assert!(gate.passed(), "{:?}", gate.regressions);
        // Unknown cases are reported but never gate.
        report.cases[0].instance = "brand_new".into();
        let gate = check_against_baseline(&report, &baseline, 25);
        assert!(gate.passed());
        assert!(gate.lines[0].contains("not gated"), "{:?}", gate.lines);
    }

    #[test]
    fn zero_tolerance_gate_is_exact_and_two_sided() {
        let mut report = BenchReport {
            label: "cur".into(),
            smoke: true,
            cases: vec![run_case(&cases(false)[0])],
        };
        let baseline = Json::parse(&format!(
            r#"{{"cases":[{{"instance":"{}","command":"{}","threads":{},"stats":{{"nodes":100}}}}]}}"#,
            report.cases[0].instance, report.cases[0].command, report.cases[0].threads
        ))
        .expect("valid");
        report.cases[0].stats.nodes = 100;
        assert!(check_against_baseline(&report, &baseline, 0).passed());
        // One node more *or less* than the baseline must fail at 0%.
        report.cases[0].stats.nodes = 101;
        assert!(!check_against_baseline(&report, &baseline, 0).passed());
        report.cases[0].stats.nodes = 99;
        let gate = check_against_baseline(&report, &baseline, 0);
        assert!(!gate.passed());
        assert!(
            gate.regressions[0].contains("exact gate"),
            "{:?}",
            gate.regressions
        );
    }

    #[test]
    fn profiled_run_matches_unprofiled_node_counts() {
        let case = cases(false)
            .into_iter()
            .find(|c| c.name == "quad5_t1")
            .expect("pinned case");
        let plain = run_case_with(&case, false);
        let profiled = run_case_with(&case, true);
        assert!(plain.stats.nodes > 0);
        assert_eq!(plain.stats.nodes, profiled.stats.nodes);
        assert_eq!(plain.stats.conflicts(), profiled.stats.conflicts());
        assert_eq!(plain.outcome, profiled.outcome);
    }

    #[test]
    fn sampling_profiler_leaves_node_counts_bit_exact() {
        let case = cases(false)
            .into_iter()
            .find(|c| c.name == "quad5_t1")
            .expect("pinned case");
        let plain = run_case_with(&case, false);
        // Beacons are always on; this adds the 97 Hz observer and demands
        // the exact determinism the `--check` gate relies on.
        let sampler = recopack_core::Sampler::start(97);
        let sampled = run_case_with(&case, false);
        let profile = sampler.stop();
        assert!(plain.stats.nodes > 0);
        assert_eq!(
            plain.stats.nodes, sampled.stats.nodes,
            "sampling must not perturb the search"
        );
        assert_eq!(plain.stats.conflicts(), sampled.stats.conflicts());
        assert_eq!(plain.outcome, sampled.outcome);
        assert_eq!(profile.hz, 97);
        // Whether any tick landed inside this sub-second run is timing
        // luck, but every captured stack must be well-formed.
        for (stack, weight) in &profile.stacks {
            assert!(stack.starts_with("worker:"), "{stack}");
            assert!(*weight > 0);
        }
    }

    #[test]
    fn suite_options_filter_to_a_single_case() {
        let report = run_suite_with(&SuiteOptions {
            smoke: false,
            label: "filtered".into(),
            profile: false,
            only: Some("de_opp_32x5_refuted".into()),
        });
        assert_eq!(report.cases.len(), 1);
        assert_eq!(report.cases[0].instance, "de_opp_32x5_refuted");
    }
}
