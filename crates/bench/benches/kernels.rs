//! Microbenchmarks for the wide-word bitset kernels (DESIGN.md,
//! "Wide-word kernels").
//!
//! Each group pits a fused kernel against the multi-pass composition it
//! replaced in the hot paths: `intersect_count` vs clone-intersect-len,
//! `and_not_first` vs materializing the difference, `intersect_into` vs
//! clone-plus-intersect, and `majority_into` vs the six-pass C4 candidate
//! build. The `sanity` preamble uses a counting global allocator to prove
//! the inline-storage claim: constructing, cloning, and running kernels on
//! capacity-256 sets performs **zero** heap allocations — the property that
//! makes `PackingState` clone cheap on the work-stealing donate path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use recopack_graph::BitSet;

/// [`System`] with a global allocation counter (same spot-check idiom as
/// the cascade bench).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Deterministic pseudo-random set (xorshift; no dependency on rand's
/// distributions for a plain bit pattern).
fn random_set(capacity: usize, mut seed: u64, density_num: u64, density_den: u64) -> BitSet {
    let mut s = BitSet::new(capacity);
    for v in 0..capacity {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        if seed % density_den < density_num {
            s.insert(v);
        }
    }
    s
}

/// Inline-storage spot check: capacity ≤ 256 sets must never touch the
/// heap — not on construction, not on clone, not in any kernel.
fn sanity() {
    let a = random_set(256, 0xA5A5_A5A5, 1, 2);
    let b = random_set(256, 0x5A5A_5A5A, 1, 2);
    let c = random_set(256, 0xDEAD_BEEF, 1, 3);

    let before = ALLOCS.load(Ordering::Relaxed);
    let built = BitSet::new(256);
    let cloned = a.clone();
    let mut dst = BitSet::new(256);
    dst.intersect_into(&a, &b);
    dst.majority_into(&a, &b, &c);
    dst.intersect2_union_into(&a, &b, &c, &cloned);
    let count = a.intersect_count(&b) + a.union_count(&b);
    let first = a.and_not_first(&b);
    let delta = ALLOCS.load(Ordering::Relaxed) - before;

    assert!(built.is_empty() && !cloned.is_empty());
    assert!(count > 0 || first.is_none());
    assert_eq!(
        delta, 0,
        "inline-storage sets (capacity 256) allocated {delta} times"
    );
    println!("inline-storage spot check: 0 heap allocations at capacity 256");
}

fn bench(c: &mut Criterion) {
    sanity();
    // 192 vertices: three of four words per block live, matching the large
    // end of the solver's component graphs while exercising tail masking.
    let n = 192;
    let a = random_set(n, 17, 1, 2);
    let b = random_set(n, 23, 1, 2);
    let r3 = random_set(n, 31, 1, 3);

    let mut group = c.benchmark_group("kernels");
    group.sample_size(50);

    group.bench_function("intersect_count/fused", |bch| {
        bch.iter(|| black_box(&a).intersect_count(black_box(&b)))
    });
    group.bench_function("intersect_count/clone_intersect_len", |bch| {
        bch.iter(|| {
            let mut t = black_box(&a).clone();
            t.intersect_with(black_box(&b));
            t.len()
        })
    });

    group.bench_function("and_not_first/fused", |bch| {
        bch.iter(|| black_box(&a).and_not_first(black_box(&b)))
    });
    group.bench_function("and_not_first/materialized_difference", |bch| {
        bch.iter(|| {
            let mut t = black_box(&a).clone();
            t.difference_with(black_box(&b));
            t.first()
        })
    });

    let mut dst = BitSet::new(n);
    group.bench_function("intersect_into/fused", |bch| {
        bch.iter(|| {
            dst.intersect_into(black_box(&a), black_box(&b));
            dst.len()
        })
    });
    group.bench_function("intersect_into/clone_plus_intersect", |bch| {
        bch.iter(|| {
            let mut t = black_box(&a).clone();
            t.intersect_with(black_box(&b));
            t.len()
        })
    });

    let mut acc = BitSet::new(n);
    let mut tmp = BitSet::new(n);
    group.bench_function("c4_candidates/majority_fused", |bch| {
        bch.iter(|| {
            acc.majority_into(black_box(&a), black_box(&b), black_box(&r3));
            acc.len()
        })
    });
    group.bench_function("c4_candidates/six_pass", |bch| {
        bch.iter(|| {
            acc.copy_from(black_box(&a));
            acc.intersect_with(black_box(&b));
            tmp.copy_from(black_box(&a));
            tmp.intersect_with(black_box(&r3));
            acc.union_with(&tmp);
            tmp.copy_from(black_box(&b));
            tmp.intersect_with(black_box(&r3));
            acc.union_with(&tmp);
            acc.len()
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
