//! Table 1 — DE benchmark: minimal square chip (BMP / MinA&FindS) for
//! deadlines T = 6, 13, 14.
//!
//! Prints the reproduced table (paper chip sizes 32x32, 17x17, 16x16;
//! paper CPU times 55.76 s / 0.04 s / 0.03 s on a SUN Ultra 30), then
//! times each row's full BMP solve.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use recopack_core::Bmp;
use recopack_model::{benchmarks, Chip};

const ROWS: [(u64, u64); 3] = [(6, 32), (13, 17), (14, 16)];

fn print_reproduced_table() {
    println!("\nTable 1 (DE benchmark, BMP):");
    println!("{:>4} | {:>10} | {:>10}", "T", "paper chip", "our chip");
    for (horizon, paper) in ROWS {
        let instance = benchmarks::de(Chip::square(1), horizon).with_transitive_closure();
        let result = Bmp::new(&instance).solve().expect("feasible row");
        println!(
            "{horizon:>4} | {:>7}x{:<2} | {:>7}x{:<2}",
            paper, paper, result.side, result.side
        );
        assert_eq!(result.side, paper, "row T={horizon} must match the paper");
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_reproduced_table();
    let mut group = c.benchmark_group("table1_de_bmp");
    group.sample_size(20);
    for (horizon, _) in ROWS {
        let instance = benchmarks::de(Chip::square(1), horizon).with_transitive_closure();
        group.bench_function(format!("T={horizon}"), |b| {
            b.iter_batched(
                || instance.clone(),
                |i| Bmp::new(&i).solve().expect("feasible"),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
