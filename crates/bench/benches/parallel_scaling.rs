//! Parallel scaling of the work-stealing branch-and-bound (DESIGN.md,
//! "Adaptive work-stealing parallel search").
//!
//! The workload is an infeasibility *proof* — the whole tree must be
//! exhausted, so there is no early-exit luck and the speedup measures pure
//! tree throughput. Feasible instances are also timed to confirm the
//! first-feasible cancellation does not regress the sequential wall time.
//!
//! On a multi-core host the infeasibility proof at 4 threads should run at
//! least ~1.5x faster than at 1 thread; on a single-CPU host the thread
//! counts collapse to time-slicing and the comparison only checks overhead.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use recopack_core::{Opp, SolveOutcome, SolverConfig};
use recopack_model::{benchmarks, Chip, Instance, Task};

use recopack_bench::search_only;

fn config(threads: usize) -> SolverConfig {
    SolverConfig {
        threads,
        ..search_only()
    }
}

/// A volume-tight random instance (seed picked by sweeping for the
/// combination "propagation cannot refute at the root" + "the exhaustive
/// proof still finishes in a fraction of a second"): seven 2..3-sided tasks
/// on a 6x6 chip with the horizon at the volume bound. Infeasible with a
/// ~170k-node tree — real work for the stolen units, no early exit.
fn infeasible_workload() -> Instance {
    let mut rng = StdRng::seed_from_u64(4243);
    let mut volume = 0u64;
    let mut tasks = Vec::new();
    for k in 0..7 {
        let w = rng.gen_range(2..=3u64);
        let h = rng.gen_range(2..=3u64);
        let d = rng.gen_range(1..=3u64);
        volume += w * h * d;
        tasks.push(Task::new(format!("t{k}"), w, h, d));
    }
    Instance::builder()
        .chip(Chip::new(6, 6))
        .horizon(volume.div_ceil(36))
        .tasks(tasks)
        .build()
        .expect("valid instance")
}

/// DE at its optimal horizon: feasible, found by search alone.
fn feasible_workload() -> Instance {
    benchmarks::de(Chip::square(17), 13).with_transitive_closure()
}

fn sanity() {
    let infeasible = infeasible_workload();
    let feasible = feasible_workload();
    for threads in [1usize, 2, 4] {
        assert!(matches!(
            Opp::new(&infeasible).with_config(config(threads)).solve(),
            SolveOutcome::Infeasible(_)
        ));
        assert!(matches!(
            Opp::new(&feasible).with_config(config(threads)).solve(),
            SolveOutcome::Feasible(_)
        ));
    }
}

fn bench(c: &mut Criterion) {
    sanity();
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    for (label, instance) in [
        ("infeasibility_proof", infeasible_workload()),
        ("feasible_search", feasible_workload()),
    ] {
        for threads in [1usize, 2, 4] {
            group.bench_function(format!("{label}/threads{threads}"), |b| {
                b.iter_batched(
                    || instance.clone(),
                    |i| Opp::new(&i).with_config(config(threads)).solve(),
                    BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
