//! Baseline contrast (DESIGN.md experiment A2): packing-class search vs the
//! geometric normal-pattern branch-and-bound the paper dismisses in §1
//! ("solving a three-dimensional problem ... is hopeless if these standard
//! solution techniques are used").
//!
//! Workloads: the DE infeasibility proof at 17x17 @ T=12 (where geometry
//! must enumerate positions) and a feasible random 6-task instance.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use recopack_baseline::{BaselineOutcome, GeometricSolver};
use recopack_core::Opp;
use recopack_model::generate::{random_instance, GeneratorConfig};
use recopack_model::{benchmarks, Chip, Instance};

use recopack_bench::search_only;

fn random_6(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    random_instance(
        &GeneratorConfig {
            task_count: 6,
            max_side: 3,
            max_duration: 3,
            arc_percent: 30,
        },
        &mut rng,
    )
}

fn print_node_comparison() {
    println!("\nBaseline vs packing classes (nodes to decide):");
    let de = benchmarks::de(Chip::square(17), 12).with_transitive_closure();
    let (_, stats) = Opp::new(&de).with_config(search_only()).solve_with_stats();
    let mut base = GeometricSolver::new(&de).with_node_limit(2_000_000);
    let outcome = base.solve();
    println!(
        "  de_17x17_T12: packing classes {} nodes; geometric {} nodes ({})",
        stats.nodes,
        base.nodes(),
        match outcome {
            BaselineOutcome::Infeasible => "exhausted",
            BaselineOutcome::NodeLimit => "LIMIT HIT",
            BaselineOutcome::Feasible(_) => "BUG: feasible",
        }
    );
    println!();
}

fn bench(c: &mut Criterion) {
    print_node_comparison();
    let mut group = c.benchmark_group("baseline_vs_packing");
    group.sample_size(10);

    let de = benchmarks::de(Chip::square(17), 12).with_transitive_closure();
    group.bench_function("packing_class/de_17x17_T12", |b| {
        b.iter_batched(
            || de.clone(),
            |i| Opp::new(&i).with_config(search_only()).solve(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("geometric/de_17x17_T12", |b| {
        b.iter_batched(
            || de.clone(),
            |i| GeometricSolver::new(&i).with_node_limit(2_000_000).solve(),
            BatchSize::SmallInput,
        )
    });

    for seed in [7u64, 21] {
        let instance = random_6(seed);
        group.bench_function(format!("packing_class/random6_seed{seed}"), |b| {
            b.iter_batched(
                || instance.clone(),
                |i| Opp::new(&i).with_config(search_only()).solve(),
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("geometric/random6_seed{seed}"), |b| {
            b.iter_batched(
                || instance.clone(),
                |i| GeometricSolver::new(&i).solve(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
