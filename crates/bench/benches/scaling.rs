//! Scaling study (DESIGN.md experiment A3): solver cost on random instances
//! as the task count grows, with and without precedence constraints.
//! Supports the paper's positioning that precedence constraints *help* the
//! packing-class search (they seed the time dimension) while they hurt
//! geometric methods.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use recopack_core::Opp;
use recopack_model::generate::{random_instance, GeneratorConfig};
use recopack_model::Instance;

use recopack_bench::search_only;

fn workload(n: usize, arcs: bool) -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE + n as u64);
    (0..4)
        .map(|_| {
            random_instance(
                &GeneratorConfig {
                    task_count: n,
                    max_side: 4,
                    max_duration: 4,
                    arc_percent: if arcs { 30 } else { 0 },
                },
                &mut rng,
            )
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for n in [4usize, 6, 8] {
        for (label, arcs) in [("with_precedence", true), ("without_precedence", false)] {
            let instances = workload(n, arcs);
            group.bench_function(format!("n{n}/{label}"), |b| {
                b.iter_batched(
                    || instances.clone(),
                    |batch| {
                        for i in &batch {
                            let _ = Opp::new(i).with_config(search_only()).solve();
                        }
                    },
                    BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
