//! FixedS (2D) benchmark — the paper's §4 observation that a given schedule
//! collapses the problem "from three-dimensional to purely two-dimensional
//! ones" (the regime of the precursor papers [22, 23]).
//!
//! Workloads: packing the DE benchmark spatially under (a) the heuristic's
//! schedule on the 17×17 chip and (b) a serial schedule on the minimal chip,
//! plus the corresponding MinA&FixedS chip minimizations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use recopack_core::FixedSchedule;
use recopack_heur::{find_feasible, HeuristicConfig};
use recopack_model::{benchmarks, Chip, Instance, Schedule};

fn strip_schedule() -> (Instance, Schedule) {
    let instance = benchmarks::de(Chip::square(17), 13).with_transitive_closure();
    let placement = find_feasible(&instance, &HeuristicConfig::default())
        .expect("Table 1 row 17x17 @ 13 is feasible");
    let schedule = placement.schedule();
    (instance, schedule)
}

fn serial_schedule() -> (Instance, Schedule) {
    let instance = benchmarks::de(Chip::square(16), 17).with_transitive_closure();
    let order = instance.precedence().topological_order().expect("acyclic");
    let mut starts = vec![0u64; instance.task_count()];
    let mut clock = 0;
    for v in order {
        starts[v] = clock;
        clock += instance.task(v).duration();
    }
    (instance, Schedule::new(starts))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fixeds_2d");
    group.sample_size(20);
    for (name, (instance, schedule)) in [
        ("strip_17x17", strip_schedule()),
        ("serial_16x16", serial_schedule()),
    ] {
        let (i2, s2) = (instance.clone(), schedule.clone());
        group.bench_function(format!("feasible/{name}"), |b| {
            b.iter_batched(
                || (i2.clone(), s2.clone()),
                |(i, s)| {
                    let outcome = FixedSchedule::new(&i, &s).feasible();
                    assert!(outcome.is_feasible());
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("min_chip/{name}"), |b| {
            b.iter_batched(
                || (instance.clone(), schedule.clone()),
                |(i, s)| {
                    FixedSchedule::new(&i, &s)
                        .min_square_chip()
                        .expect("valid schedule")
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
