//! Lower-bound study (DESIGN.md experiment A4): how often stage 1 of the
//! pipeline (paper §3.1) refutes infeasible subproblems outright, and what
//! the bound battery costs.
//!
//! Prints the refutation census over every OPP decision the Table 1 / Fig. 7
//! sweeps generate, then times the battery on representative instances.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use recopack_bounds::refute;
use recopack_core::Opp;
use recopack_model::{benchmarks, Chip};

fn census() {
    println!("\nLower-bound census over the Fig. 7 decision space:");
    let mut refuted = 0u32;
    let mut feasible = 0u32;
    let mut needs_search = 0u32;
    for h in 16..=48u64 {
        for t in 2..=14u64 {
            let instance = benchmarks::de(Chip::square(h), t).with_transitive_closure();
            if refute(&instance).is_some() {
                refuted += 1;
            } else if Opp::new(&instance).solve().is_feasible() {
                feasible += 1;
            } else {
                needs_search += 1;
            }
        }
    }
    let total = refuted + feasible + needs_search;
    println!("  decisions: {total}");
    println!("  refuted by bounds alone: {refuted}");
    println!("  feasible: {feasible}");
    println!("  infeasible but needing search: {needs_search}");
    println!();
}

fn bench(c: &mut Criterion) {
    census();
    let mut group = c.benchmark_group("bounds");
    for (name, h, t) in [
        ("de_infeasible_16x16_T6", 16u64, 6u64),
        ("de_feasible_32x32_T6", 32, 6),
        ("de_tight_17x17_T13", 17, 13),
    ] {
        let instance = benchmarks::de(Chip::square(h), t).with_transitive_closure();
        group.bench_function(name, |b| {
            b.iter_batched(|| instance.clone(), |i| refute(&i), BatchSize::SmallInput)
        });
    }
    let codec = benchmarks::video_codec(Chip::square(64), 58).with_transitive_closure();
    group.bench_function("codec_infeasible_t58", |b| {
        b.iter_batched(|| codec.clone(), |i| refute(&i), BatchSize::SmallInput)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
