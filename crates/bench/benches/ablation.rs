//! Ablation study (DESIGN.md experiment A1): how much each propagation rule
//! contributes. Paper §3.3/§4.4 claim the rules trigger "cascades" of fixed
//! edges; disabling a rule never changes answers, only the tree size.
//!
//! The workload is the pure search (bounds and heuristics off) proving the
//! two interesting DE infeasibilities: 17x17 @ T=12 (needs precedence
//! reasoning) and 31x31 @ T=6 (needs C2 cliques). Prints node counts per
//! configuration, then times each.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use recopack_core::{Opp, SolveOutcome, SolverConfig};
use recopack_model::{benchmarks, Chip, Instance};

fn search_only() -> SolverConfig {
    SolverConfig {
        node_limit: Some(2_000_000),
        ..recopack_bench::search_only()
    }
}

fn variants() -> Vec<(&'static str, SolverConfig)> {
    let full = search_only();
    vec![
        ("full", full.clone()),
        (
            "no_clique_rule",
            SolverConfig {
                clique_rule: false,
                ..full.clone()
            },
        ),
        (
            "no_c4_rule",
            SolverConfig {
                c4_rule: false,
                ..full.clone()
            },
        ),
        (
            "no_orientation",
            SolverConfig {
                orientation_rules: false,
                ..full.clone()
            },
        ),
        (
            "no_must_overlap",
            SolverConfig {
                must_overlap_rule: false,
                ..full
            },
        ),
    ]
}

fn workloads() -> Vec<(&'static str, Instance)> {
    vec![
        (
            "de_17x17_T12_infeasible",
            benchmarks::de(Chip::square(17), 12).with_transitive_closure(),
        ),
        (
            "de_31x31_T6_infeasible",
            benchmarks::de(Chip::square(31), 6).with_transitive_closure(),
        ),
    ]
}

fn print_node_counts() {
    println!("\nAblation (search nodes to prove infeasibility; limit 2M):");
    println!(
        "{:<26} {:>24} {:>24}",
        "config", "de_17x17_T12", "de_31x31_T6"
    );
    for (name, config) in variants() {
        let mut cells = Vec::new();
        for (_, instance) in workloads() {
            let (outcome, stats) = Opp::new(&instance)
                .with_config(config.clone())
                .solve_with_stats();
            let cell = match outcome {
                SolveOutcome::Infeasible(_) => format!("{} nodes", stats.nodes),
                SolveOutcome::ResourceLimit(_) => "limit".to_string(),
                SolveOutcome::Feasible(_) => "BUG: feasible".to_string(),
            };
            cells.push(cell);
        }
        println!("{:<26} {:>24} {:>24}", name, cells[0], cells[1]);
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_node_counts();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for (wname, instance) in workloads() {
        for (vname, config) in variants() {
            // Ablated configurations can be orders of magnitude slower (that
            // is the experiment's point); cap them so the timing loop stays
            // bounded — the printed census above carries the node counts.
            let capped = SolverConfig {
                node_limit: Some(50_000),
                ..config
            };
            group.bench_function(format!("{wname}/{vname}"), |b| {
                b.iter_batched(
                    || (instance.clone(), capped.clone()),
                    |(i, cfg)| Opp::new(&i).with_config(cfg).solve(),
                    BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
