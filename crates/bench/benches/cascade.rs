//! Propagation-cascade throughput and the steady-state allocation spot
//! check (DESIGN.md, "Incremental propagation").
//!
//! The incremental engine promises that the per-node search path — branch,
//! cascade, backtrack — performs no heap allocations in steady state: the
//! event queue, the bitset scan buffers, the clique workspace, and the
//! chain-label trail are all owned by the worker and reused. The `sanity`
//! preamble proves it with a counting global allocator: a ~10⁵-node
//! infeasibility proof (no accepted leaves, so the leaf-realization path
//! never runs) must average well under one allocation per node once the
//! process is warm. Per-solve setup (state, bitset rows, amortized trail
//! growth) is what remains; it is independent of the node count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use recopack_core::{Opp, SolveOutcome, SolverConfig};
use recopack_model::{Chip, Instance, Task};

use recopack_bench::search_only;

/// [`System`] with a global allocation counter, installed process-wide so
/// the spot check observes every heap allocation the solver makes.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn config() -> SolverConfig {
    SolverConfig {
        threads: 1,
        ..search_only()
    }
}

/// The volume-tight infeasible workload of `parallel_scaling.rs` (seed
/// 4243): seven random tasks whose exhaustive refutation takes a ~10⁵-node
/// tree with zero accepted leaves — a pure sample of the per-node path.
fn cascade_workload() -> Instance {
    let mut rng = StdRng::seed_from_u64(4243);
    let mut volume = 0u64;
    let mut tasks = Vec::new();
    for k in 0..7 {
        let w = rng.gen_range(2..=3u64);
        let h = rng.gen_range(2..=3u64);
        let d = rng.gen_range(1..=3u64);
        volume += w * h * d;
        tasks.push(Task::new(format!("t{k}"), w, h, d));
    }
    Instance::builder()
        .chip(Chip::new(6, 6))
        .horizon(volume.div_ceil(36))
        .tasks(tasks)
        .build()
        .expect("valid instance")
}

/// The `quad6` suite case: a shorter exhaustive proof for the throughput
/// group, matching `recopack-bench`'s search-heavy family.
fn quad_workload() -> Instance {
    let mut builder = Instance::builder().chip(Chip::square(4)).horizon(2);
    for i in 0..6 {
        builder = builder.task(Task::new(format!("t{i}"), 2, 2, 2));
    }
    builder
        .build()
        .expect("structurally valid")
        .with_transitive_closure()
}

fn sanity() {
    let instance = cascade_workload();
    // Warm-up: first solve pays one-time process and capacity costs.
    let (warm, _) = Opp::new(&instance).with_config(config()).solve_with_stats();
    assert!(matches!(warm, SolveOutcome::Infeasible(_)));

    let before = ALLOCS.load(Ordering::Relaxed);
    let (outcome, stats) = Opp::new(&instance).with_config(config()).solve_with_stats();
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert!(matches!(outcome, SolveOutcome::Infeasible(_)));
    assert!(
        stats.nodes > 50_000,
        "workload too small to amortize setup: {} nodes",
        stats.nodes
    );
    assert_eq!(stats.leaves, 0, "the proof must never hit realization");

    let per_node = delta as f64 / stats.nodes as f64;
    println!(
        "steady-state allocations: {delta} over {} nodes ({per_node:.4} per node)",
        stats.nodes
    );
    assert!(
        per_node < 0.1,
        "per-node search path allocates: {per_node:.4} allocations per node"
    );
}

fn bench(c: &mut Criterion) {
    sanity();
    let mut group = c.benchmark_group("cascade");
    group.sample_size(10);
    for (label, instance) in [
        ("infeasibility_proof", cascade_workload()),
        ("quad6", quad_workload()),
    ] {
        group.bench_function(format!("{label}/threads1"), |b| {
            b.iter_batched(
                || instance.clone(),
                |i| Opp::new(&i).with_config(config()).solve(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
