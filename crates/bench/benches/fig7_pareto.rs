//! Figure 7 — Pareto-optimal chip-area / processing-time points of the DE
//! benchmark, (a) with the partial order (solid) and (b) without (dashed).
//!
//! Prints both reproduced series, then times each full front computation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use recopack_core::{pareto_front, SolverConfig};
use recopack_model::{benchmarks, Chip};

fn print_reproduced_figure() {
    let config = SolverConfig::default();
    let with = benchmarks::de(Chip::square(1), 1).with_transitive_closure();
    let without = with.clone().without_precedence();
    let solid = pareto_front(&with, &config).expect("no limits");
    let dashed = pareto_front(&without, &config).expect("no limits");
    println!("\nFig. 7 (DE benchmark Pareto fronts):");
    println!("  (a) solid, with partial order:");
    for p in &solid {
        println!("      h = {:>2}  t = {:>2}", p.side, p.makespan);
    }
    println!("  (b) dashed, without partial order:");
    for p in &dashed {
        println!("      h = {:>2}  t = {:>2}", p.side, p.makespan);
    }
    let pairs = |f: &[recopack_core::ParetoPoint]| {
        f.iter().map(|p| (p.side, p.makespan)).collect::<Vec<_>>()
    };
    assert_eq!(pairs(&solid), vec![(16, 14), (17, 13), (32, 6)]);
    assert_eq!(pairs(&dashed), vec![(16, 13), (17, 12), (32, 4), (48, 2)]);
    println!();
}

fn bench(c: &mut Criterion) {
    print_reproduced_figure();
    let mut group = c.benchmark_group("fig7_pareto");
    group.sample_size(10);
    let with = benchmarks::de(Chip::square(1), 1).with_transitive_closure();
    group.bench_function("solid_with_precedence", |b| {
        b.iter_batched(
            || with.clone(),
            |i| pareto_front(&i, &SolverConfig::default()).expect("no limits"),
            BatchSize::SmallInput,
        )
    });
    let without = with.clone().without_precedence();
    group.bench_function("dashed_without_precedence", |b| {
        b.iter_batched(
            || without.clone(),
            |i| pareto_front(&i, &SolverConfig::default()).expect("no limits"),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
