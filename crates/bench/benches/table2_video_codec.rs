//! Table 2 — video codec (H.261): the single Pareto point 64x64 @ t = 59
//! (paper CPU time 24.87 s on a SUN Ultra 30).
//!
//! Prints the reproduced table, then times the full Pareto enumeration and
//! the two boundary decision problems (63x63 infeasible, latency 58
//! infeasible).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use recopack_core::{pareto_front, Opp, SolverConfig};
use recopack_model::{benchmarks, Chip};

fn print_reproduced_table() {
    let instance = benchmarks::video_codec(Chip::square(1), 1).with_transitive_closure();
    let front = pareto_front(&instance, &SolverConfig::default()).expect("no limits");
    println!("\nTable 2 (video codec, BMP/SPP):");
    println!("{:>2} | {:>3} | container", "#", "t");
    for (k, p) in front.iter().enumerate() {
        println!("{:>2} | {:>3} | {}x{}", k + 1, p.makespan, p.side, p.side);
    }
    let pairs: Vec<(u64, u64)> = front.iter().map(|p| (p.side, p.makespan)).collect();
    assert_eq!(pairs, vec![(64, 59)], "Table 2 must match the paper");
    println!();
}

fn bench(c: &mut Criterion) {
    print_reproduced_table();
    let mut group = c.benchmark_group("table2_video_codec");
    group.sample_size(20);
    let instance = benchmarks::video_codec(Chip::square(1), 1).with_transitive_closure();
    group.bench_function("pareto_front", |b| {
        b.iter_batched(
            || instance.clone(),
            |i| pareto_front(&i, &SolverConfig::default()).expect("no limits"),
            BatchSize::SmallInput,
        )
    });
    let too_small = benchmarks::video_codec(Chip::square(63), 1000).with_transitive_closure();
    group.bench_function("refute_63x63", |b| {
        b.iter_batched(
            || too_small.clone(),
            |i| {
                assert!(!Opp::new(&i).solve().is_feasible());
            },
            BatchSize::SmallInput,
        )
    });
    let too_fast = benchmarks::video_codec(Chip::square(64), 58).with_transitive_closure();
    group.bench_function("refute_t58", |b| {
        b.iter_batched(
            || too_fast.clone(),
            |i| {
                assert!(!Opp::new(&i).solve().is_feasible());
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
