//! Dual feasible functions, implemented in exact integer arithmetic.
//!
//! A *dual feasible function* (DFF) is `f : [0, 1] → [0, 1]` such that for
//! any finite multiset with `Σ xᵢ ≤ 1` also `Σ f(xᵢ) ≤ 1`. Fekete & Schepers
//! (IPCO'98) showed that applying DFFs `f₁, f₂, f₃` to the three normalized
//! side lengths of every box preserves packability — so if the *rescaled*
//! volumes exceed the container, the original instance is infeasible. With
//! well-chosen step functions this dominates the plain volume bound.
//!
//! To keep refutations exact we never touch floating point: a DFF is
//! represented by an integer map `v : {0..W} → {0..D}` with denominator `D`,
//! meaning `f(w / W) = v(w) / D`.
//!
//! Implemented families (paper's references [8, 10]):
//!
//! * identity — `f(x) = x`, giving the plain volume bound;
//! * `u^(ε)` — the threshold function: sizes above `1 − ε` count as the
//!   whole container, sizes below `ε` count as nothing;
//! * `f^(k)` — the staircase rounding of Fekete–Schepers.

use recopack_model::{Dim, Instance};

use crate::Refutation;

/// An integer-exact dual feasible function for one dimension of capacity `W`:
/// size `w` maps to `values[w] / denominator` of the container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegerDff {
    name: String,
    values: Vec<u64>,
    denominator: u64,
}

impl IntegerDff {
    /// The identity DFF on capacity `capacity`.
    pub fn identity(capacity: u64) -> Self {
        Self {
            name: "id".to_string(),
            values: (0..=capacity).collect(),
            denominator: capacity,
        }
    }

    /// The threshold DFF `u^(ε)` with `ε = eps_num / capacity`:
    /// `f(x) = 1` for `x > 1 − ε`, `x` for `ε ≤ x ≤ 1 − ε`, `0` for `x < ε`.
    ///
    /// Requires `0 < eps_num` and `2 * eps_num <= capacity` (otherwise the
    /// function is not dual feasible).
    ///
    /// # Panics
    ///
    /// Panics if `eps_num == 0` or `2 * eps_num > capacity`.
    pub fn threshold(capacity: u64, eps_num: u64) -> Self {
        assert!(eps_num > 0, "epsilon must be positive");
        assert!(2 * eps_num <= capacity, "epsilon must be at most 1/2");
        let values = (0..=capacity)
            .map(|w| {
                if w > capacity - eps_num {
                    capacity
                } else if w >= eps_num {
                    w
                } else {
                    0
                }
            })
            .collect();
        Self {
            name: format!("u^({eps_num}/{capacity})"),
            values,
            denominator: capacity,
        }
    }

    /// The staircase DFF `f^(k)` of Fekete–Schepers:
    /// `f(x) = x` when `(k+1)·x` is integral, else `⌊(k+1)·x⌋ / k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn staircase(capacity: u64, k: u64) -> Self {
        assert!(k > 0, "k must be positive");
        // Common denominator k * capacity:
        //   integral case: value = k * w
        //   else:          value = capacity * floor((k+1) w / capacity)
        let values = (0..=capacity)
            .map(|w| {
                if ((k + 1) * w).is_multiple_of(capacity) {
                    k * w
                } else {
                    capacity * (((k + 1) * w) / capacity)
                }
            })
            .collect();
        Self {
            name: format!("f^({k})"),
            values,
            denominator: k * capacity,
        }
    }

    /// Name identifying the family and parameter.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The transformed size of `w`, in units of `1 / denominator()`.
    ///
    /// # Panics
    ///
    /// Panics if `w` exceeds the capacity the DFF was built for.
    pub fn value(&self, w: u64) -> u64 {
        self.values[w as usize]
    }

    /// The denominator of the representation.
    pub fn denominator(&self) -> u64 {
        self.denominator
    }

    /// Verifies dual feasibility exhaustively for all integer multisets that
    /// fit — used by tests and available for debugging custom DFFs. Checks
    /// the equivalent, finite condition: for every multiset of sizes summing
    /// to ≤ capacity, transformed sizes sum to ≤ denominator. By convexity
    /// it suffices to check greedy worst cases; we do full DFS over
    /// nonincreasing size sequences (small capacities only).
    pub fn is_dual_feasible(&self) -> bool {
        let cap = (self.values.len() - 1) as u64;
        // DFS over multisets with nonincreasing sizes.
        fn dfs(dff: &IntegerDff, max_size: u64, left: u64, acc: u64) -> bool {
            if acc > dff.denominator {
                return false;
            }
            for s in (1..=max_size.min(left)).rev() {
                if !dfs(dff, s, left - s, acc + dff.value(s)) {
                    return false;
                }
            }
            true
        }
        dfs(self, cap, cap, 0)
    }
}

/// All stock DFFs for a dimension of capacity `capacity`, given the distinct
/// task sizes occurring in that dimension (thresholds are only useful at
/// occurring sizes).
pub fn stock_dffs(capacity: u64, sizes: &[u64]) -> Vec<IntegerDff> {
    let mut dffs = vec![IntegerDff::identity(capacity)];
    let mut eps: Vec<u64> = sizes
        .iter()
        .copied()
        .filter(|&s| s > 0 && 2 * s <= capacity)
        .collect();
    eps.sort_unstable();
    eps.dedup();
    for e in eps {
        dffs.push(IntegerDff::threshold(capacity, e));
    }
    for k in 1..=3 {
        dffs.push(IntegerDff::staircase(capacity, k));
    }
    dffs
}

/// Tries combinations of stock DFFs over the three dimensions; returns a
/// refutation if any combination pushes the rescaled volume over capacity.
///
/// The combination space is capped (identity in at least one dimension is
/// always included) to keep this a fast filter; the search behind it is
/// exact regardless.
pub fn refute_dff(instance: &Instance) -> Option<Refutation> {
    let container = instance.container();
    if container.contains(&0) {
        return None; // degenerate containers are handled by the fit bound
    }
    let per_dim: Vec<Vec<IntegerDff>> = Dim::ALL
        .iter()
        .map(|&d| stock_dffs(container[d.index()], &instance.sizes(d)))
        .collect();
    for fx in &per_dim[0] {
        for fy in &per_dim[1] {
            for ft in &per_dim[2] {
                let capacity = u128::from(fx.denominator())
                    * u128::from(fy.denominator())
                    * u128::from(ft.denominator());
                let total: u128 = instance
                    .tasks()
                    .iter()
                    .map(|t| {
                        u128::from(fx.value(t.width()))
                            * u128::from(fy.value(t.height()))
                            * u128::from(ft.value(t.duration()))
                    })
                    .sum();
                if total > capacity {
                    return Some(Refutation::Dff {
                        description: format!(
                            "({}, {}, {}): rescaled volume {total} > {capacity}",
                            fx.name(),
                            fy.name(),
                            ft.name()
                        ),
                    });
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use recopack_model::{Chip, Task};

    #[test]
    fn identity_is_dual_feasible() {
        assert!(IntegerDff::identity(12).is_dual_feasible());
    }

    #[test]
    fn thresholds_are_dual_feasible() {
        for cap in [7u64, 10, 12] {
            for e in 1..=cap / 2 {
                assert!(
                    IntegerDff::threshold(cap, e).is_dual_feasible(),
                    "u^({e}/{cap})"
                );
            }
        }
    }

    #[test]
    fn staircases_are_dual_feasible() {
        for cap in [6u64, 9, 11] {
            for k in 1..=4 {
                assert!(
                    IntegerDff::staircase(cap, k).is_dual_feasible(),
                    "f^({k}) cap {cap}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most 1/2")]
    fn oversized_epsilon_rejected() {
        IntegerDff::threshold(10, 6);
    }

    #[test]
    fn threshold_beats_plain_volume() {
        // Two 6x6 blocks cannot coexist on a 10x10 chip (6+6 > 10 in both
        // spatial dimensions), yet total volume 88 <= 100 passes the plain
        // volume bound. The staircase f^(1) maps 6 -> 10 and 4 -> 0 per
        // spatial dimension, giving rescaled volume 200 > 100.
        let i = Instance::builder()
            .chip(Chip::square(10))
            .horizon(1)
            .task(Task::new("a", 6, 6, 1))
            .task(Task::new("b", 6, 6, 1))
            .task(Task::new("c", 4, 4, 1))
            .build()
            .expect("valid");
        assert_eq!(crate::volume::refute_volume(&i), None);
        let refutation = refute_dff(&i);
        assert!(
            matches!(refutation, Some(Refutation::Dff { .. })),
            "{refutation:?}"
        );
    }

    #[test]
    fn feasible_paper_row_not_refuted() {
        use recopack_model::benchmarks::de;
        let i = de(Chip::square(16), 14);
        assert_eq!(refute_dff(&i), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn stock_dffs_are_dual_feasible(cap in 2u64..11) {
            let sizes: Vec<u64> = (1..=cap).collect();
            for dff in stock_dffs(cap, &sizes) {
                prop_assert!(dff.is_dual_feasible(), "{} cap {}", dff.name(), cap);
            }
        }

        #[test]
        fn dff_never_refutes_a_packable_witness(seed in 0u64..60) {
            use rand::{rngs::StdRng, SeedableRng};
            use recopack_model::generate::{random_feasible_instance, GeneratorConfig};
            let mut rng = StdRng::seed_from_u64(seed);
            let (i, _) = random_feasible_instance(&GeneratorConfig::default(), &mut rng);
            prop_assert_eq!(refute_dff(&i), None);
        }
    }
}
