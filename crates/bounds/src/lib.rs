//! Lower bounds for 3D orthogonal packing with precedence constraints.
//!
//! Stage 1 of the paper's solver pipeline (§3.1): *"try to disprove the
//! existence of a packing by fast and good classes of lower bounds on the
//! necessary size."* The bounds here are the ones the paper builds on
//! (Fekete–Schepers, "New classes of lower bounds for bin packing problems",
//! IPCO'98) plus precedence-aware bounds enabled by the dependency DAG:
//!
//! * [`volume`] — elementary fit and volume arguments;
//! * [`dff`] — **dual feasible functions**: rescalings of box sizes that
//!   preserve feasibility, so a volume violation after rescaling refutes the
//!   original instance. Implemented exactly, in integer arithmetic;
//! * [`precedence`] — critical-path and time-window "energy" arguments.
//!
//! Every refutation is returned with a machine-checkable reason
//! ([`Refutation`]); "no refutation" never implies feasibility.
//!
//! # Example
//!
//! ```
//! use recopack_bounds::{refute, Refutation};
//! use recopack_model::{Chip, Instance, Task};
//!
//! // Two full-chip tasks cannot share 3 cycles: volume 2*16 > 16*1... use
//! // durations: 2 tasks x (4x4x2) = 64 cells-cycles > 4*4*3 = 48.
//! let instance = Instance::builder()
//!     .chip(Chip::square(4))
//!     .horizon(3)
//!     .task(Task::new("a", 4, 4, 2))
//!     .task(Task::new("b", 4, 4, 2))
//!     .build()?;
//! assert!(matches!(refute(&instance), Some(Refutation::Volume { .. })));
//! # Ok::<(), recopack_model::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dff;
pub mod precedence;
pub mod volume;

use recopack_model::{Dim, Instance};

/// The family of lower-bound argument behind a [`Refutation`] — the solver's
/// telemetry layer records *which* bound refuted an instance so the benchmark
/// reports can break refutations down per rule.
///
/// [`BoundKind::name`] is the stable identifier used in the JSON telemetry
/// schema; renaming a variant's string is a schema change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundKind {
    /// A single task exceeds the container ([`Refutation::TaskTooLarge`]).
    Fit,
    /// The plain volume argument ([`Refutation::Volume`]).
    Volume,
    /// A dual-feasible-function rescaling ([`Refutation::Dff`]).
    Dff,
    /// The duration-weighted critical path ([`Refutation::CriticalPath`]).
    CriticalPath,
    /// An empty ASAP/ALAP start window ([`Refutation::EmptyWindow`]).
    Window,
    /// The time-point energy argument ([`Refutation::Energy`]).
    Energy,
}

impl BoundKind {
    /// Every kind, in the order the bound battery tries them.
    pub const ALL: [BoundKind; 6] = [
        BoundKind::Fit,
        BoundKind::Volume,
        BoundKind::Dff,
        BoundKind::CriticalPath,
        BoundKind::Window,
        BoundKind::Energy,
    ];

    /// Stable snake_case name used in telemetry JSON.
    pub const fn name(self) -> &'static str {
        match self {
            BoundKind::Fit => "fit",
            BoundKind::Volume => "volume",
            BoundKind::Dff => "dff",
            BoundKind::CriticalPath => "critical_path",
            BoundKind::Window => "window",
            BoundKind::Energy => "energy",
        }
    }
}

impl std::fmt::Display for BoundKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A reason an instance provably has no feasible packing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Refutation {
    /// A single task exceeds the container in some dimension.
    TaskTooLarge {
        /// Task id.
        task: usize,
        /// Violated dimension.
        dim: Dim,
    },
    /// Total task volume exceeds container volume.
    Volume {
        /// Total task volume.
        total: u64,
        /// Container volume.
        capacity: u64,
    },
    /// A dual-feasible-function rescaling pushes the volume over capacity.
    Dff {
        /// Human-readable description of the DFF combination.
        description: String,
    },
    /// The duration-weighted critical path exceeds the horizon.
    CriticalPath {
        /// Critical path length.
        length: u64,
        /// Horizon.
        horizon: u64,
    },
    /// Some task's ASAP start exceeds its ALAP start under the horizon.
    EmptyWindow {
        /// Task id.
        task: usize,
    },
    /// At some time point, tasks that must all be running need more cells
    /// than the chip has.
    Energy {
        /// The time point.
        time: u64,
        /// Total area of tasks forced to run at `time`.
        area: u64,
        /// Chip area.
        capacity: u64,
    },
}

impl Refutation {
    /// The lower-bound family that produced this refutation.
    pub const fn kind(&self) -> BoundKind {
        match self {
            Self::TaskTooLarge { .. } => BoundKind::Fit,
            Self::Volume { .. } => BoundKind::Volume,
            Self::Dff { .. } => BoundKind::Dff,
            Self::CriticalPath { .. } => BoundKind::CriticalPath,
            Self::EmptyWindow { .. } => BoundKind::Window,
            Self::Energy { .. } => BoundKind::Energy,
        }
    }
}

impl std::fmt::Display for Refutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TaskTooLarge { task, dim } => {
                write!(
                    f,
                    "task {task} does not fit the container in dimension {dim}"
                )
            }
            Self::Volume { total, capacity } => {
                write!(
                    f,
                    "total volume {total} exceeds container volume {capacity}"
                )
            }
            Self::Dff { description } => write!(f, "DFF bound violated: {description}"),
            Self::CriticalPath { length, horizon } => {
                write!(f, "critical path {length} exceeds horizon {horizon}")
            }
            Self::EmptyWindow { task } => {
                write!(
                    f,
                    "task {task} has no feasible start window under the horizon"
                )
            }
            Self::Energy {
                time,
                area,
                capacity,
            } => write!(
                f,
                "at time {time}, forced tasks need {area} cells but the chip has {capacity}"
            ),
        }
    }
}

/// Tries all bounds in increasing cost order; returns the first refutation.
///
/// Order: single-task fit, critical path, empty windows, plain volume,
/// energy at forced time points, DFF sweep.
pub fn refute(instance: &Instance) -> Option<Refutation> {
    volume::refute_fit(instance)
        .or_else(|| precedence::refute_critical_path(instance))
        .or_else(|| precedence::refute_windows(instance))
        .or_else(|| volume::refute_volume(instance))
        .or_else(|| precedence::refute_energy(instance))
        .or_else(|| dff::refute_dff(instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use recopack_model::{Chip, Task};

    #[test]
    fn feasible_instance_is_not_refuted() {
        let i = Instance::builder()
            .chip(Chip::square(4))
            .horizon(4)
            .task(Task::new("a", 4, 4, 2))
            .task(Task::new("b", 4, 4, 2))
            .build()
            .expect("valid");
        assert_eq!(refute(&i), None);
    }

    #[test]
    fn oversized_task_refuted_first() {
        let i = Instance::builder()
            .chip(Chip::square(4))
            .horizon(4)
            .task(Task::new("wide", 5, 1, 1))
            .build()
            .expect("valid");
        assert_eq!(
            refute(&i),
            Some(Refutation::TaskTooLarge {
                task: 0,
                dim: Dim::X
            })
        );
    }

    #[test]
    fn refutation_kinds_have_stable_names() {
        let r = Refutation::Volume {
            total: 2,
            capacity: 1,
        };
        assert_eq!(r.kind(), BoundKind::Volume);
        assert_eq!(r.kind().to_string(), "volume");
        let names: Vec<&str> = BoundKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            ["fit", "volume", "dff", "critical_path", "window", "energy"]
        );
    }

    #[test]
    fn critical_path_refutation() {
        let i = Instance::builder()
            .chip(Chip::square(8))
            .horizon(3)
            .task(Task::new("a", 1, 1, 2))
            .task(Task::new("b", 1, 1, 2))
            .precedence("a", "b")
            .build()
            .expect("valid");
        assert_eq!(
            refute(&i),
            Some(Refutation::CriticalPath {
                length: 4,
                horizon: 3
            })
        );
    }
}
