//! Elementary fit and volume bounds.

use recopack_model::{Dim, Instance};

use crate::Refutation;

/// Refutes instances where some single task exceeds the container in a
/// dimension (tasks are not rotatable).
pub fn refute_fit(instance: &Instance) -> Option<Refutation> {
    let container = instance.container();
    for (i, t) in instance.tasks().iter().enumerate() {
        for d in Dim::ALL {
            if t.size(d) > container[d.index()] {
                return Some(Refutation::TaskTooLarge { task: i, dim: d });
            }
        }
    }
    None
}

/// Refutes instances whose total task volume exceeds the container volume.
pub fn refute_volume(instance: &Instance) -> Option<Refutation> {
    let total = instance.total_volume();
    let capacity: u64 = instance.container().iter().product();
    (total > capacity).then_some(Refutation::Volume { total, capacity })
}

#[cfg(test)]
mod tests {
    use super::*;
    use recopack_model::{Chip, Task};

    fn base() -> recopack_model::InstanceBuilder {
        Instance::builder().chip(Chip::new(4, 3)).horizon(2)
    }

    #[test]
    fn fit_checks_each_dimension() {
        let wide = base().task(Task::new("w", 5, 1, 1)).build().expect("valid");
        assert!(matches!(
            refute_fit(&wide),
            Some(Refutation::TaskTooLarge { dim: Dim::X, .. })
        ));
        let tall = base().task(Task::new("h", 1, 4, 1)).build().expect("valid");
        assert!(matches!(
            refute_fit(&tall),
            Some(Refutation::TaskTooLarge { dim: Dim::Y, .. })
        ));
        let long = base().task(Task::new("t", 1, 1, 3)).build().expect("valid");
        assert!(matches!(
            refute_fit(&long),
            Some(Refutation::TaskTooLarge { dim: Dim::Time, .. })
        ));
        let fits = base()
            .task(Task::new("ok", 4, 3, 2))
            .build()
            .expect("valid");
        assert_eq!(refute_fit(&fits), None);
    }

    #[test]
    fn volume_boundary_is_exact() {
        // Capacity 4*3*2 = 24; exactly 24 is fine, 25 is not.
        let exact = base()
            .task(Task::new("a", 4, 3, 1))
            .task(Task::new("b", 4, 3, 1))
            .build()
            .expect("valid");
        assert_eq!(refute_volume(&exact), None);
        let over = base()
            .task(Task::new("a", 4, 3, 2))
            .task(Task::new("b", 1, 1, 1))
            .build()
            .expect("valid");
        assert_eq!(
            refute_volume(&over),
            Some(Refutation::Volume {
                total: 25,
                capacity: 24
            })
        );
    }
}
