//! Precedence-aware lower bounds.
//!
//! The dependency DAG gives bounds no pure packing argument sees:
//!
//! * the duration-weighted **critical path** is a floor on any makespan;
//! * ASAP/ALAP **start windows** under the horizon can be empty;
//! * at any time `τ`, the tasks whose windows force them to be running at
//!   `τ` must simultaneously fit on the chip — an **energy** (area) bound.

use recopack_model::{Dim, Instance};

use crate::Refutation;

/// Refutes instances whose critical path exceeds the horizon.
pub fn refute_critical_path(instance: &Instance) -> Option<Refutation> {
    let length = instance.critical_path_length();
    let horizon = instance.horizon();
    (length > horizon).then_some(Refutation::CriticalPath { length, horizon })
}

/// Per-task ASAP/ALAP start windows under the instance horizon.
///
/// Returns `(asap, alap)` per task; `alap` is `None` when the task cannot
/// meet the horizon at all.
pub fn start_windows(instance: &Instance) -> (Vec<u64>, Vec<Option<u64>>) {
    let durations = instance.sizes(Dim::Time);
    let asap = instance
        .precedence()
        .earliest_starts(&durations)
        .expect("instances are acyclic");
    let alap = instance
        .precedence()
        .latest_starts(&durations, instance.horizon())
        .expect("instances are acyclic");
    (asap, alap)
}

/// Refutes instances where some task's ASAP start exceeds its ALAP start.
pub fn refute_windows(instance: &Instance) -> Option<Refutation> {
    let (asap, alap) = start_windows(instance);
    for (task, (&a, l)) in asap.iter().zip(&alap).enumerate() {
        match l {
            None => return Some(Refutation::EmptyWindow { task }),
            Some(l) if a > *l => return Some(Refutation::EmptyWindow { task }),
            _ => {}
        }
    }
    None
}

/// Refutes instances where, at some time point, the tasks forced to be
/// running need more cells than the chip has.
///
/// A task with window `[asap, alap]` and duration `d` is certainly running
/// throughout `[alap, asap + d)` (when that interval is nonempty). Checking
/// all `alap` values as candidate time points suffices, because the forced
/// set only changes there.
pub fn refute_energy(instance: &Instance) -> Option<Refutation> {
    let (asap, alap) = start_windows(instance);
    let n = instance.task_count();
    let capacity = instance.chip().area();
    let mut candidates: Vec<u64> = Vec::with_capacity(n);
    for l in alap.iter().flatten() {
        candidates.push(*l);
    }
    candidates.sort_unstable();
    candidates.dedup();
    for &tau in &candidates {
        let mut area = 0u64;
        for i in 0..n {
            let Some(l) = alap[i] else { continue };
            let d = instance.task(i).duration();
            // forced to run at tau iff l <= tau < asap + d
            if l <= tau && tau < asap[i] + d {
                area += instance.task(i).area();
            }
        }
        if area > capacity {
            return Some(Refutation::Energy {
                time: tau,
                area,
                capacity,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use recopack_model::{benchmarks, Chip, Instance, Task};

    #[test]
    fn critical_path_exact_boundary() {
        let build = |horizon| {
            Instance::builder()
                .chip(Chip::square(4))
                .horizon(horizon)
                .task(Task::new("a", 1, 1, 3))
                .task(Task::new("b", 1, 1, 3))
                .precedence("a", "b")
                .build()
                .expect("valid")
        };
        assert_eq!(refute_critical_path(&build(6)), None);
        assert_eq!(
            refute_critical_path(&build(5)),
            Some(Refutation::CriticalPath {
                length: 6,
                horizon: 5
            })
        );
    }

    #[test]
    fn windows_catch_deep_chains() {
        // Chain of 3 unit tasks, horizon 2: critical path (3) catches it,
        // but windows alone must too.
        let i = Instance::builder()
            .chip(Chip::square(2))
            .horizon(2)
            .task(Task::new("a", 1, 1, 1))
            .task(Task::new("b", 1, 1, 1))
            .task(Task::new("c", 1, 1, 1))
            .precedence("a", "b")
            .precedence("b", "c")
            .build()
            .expect("valid");
        assert!(refute_windows(&i).is_some());
    }

    #[test]
    fn energy_bound_sees_forced_concurrency() {
        // Two 3x3 tasks lasting 2 cycles with horizon 2 on a 4x4 chip:
        // both are forced to run at time 1 (windows are [0,0]), needing
        // 18 > 16 cells. Volume: 36 > 32 would catch it too, so shrink one
        // task to keep volume under capacity but areas overlapping:
        // 3x3x2 + 3x3x2 on 4x4x3: volume 36 <= 48, windows [0,1] each; at
        // tau = 1 both forced (alap 1 <= 1 < 0+2): area 18 > 16.
        let i = Instance::builder()
            .chip(Chip::square(4))
            .horizon(3)
            .task(Task::new("a", 3, 3, 2))
            .task(Task::new("b", 3, 3, 2))
            .build()
            .expect("valid");
        assert_eq!(crate::volume::refute_volume(&i), None);
        assert_eq!(
            refute_energy(&i),
            Some(Refutation::Energy {
                time: 1,
                area: 18,
                capacity: 16
            })
        );
    }

    #[test]
    fn energy_not_triggered_with_slack() {
        let i = Instance::builder()
            .chip(Chip::square(4))
            .horizon(4)
            .task(Task::new("a", 3, 3, 2))
            .task(Task::new("b", 3, 3, 2))
            .build()
            .expect("valid");
        assert_eq!(refute_energy(&i), None);
    }

    #[test]
    fn de_at_tight_horizons() {
        // DE on 32x32 at horizon 5 < critical path 6: refuted.
        let i = benchmarks::de(Chip::square(32), 5).with_transitive_closure();
        assert!(refute_critical_path(&i).is_some());
        // At horizon 6 no precedence bound fires (it is feasible).
        let ok = benchmarks::de(Chip::square(32), 6).with_transitive_closure();
        assert_eq!(refute_critical_path(&ok), None);
        assert_eq!(refute_windows(&ok), None);
        assert_eq!(refute_energy(&ok), None);
    }

    #[test]
    fn de_small_chip_tight_horizon_refuted_by_energy() {
        // On a 16x16 chip at horizon 6, the four chain multiplications v1,
        // v2 -> v3 and v6 -> v7 squeeze: windows force full-chip MULs to
        // overlap. Expect an energy refutation.
        let i = benchmarks::de(Chip::square(16), 6).with_transitive_closure();
        assert!(refute_energy(&i).is_some());
    }
}
