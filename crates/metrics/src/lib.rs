//! Hand-rolled metrics primitives for the `recopack serve` daemon.
//!
//! The workspace is dependency-free by policy (the build environment has no
//! crates.io access), so this crate provides the minimal instrument set a
//! long-running solver service needs, built purely on `std` atomics:
//!
//! * [`Counter`] — a monotone `u64` count (jobs accepted, events seen);
//! * [`Gauge`] — a signed instantaneous value (queue depth, in-flight jobs);
//! * [`Histogram`] — fixed cumulative buckets plus sum and count
//!   (solve latency, nodes per job);
//! * [`Registry`] — the collection surface that renders every registered
//!   instrument in the Prometheus *text exposition format* version 0.0.4,
//!   the wire format scraped from `GET /metrics`.
//!
//! # Concurrency
//!
//! Every instrument is internally atomic and every handle is cheaply
//! cloneable (an `Arc` around the atomics), so solver workers and HTTP
//! connection threads update the same instrument without locks. Histogram
//! observations touch one bucket, the sum, and the count with relaxed
//! atomics: scrapes may observe a count momentarily ahead of the sum, which
//! Prometheus tolerates by design (scrapes are sampled, not transactional).
//!
//! # Cardinality policy
//!
//! Labels are fixed at registration time: a labelled instrument is
//! registered once per label combination from a *closed* enumeration (for
//! recopack: the four job kinds). Nothing derived from request payloads —
//! job ids, instance names, addresses — may become a label value; unbounded
//! label sets are how metric backends die. The registry therefore exposes no
//! dynamic label API at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
///
/// Cloning shares the underlying value. Counters must never decrease;
/// there is deliberately no `dec` or `set`.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value that can go up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the value outright.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed, strictly increasing bucket upper bounds.
///
/// Buckets are *cumulative* in the exposition (each `le` bucket counts all
/// observations at or below its bound, and `+Inf` equals the total count),
/// matching what Prometheus expects from a `histogram` type. The sum is
/// tracked in micro-units (`observe` takes an `f64` and stores
/// `round(v * 1e6)`) so it can live in an atomic integer without losing the
/// precision that millisecond-scale latencies need.
#[derive(Clone, Debug)]
pub struct Histogram {
    bounds: Arc<[f64]>,
    /// One slot per bound plus the final `+Inf` slot.
    buckets: Arc<[AtomicU64]>,
    sum_micros: Arc<AtomicU64>,
    count: Arc<AtomicU64>,
}

impl Histogram {
    /// Creates a histogram with the given bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, not strictly increasing, or contains a
    /// non-finite value — bucket layout is a programming decision made at
    /// startup, not a runtime input.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        for pair in bounds.windows(2) {
            assert!(
                pair[0] < pair[1],
                "histogram bounds must be strictly increasing"
            );
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (+Inf is implicit)"
        );
        let buckets: Vec<AtomicU64> = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: bounds.into(),
            buckets: buckets.into(),
            sum_micros: Arc::new(AtomicU64::new(0)),
            count: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Records one observation.
    ///
    /// Negative or non-finite observations are clamped to zero: the
    /// instrument measures durations and sizes, for which such values can
    /// only be clock or accounting glitches.
    pub fn observe(&self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        let slot = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum_micros
            .fetch_add((v * 1e6).round() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Cumulative count at or below each bound, ending with the `+Inf`
    /// total. The returned vector has `bounds.len() + 1` entries.
    pub fn cumulative_buckets(&self) -> Vec<u64> {
        let mut total = 0;
        self.buckets
            .iter()
            .map(|b| {
                total += b.load(Ordering::Relaxed);
                total
            })
            .collect()
    }

    /// The configured bucket upper bounds (without `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }
}

/// The kind of instrument behind a registered metric, for exposition.
#[derive(Clone, Debug)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// One registered time series: a metric family member with fixed labels.
#[derive(Clone, Debug)]
struct Series {
    /// Metric family name, e.g. `recopack_jobs_total`.
    name: String,
    /// Pre-rendered label pairs, e.g. `[("kind", "opp")]`. Empty for
    /// unlabelled series.
    labels: Vec<(String, String)>,
    help: String,
    instrument: Instrument,
}

/// A collection of instruments that renders itself in the Prometheus text
/// exposition format v0.0.4.
///
/// Registration order is exposition order; series of the same family must
/// be registered contiguously so the single `# HELP`/`# TYPE` header covers
/// them (the registry enforces that the family's type and help text agree).
#[derive(Clone, Debug, Default)]
pub struct Registry {
    series: Arc<Mutex<Vec<Series>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers and returns an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let c = Counter::new();
        self.push(name, &[], help, Instrument::Counter(c.clone()));
        c
    }

    /// Registers and returns a counter with fixed labels.
    ///
    /// Call once per member of a closed label enumeration; see the crate
    /// docs for the cardinality policy.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        let c = Counter::new();
        self.push(name, labels, help, Instrument::Counter(c.clone()));
        c
    }

    /// Registers and returns an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let g = Gauge::new();
        self.push(name, &[], help, Instrument::Gauge(g.clone()));
        g
    }

    /// Registers and returns a gauge with fixed labels.
    ///
    /// Call once per member of a closed label enumeration; see the crate
    /// docs for the cardinality policy.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        let g = Gauge::new();
        self.push(name, labels, help, Instrument::Gauge(g.clone()));
        g
    }

    /// Registers and returns an unlabelled histogram over `bounds`.
    pub fn histogram(&self, name: &str, bounds: &[f64], help: &str) -> Histogram {
        let h = Histogram::new(bounds);
        self.push(name, &[], help, Instrument::Histogram(h.clone()));
        h
    }

    fn push(&self, name: &str, labels: &[(&str, &str)], help: &str, instrument: Instrument) {
        assert!(
            is_valid_metric_name(name),
            "invalid metric name {name:?}: must match [a-zA-Z_:][a-zA-Z0-9_:]*"
        );
        for (k, _) in labels {
            assert!(
                is_valid_label_name(k),
                "invalid label name {k:?}: must match [a-zA-Z_][a-zA-Z0-9_]*"
            );
        }
        let mut series = self.series.lock().expect("metrics registry poisoned");
        for existing in series.iter() {
            if existing.name == name {
                assert!(
                    kind_str(&existing.instrument) == kind_str(&instrument)
                        && existing.help == help,
                    "metric family {name:?} re-registered with a different type or help"
                );
                let same_labels = existing.labels.len() == labels.len()
                    && existing
                        .labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), (lk, lv))| k == lk && v == lv);
                assert!(
                    !same_labels,
                    "metric family {name:?} re-registered with identical labels"
                );
            }
        }
        series.push(Series {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            help: help.to_string(),
            instrument,
        });
    }

    /// Renders every registered series in the text exposition format
    /// v0.0.4: `# HELP` and `# TYPE` per family, one sample line per
    /// series (histograms expand to `_bucket`, `_sum`, `_count`).
    pub fn render(&self) -> String {
        let series = self.series.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        let mut last_family = "";
        for s in series.iter() {
            if s.name != last_family {
                out.push_str("# HELP ");
                out.push_str(&s.name);
                out.push(' ');
                out.push_str(&escape_help(&s.help));
                out.push('\n');
                out.push_str("# TYPE ");
                out.push_str(&s.name);
                out.push(' ');
                out.push_str(kind_str(&s.instrument));
                out.push('\n');
                last_family = &s.name;
            }
            match &s.instrument {
                Instrument::Counter(c) => {
                    sample(&mut out, &s.name, &s.labels, None, &c.get().to_string());
                }
                Instrument::Gauge(g) => {
                    sample(&mut out, &s.name, &s.labels, None, &g.get().to_string());
                }
                Instrument::Histogram(h) => {
                    let cumulative = h.cumulative_buckets();
                    for (i, bound) in h.bounds().iter().enumerate() {
                        let mut labels = s.labels.clone();
                        labels.push(("le".to_string(), format_f64(*bound)));
                        sample(
                            &mut out,
                            &s.name,
                            &labels,
                            Some("_bucket"),
                            &cumulative[i].to_string(),
                        );
                    }
                    let mut labels = s.labels.clone();
                    labels.push(("le".to_string(), "+Inf".to_string()));
                    sample(
                        &mut out,
                        &s.name,
                        &labels,
                        Some("_bucket"),
                        &cumulative[h.bounds().len()].to_string(),
                    );
                    sample(
                        &mut out,
                        &s.name,
                        &s.labels,
                        Some("_sum"),
                        &format_f64(h.sum()),
                    );
                    sample(
                        &mut out,
                        &s.name,
                        &s.labels,
                        Some("_count"),
                        &h.count().to_string(),
                    );
                }
            }
        }
        out
    }
}

/// Appends one exposition sample line.
fn sample(
    out: &mut String,
    family: &str,
    labels: &[(String, String)],
    suffix: Option<&str>,
    value: &str,
) {
    out.push_str(family);
    if let Some(suffix) = suffix {
        out.push_str(suffix);
    }
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn kind_str(i: &Instrument) -> &'static str {
    match i {
        Instrument::Counter(_) => "counter",
        Instrument::Gauge(_) => "gauge",
        Instrument::Histogram(_) => "histogram",
    }
}

/// Renders an `f64` the way Prometheus clients do: integral values without
/// a fraction, everything else via the shortest roundtrip `Display`.
fn format_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// `# HELP` text escapes backslash and newline.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Label values escape backslash, double quote, and newline.
fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotone_and_shared() {
        let c = Counter::new();
        let clone = c.clone();
        c.inc();
        clone.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::new(&[0.1, 1.0, 10.0]);
        h.observe(0.05); // slot 0
        h.observe(0.5); // slot 1
        h.observe(0.1); // boundary: le is inclusive, slot 0
        h.observe(100.0); // overflow, +Inf only
        assert_eq!(h.cumulative_buckets(), vec![2, 3, 3, 4]);
        assert_eq!(h.count(), 4);
        let sum = h.sum();
        assert!((sum - 100.65).abs() < 1e-9, "sum was {sum}");
    }

    #[test]
    fn histogram_clamps_garbage_observations() {
        let h = Histogram::new(&[1.0]);
        h.observe(-3.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.cumulative_buckets(), vec![3, 3]);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[1.0, 1.0]);
    }

    #[test]
    fn registry_renders_text_exposition() {
        let r = Registry::new();
        let jobs = r.counter_with("jobs_total", &[("kind", "opp")], "Jobs by kind.");
        let depth = r.gauge("queue_depth", "Jobs waiting.");
        let latency = r.histogram("latency_seconds", &[0.5, 2.0], "Solve latency.");
        jobs.add(3);
        depth.set(2);
        latency.observe(0.25);
        latency.observe(5.0);
        let text = r.render();
        let expected = "\
# HELP jobs_total Jobs by kind.
# TYPE jobs_total counter
jobs_total{kind=\"opp\"} 3
# HELP queue_depth Jobs waiting.
# TYPE queue_depth gauge
queue_depth 2
# HELP latency_seconds Solve latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le=\"0.5\"} 1
latency_seconds_bucket{le=\"2\"} 1
latency_seconds_bucket{le=\"+Inf\"} 2
latency_seconds_sum 5.25
latency_seconds_count 2
";
        assert_eq!(text, expected);
    }

    #[test]
    fn labelled_gauges_render_and_share_one_header() {
        let r = Registry::new();
        let expand = r.gauge_with(
            "phase_occupancy",
            &[("phase", "expand")],
            "Sampled phase occupancy.",
        );
        let idle = r.gauge_with(
            "phase_occupancy",
            &[("phase", "idle")],
            "Sampled phase occupancy.",
        );
        expand.set(62);
        idle.set(38);
        let text = r.render();
        assert_eq!(text.matches("# HELP phase_occupancy").count(), 1);
        assert_eq!(text.matches("# TYPE phase_occupancy gauge").count(), 1);
        assert!(text.contains("phase_occupancy{phase=\"expand\"} 62"));
        assert!(text.contains("phase_occupancy{phase=\"idle\"} 38"));
    }

    #[test]
    fn families_share_one_header() {
        let r = Registry::new();
        r.counter_with("jobs_total", &[("kind", "opp")], "Jobs by kind.")
            .inc();
        r.counter_with("jobs_total", &[("kind", "bmp")], "Jobs by kind.");
        let text = r.render();
        assert_eq!(text.matches("# HELP jobs_total").count(), 1);
        assert_eq!(text.matches("# TYPE jobs_total").count(), 1);
        assert!(text.contains("jobs_total{kind=\"opp\"} 1"));
        assert!(text.contains("jobs_total{kind=\"bmp\"} 0"));
    }

    #[test]
    #[should_panic(expected = "different type or help")]
    fn registry_rejects_family_type_conflicts() {
        let r = Registry::new();
        let _ = r.counter("thing", "A thing.");
        let _ = r.gauge("thing", "A thing.");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        let c = r.counter_with("weird_total", &[("why", "a\"b\\c\nd")], "Escapes.");
        c.inc();
        assert!(r
            .render()
            .contains("weird_total{why=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn registry_rejects_bad_names() {
        let r = Registry::new();
        let _ = r.counter("0bad", "Starts with a digit.");
    }

    #[test]
    fn zero_observation_histogram_renders_all_buckets_at_zero() {
        let r = Registry::new();
        let _ = r.histogram("idle_seconds", &[0.5, 2.0], "Never observed.");
        let text = r.render();
        let expected = "\
# HELP idle_seconds Never observed.
# TYPE idle_seconds histogram
idle_seconds_bucket{le=\"0.5\"} 0
idle_seconds_bucket{le=\"2\"} 0
idle_seconds_bucket{le=\"+Inf\"} 0
idle_seconds_sum 0
idle_seconds_count 0
";
        assert_eq!(text, expected, "a scraper must see the empty family");
    }

    #[test]
    fn observations_beyond_every_bound_land_only_in_the_inf_bucket() {
        let h = Histogram::new(&[0.1, 1.0]);
        h.observe(50.0);
        h.observe(99.5);
        assert_eq!(h.cumulative_buckets(), vec![0, 0, 2]);
        assert_eq!(h.count(), 2);
        assert!((h.sum() - 149.5).abs() < 1e-9, "sum was {}", h.sum());

        let r = Registry::new();
        let slow = r.histogram("slow_seconds", &[0.1, 1.0], "All overflow.");
        slow.observe(50.0);
        slow.observe(99.5);
        let text = r.render();
        assert!(text.contains("slow_seconds_bucket{le=\"0.1\"} 0"), "{text}");
        assert!(text.contains("slow_seconds_bucket{le=\"1\"} 0"), "{text}");
        assert!(
            text.contains("slow_seconds_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("slow_seconds_count 2"), "{text}");
    }

    #[test]
    fn label_escaping_covers_each_special_character_alone_and_stacked() {
        let r = Registry::new();
        r.counter_with("esc_total", &[("v", "back\\slash")], "Escapes.")
            .inc();
        r.counter_with("esc_total", &[("v", "quo\"te")], "Escapes.")
            .inc();
        r.counter_with("esc_total", &[("v", "new\nline")], "Escapes.")
            .inc();
        // A value that is nothing but escapes, including the already-
        // escaped-looking sequence `\\n` (backslash then n, not newline).
        r.counter_with("esc_total", &[("v", "\\\n\"\\n")], "Escapes.")
            .inc();
        let text = r.render();
        assert!(text.contains("esc_total{v=\"back\\\\slash\"} 1"), "{text}");
        assert!(text.contains("esc_total{v=\"quo\\\"te\"} 1"), "{text}");
        assert!(text.contains("esc_total{v=\"new\\nline\"} 1"), "{text}");
        assert!(
            text.contains("esc_total{v=\"\\\\\\n\\\"\\\\n\"} 1"),
            "stacked escapes must round-trip: {text}"
        );
        // Exposition lines must stay one-per-sample: the newline in the
        // label value is escaped, never literal.
        assert!(
            text.lines().all(|l| l.contains(' ')),
            "every line is `name value`: {text}"
        );
    }
}
