//! Event-driven, precedence-aware list scheduling.

use std::collections::BTreeSet;

use recopack_model::{Dim, Instance, Placement};

use crate::grid::SpatialGrid;

/// Deterministic priority rules for [`list_schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Longest duration-weighted tail in the precedence DAG first
    /// (critical-path scheduling).
    CriticalPath,
    /// Largest spatial footprint first.
    Area,
    /// Longest duration first.
    Duration,
    /// Largest space-time volume first.
    Volume,
}

impl Priority {
    /// The task order this rule induces on `instance` (highest priority
    /// first; ties broken by task id for determinism).
    pub fn order(self, instance: &Instance) -> Vec<usize> {
        let n = instance.task_count();
        let key: Vec<u64> = match self {
            Priority::CriticalPath => {
                let durations = instance.sizes(Dim::Time);
                let order = instance
                    .precedence()
                    .topological_order()
                    .expect("instances are acyclic");
                let mut tail = vec![0u64; n];
                for &u in order.iter().rev() {
                    let succ_best = instance
                        .precedence()
                        .successors(u)
                        .iter()
                        .map(|v| tail[v])
                        .max()
                        .unwrap_or(0);
                    tail[u] = durations[u] + succ_best;
                }
                tail
            }
            Priority::Area => instance.tasks().iter().map(|t| t.area()).collect(),
            Priority::Duration => instance.tasks().iter().map(|t| t.duration()).collect(),
            Priority::Volume => instance.tasks().iter().map(|t| t.volume()).collect(),
        };
        let mut ids: Vec<usize> = (0..n).collect();
        ids.sort_by_key(|&i| (std::cmp::Reverse(key[i]), i));
        ids
    }
}

/// Runs the event-driven list scheduler with the given task priority order
/// (earlier in `order` = tried first).
///
/// At each event time (0 and every task completion), finished tasks release
/// their cells, newly ready tasks (all predecessors finished) are placed
/// bottom-left if space permits, and time advances to the next completion.
/// Succeeds iff everything is placed within the horizon; the result is
/// verified before being returned, so a `Some` is always a true packing.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..task_count`.
pub fn list_schedule(instance: &Instance, order: &[usize]) -> Option<Placement> {
    let n = instance.task_count();
    assert_eq!(order.len(), n, "order must cover every task");
    if n == 0 {
        let p = Placement::new(vec![], instance);
        return Some(p);
    }
    let chip = instance.chip();
    let horizon = instance.horizon();
    // Tasks that don't fit the chip can never be placed.
    for t in instance.tasks() {
        if t.width() > chip.width() || t.height() > chip.height() || t.duration() > horizon {
            return None;
        }
    }
    let mut rank = vec![0usize; n];
    for (r, &t) in order.iter().enumerate() {
        rank[t] = r;
    }

    let mut grid = SpatialGrid::new(chip.width(), chip.height());
    let mut placed: Vec<Option<[u64; 3]>> = vec![None; n];
    let mut finish: Vec<u64> = vec![0; n];
    let mut unfinished_preds: Vec<usize> = (0..n)
        .map(|v| instance.precedence().predecessors(v).len())
        .collect();
    let mut running: Vec<usize> = Vec::new();
    let mut events: BTreeSet<u64> = BTreeSet::new();
    events.insert(0);
    let mut remaining = n;

    while let Some(now) = events.pop_first() {
        if now >= horizon {
            break;
        }
        // Release everything finishing at or before `now`.
        running.retain(|&t| {
            if finish[t] <= now {
                let [x, y, _] = placed[t].expect("running tasks are placed");
                grid.release(x, y, instance.task(t).width(), instance.task(t).height());
                for v in instance.precedence().successors(t).iter() {
                    unfinished_preds[v] -= 1;
                }
                false
            } else {
                true
            }
        });
        // Ready tasks in priority order.
        let mut ready: Vec<usize> = (0..n)
            .filter(|&t| placed[t].is_none() && unfinished_preds[t] == 0)
            .collect();
        ready.sort_by_key(|&t| rank[t]);
        for t in ready {
            let task = instance.task(t);
            if now + task.duration() > horizon {
                continue;
            }
            if let Some((x, y)) = grid.find_position(task.width(), task.height()) {
                grid.occupy(x, y, task.width(), task.height());
                placed[t] = Some([x, y, now]);
                finish[t] = now + task.duration();
                events.insert(finish[t]);
                running.push(t);
                remaining -= 1;
            }
        }
        if remaining == 0 {
            break;
        }
    }

    if remaining > 0 {
        return None;
    }
    let origins: Vec<[u64; 3]> = placed
        .into_iter()
        .map(|p| p.expect("all tasks placed"))
        .collect();
    let placement = Placement::new(origins, instance);
    // The scheduler's invariants should make this infallible; verify anyway
    // so a bug here can never masquerade as a feasible packing.
    placement.verify(instance).is_ok().then_some(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recopack_model::{Chip, Task};

    fn chain_instance(horizon: u64) -> Instance {
        Instance::builder()
            .chip(Chip::square(2))
            .horizon(horizon)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .precedence("a", "b")
            .build()
            .expect("valid")
    }

    #[test]
    fn serial_chain_is_scheduled_exactly() {
        let i = chain_instance(4);
        let p = list_schedule(&i, &[0, 1]).expect("fits exactly");
        assert_eq!(p.verify(&i), Ok(()));
        assert_eq!(p.makespan(), 4);
    }

    #[test]
    fn chain_fails_below_critical_path() {
        let i = chain_instance(3);
        assert_eq!(list_schedule(&i, &[0, 1]), None);
    }

    #[test]
    fn parallel_tasks_share_the_chip() {
        let i = Instance::builder()
            .chip(Chip::new(4, 2))
            .horizon(2)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .build()
            .expect("valid");
        let p = list_schedule(&i, &[0, 1]).expect("side by side");
        assert_eq!(p.makespan(), 2);
    }

    #[test]
    fn oversized_task_fails_immediately() {
        let i = Instance::builder()
            .chip(Chip::square(2))
            .horizon(2)
            .task(Task::new("big", 3, 1, 1))
            .build()
            .expect("valid");
        assert_eq!(list_schedule(&i, &[0]), None);
    }

    #[test]
    fn empty_instance_schedules_trivially() {
        let i = Instance::builder()
            .chip(Chip::square(2))
            .horizon(1)
            .build()
            .expect("valid");
        assert!(list_schedule(&i, &[]).is_some());
    }

    #[test]
    fn priority_orders_are_permutations() {
        let i = chain_instance(4);
        for rule in [
            Priority::CriticalPath,
            Priority::Area,
            Priority::Duration,
            Priority::Volume,
        ] {
            let mut order = rule.order(&i);
            order.sort_unstable();
            assert_eq!(order, vec![0, 1]);
        }
    }

    #[test]
    fn critical_path_priority_prefers_long_tails() {
        let i = Instance::builder()
            .chip(Chip::square(4))
            .horizon(10)
            .task(Task::new("short", 1, 1, 1))
            .task(Task::new("head", 1, 1, 2))
            .task(Task::new("tail", 1, 1, 5))
            .precedence("head", "tail")
            .build()
            .expect("valid");
        let order = Priority::CriticalPath.order(&i);
        assert_eq!(order[0], 1, "head of the long chain goes first");
    }
}
