//! 2D occupancy grid: the chip's free-space manager.

/// Cell-level occupancy of a `width × height` chip, with bottom-left
/// placement queries.
///
/// Chips in this domain are small (the paper's largest is 64×64), so a flat
/// boolean grid with a per-row skip optimization is both simple and fast.
///
/// # Example
///
/// ```
/// use recopack_heur::grid::SpatialGrid;
///
/// let mut g = SpatialGrid::new(4, 4);
/// let at = g.find_position(2, 2).expect("empty grid fits");
/// assert_eq!(at, (0, 0));
/// g.occupy(0, 0, 2, 2);
/// assert_eq!(g.find_position(2, 2), Some((2, 0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpatialGrid {
    width: u64,
    height: u64,
    cells: Vec<bool>,
}

impl SpatialGrid {
    /// Creates an empty grid.
    pub fn new(width: u64, height: u64) -> Self {
        Self {
            width,
            height,
            cells: vec![false; (width * height) as usize],
        }
    }

    /// Grid width in cells.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Grid height in cells.
    pub fn height(&self) -> u64 {
        self.height
    }

    fn idx(&self, x: u64, y: u64) -> usize {
        (y * self.width + x) as usize
    }

    /// Whether the rectangle at `(x, y)` of size `w × h` lies inside the
    /// grid and is fully free.
    pub fn fits(&self, x: u64, y: u64, w: u64, h: u64) -> bool {
        if x + w > self.width || y + h > self.height {
            return false;
        }
        for yy in y..y + h {
            for xx in x..x + w {
                if self.cells[self.idx(xx, yy)] {
                    return false;
                }
            }
        }
        true
    }

    /// Bottom-left position for a `w × h` rectangle: smallest `y`, then
    /// smallest `x`, at which it fits. `None` when nothing fits.
    pub fn find_position(&self, w: u64, h: u64) -> Option<(u64, u64)> {
        if w == 0 || h == 0 || w > self.width || h > self.height {
            return None;
        }
        for y in 0..=self.height - h {
            let mut x = 0;
            while x + w <= self.width {
                // Find the first occupied cell in the candidate rectangle,
                // scanning the rows; skip past it on failure.
                match self.first_blocker(x, y, w, h) {
                    None => return Some((x, y)),
                    Some(bx) => x = bx + 1,
                }
            }
        }
        None
    }

    fn first_blocker(&self, x: u64, y: u64, w: u64, h: u64) -> Option<u64> {
        let mut rightmost: Option<u64> = None;
        for yy in y..y + h {
            for xx in x..x + w {
                if self.cells[self.idx(xx, yy)] {
                    rightmost = Some(rightmost.map_or(xx, |r: u64| r.max(xx)));
                    break;
                }
            }
        }
        rightmost
    }

    /// Marks the rectangle as occupied.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any cell is already occupied or out of
    /// range — double-booking is a caller bug.
    pub fn occupy(&mut self, x: u64, y: u64, w: u64, h: u64) {
        for yy in y..y + h {
            for xx in x..x + w {
                let i = self.idx(xx, yy);
                debug_assert!(!self.cells[i], "cell ({xx},{yy}) double-booked");
                self.cells[i] = true;
            }
        }
    }

    /// Frees the rectangle.
    pub fn release(&mut self, x: u64, y: u64, w: u64, h: u64) {
        for yy in y..y + h {
            for xx in x..x + w {
                let i = self.idx(xx, yy);
                self.cells[i] = false;
            }
        }
    }

    /// Number of occupied cells.
    pub fn occupied_cells(&self) -> u64 {
        self.cells.iter().filter(|&&c| c).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_left_prefers_low_y_then_low_x() {
        let mut g = SpatialGrid::new(6, 4);
        g.occupy(0, 0, 3, 1);
        assert_eq!(g.find_position(3, 1), Some((3, 0)));
        g.occupy(3, 0, 3, 1);
        assert_eq!(g.find_position(3, 1), Some((0, 1)));
    }

    #[test]
    fn oversized_requests_fail() {
        let g = SpatialGrid::new(4, 4);
        assert_eq!(g.find_position(5, 1), None);
        assert_eq!(g.find_position(1, 5), None);
        assert_eq!(g.find_position(0, 1), None);
    }

    #[test]
    fn release_restores_space() {
        let mut g = SpatialGrid::new(4, 4);
        g.occupy(0, 0, 4, 4);
        assert_eq!(g.find_position(1, 1), None);
        g.release(0, 0, 4, 4);
        assert_eq!(g.find_position(4, 4), Some((0, 0)));
        assert_eq!(g.occupied_cells(), 0);
    }

    #[test]
    fn fits_respects_partial_occupancy() {
        let mut g = SpatialGrid::new(4, 4);
        g.occupy(1, 1, 2, 2);
        assert!(g.fits(0, 0, 1, 4));
        assert!(!g.fits(0, 0, 2, 2));
        assert!(g.fits(3, 0, 1, 4));
        assert!(!g.fits(3, 3, 2, 1));
    }

    #[test]
    fn skip_optimization_matches_naive_scan() {
        // Irregular occupancy; compare find_position with a naive scan.
        let mut g = SpatialGrid::new(8, 8);
        for (x, y, w, h) in [(0, 0, 3, 2), (5, 0, 3, 3), (2, 4, 4, 2)] {
            g.occupy(x, y, w, h);
        }
        for (w, h) in [(1, 1), (2, 2), (3, 3), (5, 2), (8, 1), (2, 6)] {
            let naive = (0..=8 - h)
                .flat_map(|y| (0..=8 - w).map(move |x| (x, y)))
                .find(|&(x, y)| g.fits(x, y, w, h));
            assert_eq!(g.find_position(w, h), naive, "size {w}x{h}");
        }
    }
}
