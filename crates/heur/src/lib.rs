//! Fast feasible-packing heuristics.
//!
//! Stage 2 of the paper's solver pipeline (§3.1): *"in case of failure, try
//! to find a feasible packing by using fast heuristics."* A heuristic
//! success short-circuits the exact search; a failure proves nothing.
//!
//! The workhorse is an event-driven, precedence-aware **list scheduler**
//! ([`list`]): tasks become ready when all predecessors have finished,
//! ready tasks are placed bottom-left on a 2D occupancy grid ([`grid`]) in
//! priority order, and time advances through completion events. Several
//! priority rules plus seeded random restarts are bundled in
//! [`find_feasible`].
//!
//! # Example
//!
//! ```
//! use recopack_heur::{find_feasible, HeuristicConfig};
//! use recopack_model::{benchmarks, Chip};
//!
//! // The DE benchmark fits a 32x32 chip in 6 cycles (paper Table 1).
//! let instance = benchmarks::de(Chip::square(32), 6).with_transitive_closure();
//! if let Some(placement) = find_feasible(&instance, &HeuristicConfig::default()) {
//!     assert!(placement.verify(&instance).is_ok());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod list;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use recopack_model::{Instance, Placement};

pub use list::{list_schedule, Priority};

/// Configuration for [`find_feasible`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeuristicConfig {
    /// Number of random-priority restarts after the deterministic rules.
    pub random_restarts: u32,
    /// RNG seed for the restarts.
    pub seed: u64,
}

impl Default for HeuristicConfig {
    fn default() -> Self {
        Self {
            random_restarts: 24,
            seed: 0x5EED,
        }
    }
}

/// Tries the deterministic priority rules, then seeded random restarts;
/// returns the first placement that verifies.
///
/// Every returned placement has passed
/// [`Placement::verify`](recopack_model::Placement::verify) — the heuristic
/// cannot produce an unsound "feasible".
pub fn find_feasible(instance: &Instance, config: &HeuristicConfig) -> Option<Placement> {
    for rule in [
        Priority::CriticalPath,
        Priority::Area,
        Priority::Duration,
        Priority::Volume,
    ] {
        if let Some(p) = list_schedule(instance, &rule.order(instance)) {
            return Some(p);
        }
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..instance.task_count()).collect();
    for _ in 0..config.random_restarts {
        order.shuffle(&mut rng);
        if let Some(p) = list_schedule(instance, &order) {
            return Some(p);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use recopack_model::{benchmarks, generate, Chip};

    #[test]
    fn finds_paper_row_32x32_at_6() {
        let i = benchmarks::de(Chip::square(32), 6).with_transitive_closure();
        let p = find_feasible(&i, &HeuristicConfig::default()).expect("feasible per Table 1");
        assert!(p.verify(&i).is_ok());
        assert!(p.makespan() <= 6);
    }

    #[test]
    fn finds_serial_16x16_at_14() {
        let i = benchmarks::de(Chip::square(16), 14).with_transitive_closure();
        let p = find_feasible(&i, &HeuristicConfig::default()).expect("feasible per Table 1");
        assert!(p.verify(&i).is_ok());
    }

    #[test]
    fn video_codec_at_calibrated_point() {
        let i = benchmarks::video_codec(Chip::square(64), 59).with_transitive_closure();
        let p = find_feasible(&i, &HeuristicConfig::default()).expect("feasible per Table 2");
        assert!(p.verify(&i).is_ok());
        assert!(p.makespan() <= 59);
    }

    #[test]
    fn never_claims_feasible_falsely_on_random_instances() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..30 {
            let i = generate::random_instance(&generate::GeneratorConfig::default(), &mut rng);
            if let Some(p) = find_feasible(&i, &HeuristicConfig::default()) {
                assert_eq!(p.verify(&i), Ok(()));
            }
        }
    }

    #[test]
    fn finds_witnessed_feasible_instances_often() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let mut found = 0;
        for _ in 0..20 {
            let (i, _) =
                generate::random_feasible_instance(&generate::GeneratorConfig::default(), &mut rng);
            if find_feasible(&i, &HeuristicConfig::default()).is_some() {
                found += 1;
            }
        }
        // Witness containers are generous; the heuristic should almost
        // always succeed. Demand a clear majority to catch regressions.
        assert!(found >= 15, "only {found}/20 witnessed instances solved");
    }
}
