//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the criterion 0.5 API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`] /
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::finish`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Measurements are simple wall-clock statistics (min / mean /
//! max over the sampled iterations) printed to stdout — no plots, no
//! saved baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped; accepted for API compatibility, the
/// harness always re-runs the setup per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

fn run_benchmark<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters: sample_size as u64,
    };
    f(&mut bencher);
    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let min = samples.iter().min().expect("nonempty");
    let max = samples.iter().max().expect("nonempty");
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{id:<40} min {} | mean {} | max {} ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Per-benchmark measurement driver.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters: u64,
}

impl Bencher {
    /// Times `f` once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up iteration outside the timing loop.
        black_box(f());
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro. Ignores
/// harness-style CLI arguments (`--bench`, filters) that cargo passes.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run_the_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("iter", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
        let mut batched = 0u32;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || 21u64,
                |x| {
                    batched += 1;
                    x * 2
                },
                BatchSize::SmallInput,
            )
        });
        assert_eq!(batched, 4);
        group.finish();
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_duration(Duration::from_micros(15)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(15)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
