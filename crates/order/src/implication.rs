//! Gallai path-implication classes of a comparability graph.
//!
//! Paper §4.3 partitions the comparability edges into *path implication
//! classes*: two edges are in the same class iff a sequence of path
//! implications (rule D1) links their orientations, so orienting one edge of
//! a class orients the entire class. These are Gallai's Γ-classes (up to
//! edge direction); the solver uses them for analysis and tests, and the
//! structure explains why a single precedence arc can cascade through the
//! whole time dimension.

use recopack_graph::{DenseGraph, PairIndex};

/// Disjoint-set forest over pair indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Computes the path-implication classes of the edges of `g`.
///
/// Each class is returned as a list of edges `(u, v)` with `u < v`. Two edges
/// land in one class iff they share an endpoint `a` whose other endpoints are
/// non-adjacent (one D1 step), or are linked by a chain of such steps.
///
/// # Example
///
/// ```
/// use recopack_graph::DenseGraph;
/// use recopack_order::implication::path_implication_classes;
///
/// // P3 0-1-2: both edges share endpoint 1 and {0,2} is missing -> one class.
/// let g = DenseGraph::from_edges(3, [(0, 1), (1, 2)]);
/// assert_eq!(path_implication_classes(&g).len(), 1);
///
/// // Triangle: every pair of edges shares an endpoint whose far ends are
/// // adjacent, so no D1 step applies -> three singleton classes.
/// let t = DenseGraph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
/// assert_eq!(path_implication_classes(&t).len(), 3);
/// ```
pub fn path_implication_classes(g: &DenseGraph) -> Vec<Vec<(usize, usize)>> {
    let n = g.vertex_count();
    let idx = PairIndex::new(n);
    let mut uf = UnionFind::new(idx.pair_count());
    for a in 0..n {
        let nbrs: Vec<usize> = g.neighbors(a).iter().collect();
        for (i, &b) in nbrs.iter().enumerate() {
            for &c in &nbrs[..i] {
                if !g.has_edge(b, c) {
                    uf.union(idx.index(a, b), idx.index(a, c));
                }
            }
        }
    }
    let mut by_root: std::collections::BTreeMap<usize, Vec<(usize, usize)>> =
        std::collections::BTreeMap::new();
    for (u, v) in g.edges() {
        let root = uf.find(idx.index(u, v));
        by_root.entry(root).or_default().push((u, v));
    }
    by_root.into_values().collect()
}

/// The number of path-implication classes of `g`.
///
/// For a comparability graph this is the number of independent orientation
/// decisions available to the D1 rule alone.
pub fn implication_class_count(g: &DenseGraph) -> usize {
    path_implication_classes(g).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_partition_the_edges() {
        let g = DenseGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let classes = path_implication_classes(&g);
        let total: usize = classes.iter().map(|c| c.len()).sum();
        assert_eq!(total, g.edge_count());
    }

    #[test]
    fn p4_is_a_single_class() {
        let g = DenseGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(implication_class_count(&g), 1);
    }

    #[test]
    fn c4_is_a_single_class() {
        // In C4, adjacent edges share an endpoint whose far ends are
        // non-adjacent (the diagonal), so D1 chains all four edges together.
        let g = DenseGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(implication_class_count(&g), 1);
    }

    #[test]
    fn disjoint_edges_are_separate_classes() {
        let g = DenseGraph::from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(implication_class_count(&g), 2);
    }

    #[test]
    fn paper_figure_5_shape_single_class() {
        // Fig. 5: comparability edges {v1,v2},{v2,v3},{v3,v4} with component
        // edges {v1,v3},{v2,v4} (absent here): a path v1-v2-v3-v4 where the
        // middle edge shares endpoints with both others and the skipped
        // pairs are non-adjacent -> all three comparability edges in one
        // path implication class (as the paper states).
        let g = DenseGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let classes = path_implication_classes(&g);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].len(), 3);
    }

    #[test]
    fn empty_graph_has_no_classes() {
        assert!(path_implication_classes(&DenseGraph::new(4)).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::orientation::transitively_orient_extending;
    use proptest::prelude::*;

    fn random_graph(n: usize, density: f64, seed: u64) -> DenseGraph {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(41);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut g = DenseGraph::new(n);
        for v in 1..n {
            for u in 0..v {
                if next() < density {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Gallai: orienting one edge of a path implication class forces the
        /// whole class — flipping the seed flips every class member.
        #[test]
        fn class_members_flip_with_their_seed(n in 2usize..8, seed in 0u64..120) {
            let g = random_graph(n, 0.5, seed);
            prop_assume!(g.edge_count() >= 1);
            let classes = path_implication_classes(&g);
            let class = &classes[0];
            let &(u, v) = &class[0];
            let Ok(fwd) = transitively_orient_extending(&g, [(u, v)]) else {
                return Ok(()); // not a comparability graph
            };
            let rev = transitively_orient_extending(&g, [(v, u)])
                .expect("comparability graphs orient both ways");
            for &(a, b) in class {
                let f = fwd.has_arc(a, b);
                let r = rev.has_arc(a, b);
                prop_assert_ne!(f, r, "class edge ({}, {}) did not flip", a, b);
            }
        }

        /// Classes are invariant under vertex order: recomputing on the same
        /// graph yields the same partition (determinism).
        #[test]
        fn classes_are_deterministic(n in 1usize..9, seed in 0u64..80) {
            let g = random_graph(n, 0.4, seed);
            prop_assert_eq!(
                path_implication_classes(&g),
                path_implication_classes(&g)
            );
        }
    }
}
