//! Interval graphs and coordinate realization of interval orders.
//!
//! Condition **C1** of packing classes demands every component graph be an
//! interval graph. We recognize interval graphs through Gilmore–Hoffman:
//! a graph is interval iff it is chordal **and** its complement is a
//! comparability graph. Both halves double as solver machinery — chordality
//! is checked by Lex-BFS, and the transitive orientation of the complement
//! *is* the interval order from which coordinates are laid out.

use recopack_graph::{chordal, DenseGraph};

use crate::orientation::{self, OrientError};
use crate::Dag;

/// Whether `g` is an interval graph.
///
/// Uses the Gilmore–Hoffman characterization: chordal and co-comparability.
///
/// # Example
///
/// ```
/// use recopack_graph::DenseGraph;
/// use recopack_order::interval::is_interval_graph;
///
/// // C4 is not interval (not chordal) ...
/// let c4 = DenseGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
/// assert!(!is_interval_graph(&c4));
/// // ... while any path is.
/// let p4 = DenseGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// assert!(is_interval_graph(&p4));
/// ```
pub fn is_interval_graph(g: &DenseGraph) -> bool {
    chordal::is_chordal(g) && orientation::is_comparability_graph(&g.complement())
}

/// A realization of an interval order as concrete coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Realization {
    /// Start coordinate of each vertex's interval.
    pub starts: Vec<u64>,
    /// Total extent `max(start + length)` of the layout.
    pub extent: u64,
    /// The interval order used (a transitive orientation of the complement
    /// of the overlap graph).
    pub order: Dag,
}

/// Lays out intervals whose pairwise *disjointness* is prescribed by a
/// transitive orientation.
///
/// Given the orientation `order` ("u before v") and interval `lengths`, each
/// start is the longest weighted chain of strict predecessors — the greedy
/// earliest layout. Comparable pairs come out disjoint in the prescribed
/// direction; the extent equals the longest weighted chain of the order.
///
/// # Panics
///
/// Panics if `order` is cyclic (a transitive orientation never is) or if
/// `lengths.len()` differs from the vertex count.
pub fn realize_from_order(order: &Dag, lengths: &[u64]) -> Realization {
    let starts = order
        .earliest_starts(lengths)
        .expect("transitive orientations are acyclic");
    let extent = starts
        .iter()
        .zip(lengths)
        .map(|(s, l)| s + l)
        .max()
        .unwrap_or(0);
    Realization {
        starts,
        extent,
        order: order.clone(),
    }
}

/// Realizes a component graph as intervals, honoring seed arcs in the
/// complement (precedence: "u's interval entirely before v's").
///
/// `g` is the *overlap* (component) graph: vertices whose intervals must be
/// disjoint are exactly the non-edges. The function transitively orients the
/// complement extending `seed`, then lays out coordinates greedily.
///
/// Note that edges of `g` are **allowed but not forced** to overlap in the
/// output; the packing-class solver only needs comparable pairs to be
/// disjoint (condition C3 picks the separating dimension per pair).
///
/// # Errors
///
/// Propagates [`OrientError`] when the complement has no transitive
/// orientation extending `seed`.
pub fn realize_component_graph(
    g: &DenseGraph,
    lengths: &[u64],
    seed: impl IntoIterator<Item = (usize, usize)>,
) -> Result<Realization, OrientError> {
    let comp = g.complement();
    let order = orientation::transitively_orient_extending(&comp, seed)?;
    Ok(realize_from_order(&order, lengths))
}

/// An explicit interval model of an interval graph: vertex `v` occupies
/// `[starts[v], ends[v])` and two vertices are adjacent iff their intervals
/// overlap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalRepresentation {
    /// Inclusive interval start per vertex.
    pub starts: Vec<u64>,
    /// Exclusive interval end per vertex.
    pub ends: Vec<u64>,
}

/// Builds an explicit interval representation of `g` via Fulkerson–Gross:
/// enumerate the maximal cliques (chordality), order them consecutively with
/// a PQ-tree (each vertex's cliques must form a contiguous block), and give
/// each vertex the clique-index range it appears in.
///
/// Returns `None` iff `g` is not an interval graph — which makes this an
/// independent second recognizer beside the Gilmore–Hoffman test in
/// [`is_interval_graph`] (chordal + co-comparability); the two are
/// cross-validated in tests.
///
/// The returned representation is verified against `g`'s edges before being
/// returned, so a `Some` is always a correct model.
pub fn interval_representation(g: &DenseGraph) -> Option<IntervalRepresentation> {
    let n = g.vertex_count();
    if n == 0 {
        return Some(IntervalRepresentation {
            starts: vec![],
            ends: vec![],
        });
    }
    let cliques = chordal::maximal_cliques_chordal(g)?;
    let k = cliques.len();
    // Universe = cliques; one set per vertex: the cliques containing it.
    let sets: Vec<Vec<usize>> = (0..n)
        .map(|v| {
            (0..k)
                .filter(|&c| cliques[c].contains(v))
                .collect::<Vec<usize>>()
        })
        .collect();
    let order = recopack_graph::pqtree::consecutive_ones(k, &sets)?;
    let mut rank = vec![0usize; k];
    for (i, &c) in order.iter().enumerate() {
        rank[c] = i;
    }
    let mut starts = vec![0u64; n];
    let mut ends = vec![0u64; n];
    for v in 0..n {
        debug_assert!(!sets[v].is_empty(), "every vertex is in a maximal clique");
        starts[v] = sets[v].iter().map(|&c| rank[c] as u64).min()?;
        ends[v] = sets[v].iter().map(|&c| rank[c] as u64 + 1).max()?;
    }
    // Verify the model reproduces g exactly.
    for v in 0..n {
        for u in 0..v {
            let overlap = starts[u] < ends[v] && starts[v] < ends[u];
            if overlap != g.has_edge(u, v) {
                return None;
            }
        }
    }
    Some(IntervalRepresentation { starts, ends })
}

/// The maximum total weight of a clique of the complement of `g` — i.e. of a
/// stable set of `g` — computed via an interval order.
///
/// For comparability complements this equals the longest weighted chain of
/// any transitive orientation, which is exactly the quantity bounded by
/// packing-class condition **C2**. Returns `None` when the complement is not
/// a comparability graph.
pub fn max_stable_set_weight_via_order(g: &DenseGraph, weights: &[u64]) -> Option<u64> {
    let comp = g.complement();
    let order = orientation::transitively_orient(&comp)?;
    Some(realize_from_order(&order, weights).extent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use recopack_graph::cliques;

    fn random_intervals(n: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(17);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 20
        };
        let starts: Vec<u64> = (0..n).map(|_| next()).collect();
        let lengths: Vec<u64> = (0..n).map(|_| 1 + next() % 8).collect();
        (starts, lengths)
    }

    fn overlap_graph(starts: &[u64], lengths: &[u64]) -> DenseGraph {
        let n = starts.len();
        let mut g = DenseGraph::new(n);
        for v in 1..n {
            for u in 0..v {
                let (su, eu) = (starts[u], starts[u] + lengths[u]);
                let (sv, ev) = (starts[v], starts[v] + lengths[v]);
                if su < ev && sv < eu {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    #[test]
    fn known_interval_and_non_interval_graphs() {
        // The "net" and C4 are not interval; paths, cliques, and caterpillars are.
        let c4 = DenseGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(!is_interval_graph(&c4));
        // Asteroidal triple: subdivided star (spider) K1,3 with each leg
        // length 2 is chordal but not interval.
        let spider = DenseGraph::from_edges(7, [(0, 1), (1, 2), (0, 3), (3, 4), (0, 5), (5, 6)]);
        assert!(chordal::is_chordal(&spider));
        assert!(!is_interval_graph(&spider));
        let p5 = DenseGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert!(is_interval_graph(&p5));
    }

    #[test]
    fn realization_respects_order() {
        let g = DenseGraph::from_edges(3, [(0, 1), (1, 2)]); // 0,2 disjoint
        let r = realize_component_graph(&g, &[3, 3, 3], []).expect("interval graph");
        // comparable pair (0,2): intervals must be disjoint
        let (a, b) = if r.order.has_arc(0, 2) {
            (0, 2)
        } else {
            (2, 0)
        };
        assert!(r.starts[a] + 3 <= r.starts[b]);
        assert!(r.extent <= 9);
    }

    #[test]
    fn seeded_realization_orders_as_demanded() {
        let g = DenseGraph::new(3); // all pairs disjoint: chain
        let r = realize_component_graph(&g, &[2, 2, 2], [(2, 1), (1, 0)])
            .expect("total order is transitive");
        assert!(r.starts[2] + 2 <= r.starts[1]);
        assert!(r.starts[1] + 2 <= r.starts[0]);
        assert_eq!(r.extent, 6);
    }

    #[test]
    fn stable_set_weight_matches_clique_search() {
        let g = DenseGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let w = [2u64, 3, 3, 2];
        let via_order = max_stable_set_weight_via_order(&g, &w).expect("interval");
        let direct = cliques::max_weight_independent_set(&g, &w).weight;
        assert_eq!(via_order, direct);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn overlap_graphs_of_real_intervals_are_interval(n in 1usize..9, seed in 0u64..100) {
            let (starts, lengths) = random_intervals(n, seed);
            let g = overlap_graph(&starts, &lengths);
            prop_assert!(is_interval_graph(&g));
        }

        #[test]
        fn realization_separates_all_comparable_pairs(n in 1usize..9, seed in 0u64..100) {
            let (starts, lengths) = random_intervals(n, seed);
            let g = overlap_graph(&starts, &lengths);
            let r = realize_component_graph(&g, &lengths, []).expect("interval graph");
            for v in 0..n {
                for u in 0..v {
                    if !g.has_edge(u, v) {
                        // non-edge: realized intervals must be disjoint
                        let (su, eu) = (r.starts[u], r.starts[u] + lengths[u]);
                        let (sv, ev) = (r.starts[v], r.starts[v] + lengths[v]);
                        prop_assert!(eu <= sv || ev <= su);
                    }
                }
            }
        }

        #[test]
        fn extent_never_exceeds_original_packing(n in 1usize..9, seed in 0u64..100) {
            // The greedy layout over any transitive orientation achieves the
            // longest-chain bound, which the original layout also attains or
            // exceeds.
            let (starts, lengths) = random_intervals(n, seed);
            let g = overlap_graph(&starts, &lengths);
            let orig_extent = starts.iter().zip(&lengths).map(|(s, l)| s + l).max().unwrap_or(0);
            let stable = max_stable_set_weight_via_order(&g, &lengths).expect("interval");
            prop_assert!(stable <= orig_extent);
        }
    }
}

#[cfg(test)]
mod representation_tests {
    use super::*;
    use proptest::prelude::*;

    fn random_graph(n: usize, density: f64, seed: u64) -> DenseGraph {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(5);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut g = DenseGraph::new(n);
        for v in 1..n {
            for u in 0..v {
                if next() < density {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    #[test]
    fn path_gets_a_staircase_model() {
        let g = DenseGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let model = interval_representation(&g).expect("paths are interval");
        for v in 0..4 {
            assert!(model.starts[v] < model.ends[v]);
        }
    }

    #[test]
    fn non_interval_graphs_get_none() {
        let c4 = DenseGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(interval_representation(&c4), None);
        // Chordal but not interval (asteroidal triple): the 2-subdivided star.
        let spider = DenseGraph::from_edges(7, [(0, 1), (1, 2), (0, 3), (3, 4), (0, 5), (5, 6)]);
        assert_eq!(interval_representation(&spider), None);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(interval_representation(&DenseGraph::new(0)).is_some());
        let one = DenseGraph::new(1);
        let model = interval_representation(&one).expect("singleton");
        assert_eq!(model.starts.len(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// The two recognizers (Gilmore–Hoffman vs Fulkerson–Gross/PQ-tree)
        /// must agree on every graph.
        #[test]
        fn recognizers_agree(n in 1usize..11, seed in 0u64..300, d in 0.1f64..0.95) {
            let g = random_graph(n, d, seed);
            let gh = is_interval_graph(&g);
            let fg = interval_representation(&g).is_some();
            prop_assert_eq!(gh, fg, "disagreement on {:?}", g);
        }

        /// Overlap graphs of actual intervals always get a model back, and
        /// the model reproduces the graph (checked inside the function, but
        /// assert the Some here).
        #[test]
        fn real_interval_graphs_get_models(n in 1usize..10, seed in 0u64..100) {
            let mut state = seed.wrapping_mul(77).wrapping_add(1);
            let mut next = |m: u64| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) % m
            };
            let starts: Vec<u64> = (0..n).map(|_| next(20)).collect();
            let lengths: Vec<u64> = (0..n).map(|_| 1 + next(8)).collect();
            let mut g = DenseGraph::new(n);
            for v in 1..n {
                for u in 0..v {
                    if starts[u] < starts[v] + lengths[v] && starts[v] < starts[u] + lengths[u] {
                        g.add_edge(u, v);
                    }
                }
            }
            prop_assert!(interval_representation(&g).is_some());
        }
    }
}

/// A canonical transitive orientation of the *complement* of an interval
/// graph, read off the Fulkerson–Gross interval model: `u → v` iff `u`'s
/// interval lies entirely before `v`'s.
///
/// This is the PQ-tree route to the same object that
/// [`orientation::transitively_orient`] produces by Gallai forcing on the
/// complement; the two independent constructions cross-validate each other
/// in tests. Returns `None` iff `g` is not an interval graph.
pub fn canonical_complement_orientation(g: &DenseGraph) -> Option<Dag> {
    let model = interval_representation(g)?;
    let n = g.vertex_count();
    let mut dag = Dag::new(n);
    for v in 0..n {
        for u in 0..v {
            if g.has_edge(u, v) {
                continue;
            }
            // Disjoint intervals: order by position.
            if model.ends[u] <= model.starts[v] {
                dag.add_arc(u, v);
            } else {
                debug_assert!(model.ends[v] <= model.starts[u]);
                dag.add_arc(v, u);
            }
        }
    }
    debug_assert!(dag.is_transitive(), "interval orders are transitive");
    Some(dag)
}

#[cfg(test)]
mod canonical_orientation_tests {
    use super::*;
    use proptest::prelude::*;

    fn random_interval_graph(n: usize, seed: u64) -> DenseGraph {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(3);
        let mut next = |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % m
        };
        let starts: Vec<u64> = (0..n).map(|_| next(16)).collect();
        let lengths: Vec<u64> = (0..n).map(|_| 1 + next(6)).collect();
        let mut g = DenseGraph::new(n);
        for v in 1..n {
            for u in 0..v {
                if starts[u] < starts[v] + lengths[v] && starts[v] < starts[u] + lengths[u] {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    #[test]
    fn non_interval_graph_gets_none() {
        let c4 = DenseGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(canonical_complement_orientation(&c4), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The PQ-tree route and the Gallai-forcing route must both succeed
        /// on interval graphs and both produce valid transitive
        /// orientations of the complement (not necessarily the same one).
        #[test]
        fn agrees_with_forcing_engine(n in 1usize..10, seed in 0u64..150) {
            let g = random_interval_graph(n, seed);
            let via_pq = canonical_complement_orientation(&g)
                .expect("overlap graphs of intervals are interval graphs");
            let comp = g.complement();
            prop_assert!(via_pq.is_transitive());
            prop_assert!(via_pq.is_acyclic());
            prop_assert_eq!(via_pq.arc_count(), comp.edge_count());
            let via_forcing = orientation::transitively_orient(&comp)
                .expect("complement of an interval graph is a comparability graph");
            prop_assert_eq!(via_forcing.arc_count(), comp.edge_count());
            // Both yield the same longest-chain extents for any weights
            // (chains = cliques of the complement, orientation-independent).
            let weights: Vec<u64> = (0..n as u64).map(|v| 1 + v % 5).collect();
            let a = realize_from_order(&via_pq, &weights).extent;
            let b = realize_from_order(&via_forcing, &weights).extent;
            prop_assert_eq!(a, b);
        }
    }
}
