//! Transitive orientation of comparability graphs by Gallai forcing.
//!
//! A graph is a *comparability graph* iff its edges can be oriented
//! transitively (`u→w`, `w→v` implies `u→v`). The paper needs more: given a
//! partial order `P` (the precedence constraints) whose arcs are edges of the
//! comparability graph, decide whether a transitive orientation **extending
//! `P`** exists — the problem of Korte–Möhring, solved here with the two
//! implication rules of paper §4.3:
//!
//! * **D1 (path implication)** — edges `{a,b}`, `{a,c}` present, `{b,c}`
//!   absent: any transitive orientation has `a→b ⇔ a→c` (otherwise
//!   transitivity would force the missing edge `{b,c}`);
//! * **D2 (transitivity implication)** — `u→w` and `w→v` force `u→v`; if
//!   `{u,v}` is not an edge, that is a conflict.
//!
//! The engine closes a set of seed arcs under D1/D2 (detecting *path
//! conflicts* and *transitivity conflicts*), then completes the orientation
//! by picking undecided edges; Theorem 2 of the paper says conflicts found by
//! closure are the only obstructions, and a trail-based backtrack makes the
//! routine complete even without leaning on the theorem.

use recopack_graph::{DenseGraph, PairIndex};

use crate::Dag;

/// Errors of [`transitively_orient_extending`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrientError {
    /// A seed arc `(u, v)` joins vertices that are not adjacent in the
    /// comparability graph, so no orientation of the graph can include it.
    ArcNotInGraph(usize, usize),
    /// Both `u→v` and `v→u` appear among the seed arcs.
    ContradictoryArcs(usize, usize),
    /// No transitive orientation of the graph extends the seed arcs
    /// (a path or transitivity conflict; for an empty seed set this means
    /// the graph is not a comparability graph).
    NotExtendable,
}

impl std::fmt::Display for OrientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ArcNotInGraph(u, v) => {
                write!(f, "seed arc ({u}, {v}) is not an edge of the graph")
            }
            Self::ContradictoryArcs(u, v) => {
                write!(f, "seed arcs contain both ({u}, {v}) and ({v}, {u})")
            }
            Self::NotExtendable => {
                write!(f, "no transitive orientation extends the given arcs")
            }
        }
    }
}

impl std::error::Error for OrientError {}

/// Orientation of a pair, relative to `(lo, hi)` with `lo < hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    None,
    LoHi,
    HiLo,
}

struct Engine<'g> {
    g: &'g DenseGraph,
    idx: PairIndex,
    orient: Vec<Dir>,
    /// Pairs whose orientation changed, for backtracking.
    trail: Vec<usize>,
}

impl<'g> Engine<'g> {
    fn new(g: &'g DenseGraph) -> Self {
        let idx = PairIndex::new(g.vertex_count());
        Self {
            g,
            idx,
            orient: vec![Dir::None; idx.pair_count()],
            trail: Vec::new(),
        }
    }

    fn dir_of(&self, u: usize, v: usize) -> Dir {
        self.orient[self.idx.index(u, v)]
    }

    /// Whether the arc u→v is currently set.
    fn has(&self, u: usize, v: usize) -> bool {
        let d = self.dir_of(u, v);
        (u < v && d == Dir::LoHi) || (u > v && d == Dir::HiLo)
    }

    /// Sets u→v; pushes to `queue` on change. Returns false on conflict.
    fn set(&mut self, u: usize, v: usize, queue: &mut Vec<(usize, usize)>) -> bool {
        let p = self.idx.index(u, v);
        let want = if u < v { Dir::LoHi } else { Dir::HiLo };
        match self.orient[p] {
            Dir::None => {
                self.orient[p] = want;
                self.trail.push(p);
                queue.push((u, v));
                true
            }
            d => d == want,
        }
    }

    /// Closes `queue` under D1 and D2. Returns false on conflict.
    fn propagate(&mut self, queue: &mut Vec<(usize, usize)>) -> bool {
        while let Some((u, v)) = queue.pop() {
            debug_assert!(self.g.has_edge(u, v) && self.has(u, v));
            let n = self.g.vertex_count();
            for w in 0..n {
                if w == u || w == v {
                    continue;
                }
                let uw = self.g.has_edge(u, w);
                let vw = self.g.has_edge(v, w);
                // D1 at shared endpoint u: {u,v}, {u,w} edges, {v,w} non-edge
                // => u→v forces u→w.
                if uw && !vw && !self.set(u, w, queue) {
                    return false;
                }
                // D1 at shared endpoint v: {v,u}, {v,w} edges, {u,w} non-edge
                // => u→v (v receives) forces w→v.
                if vw && !uw && !self.set(w, v, queue) {
                    return false;
                }
                // D2: u→v plus v→w forces u→w.
                if vw && self.has(v, w) {
                    if !uw {
                        return false; // transitivity conflict: {u,w} missing
                    }
                    if !self.set(u, w, queue) {
                        return false;
                    }
                }
                // D2: w→u plus u→v forces w→v.
                if uw && self.has(w, u) {
                    if !vw {
                        return false;
                    }
                    if !self.set(w, v, queue) {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn rollback(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let p = self.trail.pop().expect("trail len checked");
            self.orient[p] = Dir::None;
        }
    }

    /// Completes the current partial orientation by DFS with forcing.
    fn complete(&mut self) -> bool {
        // Find an unoriented edge.
        let next = self
            .g
            .edges()
            .find(|&(u, v)| self.dir_of(u, v) == Dir::None);
        let Some((u, v)) = next else {
            return true; // fully oriented, propagation kept it consistent
        };
        for (a, b) in [(u, v), (v, u)] {
            let mark = self.trail.len();
            let mut queue = Vec::new();
            if self.set(a, b, &mut queue) && self.propagate(&mut queue) && self.complete() {
                return true;
            }
            self.rollback(mark);
        }
        false
    }

    fn into_dag(self) -> Dag {
        let mut d = Dag::new(self.g.vertex_count());
        for (u, v) in self.g.edges() {
            match self.dir_of(u, v) {
                Dir::LoHi => {
                    d.add_arc(u.min(v), u.max(v));
                }
                Dir::HiLo => {
                    d.add_arc(u.max(v), u.min(v));
                }
                Dir::None => unreachable!("complete orientation expected"),
            }
        }
        d
    }
}

/// Finds a transitive orientation of `g` extending the `seed` arcs.
///
/// Every seed arc `(u, v)` demands the orientation `u→v`; the result is a
/// [`Dag`] orienting *every* edge of `g` transitively, or an error if that is
/// impossible. This is the leaf test of the precedence-constrained
/// packing-class search (paper §4.2/§4.4).
///
/// # Errors
///
/// * [`OrientError::ArcNotInGraph`] — a seed arc is not an edge of `g`;
/// * [`OrientError::ContradictoryArcs`] — seeds contain an arc both ways;
/// * [`OrientError::NotExtendable`] — a path or transitivity conflict makes
///   extension impossible.
///
/// # Example
///
/// ```
/// use recopack_graph::DenseGraph;
/// use recopack_order::orientation::transitively_orient_extending;
///
/// // P4: a-b-c-d has essentially one transitive orientation per end edge.
/// let g = DenseGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// let dag = transitively_orient_extending(&g, [(0, 1)])?;
/// assert!(dag.has_arc(0, 1));
/// assert!(dag.is_transitive());
/// # Ok::<(), recopack_order::orientation::OrientError>(())
/// ```
pub fn transitively_orient_extending(
    g: &DenseGraph,
    seed: impl IntoIterator<Item = (usize, usize)>,
) -> Result<Dag, OrientError> {
    let mut engine = Engine::new(g);
    let mut queue = Vec::new();
    for (u, v) in seed {
        if !g.has_edge(u, v) {
            return Err(OrientError::ArcNotInGraph(u, v));
        }
        if engine.has(v, u) {
            return Err(OrientError::ContradictoryArcs(u, v));
        }
        if !engine.set(u, v, &mut queue) {
            return Err(OrientError::NotExtendable);
        }
    }
    if !engine.propagate(&mut queue) || !engine.complete() {
        return Err(OrientError::NotExtendable);
    }
    let dag = engine.into_dag();
    debug_assert!(dag.is_transitive(), "engine must produce transitive output");
    debug_assert!(dag.is_acyclic(), "transitive orientations are acyclic");
    Ok(dag)
}

/// Finds any transitive orientation of `g`, or `None` if `g` is not a
/// comparability graph.
///
/// # Example
///
/// ```
/// use recopack_graph::DenseGraph;
/// use recopack_order::orientation::transitively_orient;
///
/// // C5 is the smallest non-comparability graph.
/// let c5 = DenseGraph::from_edges(5, (0..5).map(|i| (i, (i + 1) % 5)));
/// assert!(transitively_orient(&c5).is_none());
/// ```
pub fn transitively_orient(g: &DenseGraph) -> Option<Dag> {
    transitively_orient_extending(g, []).ok()
}

/// Whether `g` is a comparability graph (admits a transitive orientation).
pub fn is_comparability_graph(g: &DenseGraph) -> bool {
    transitively_orient(g).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cycle(n: usize) -> DenseGraph {
        DenseGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    /// Brute force: try all 2^m orientations.
    fn orient_brute(g: &DenseGraph, seed: &[(usize, usize)]) -> bool {
        let edges: Vec<(usize, usize)> = g.edges().collect();
        let m = edges.len();
        assert!(m <= 16);
        'outer: for mask in 0u32..(1 << m) {
            let mut d = Dag::new(g.vertex_count());
            for (i, &(u, v)) in edges.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    d.add_arc(u, v);
                } else {
                    d.add_arc(v, u);
                }
            }
            for &(u, v) in seed {
                if !d.has_arc(u, v) {
                    continue 'outer;
                }
            }
            if d.is_transitive() && d.is_acyclic() {
                return true;
            }
        }
        false
    }

    fn random_graph(n: usize, density: f64, seed: u64) -> DenseGraph {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut g = DenseGraph::new(n);
        for v in 1..n {
            for u in 0..v {
                if next() < density {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    #[test]
    fn even_cycles_orient_odd_cycles_do_not() {
        assert!(is_comparability_graph(&cycle(4)));
        assert!(is_comparability_graph(&cycle(6)));
        assert!(!is_comparability_graph(&cycle(5)));
        assert!(!is_comparability_graph(&cycle(7)));
    }

    #[test]
    fn complete_and_empty_graphs_orient() {
        let mut k4 = DenseGraph::new(4);
        for v in 1..4 {
            for u in 0..v {
                k4.add_edge(u, v);
            }
        }
        assert!(is_comparability_graph(&k4));
        assert!(is_comparability_graph(&DenseGraph::new(5)));
        assert!(is_comparability_graph(&DenseGraph::new(0)));
    }

    #[test]
    fn p4_forcing_propagates_along_the_path() {
        // In P4 a-b-c-d: {a,b} and {b,c} share b with {a,c} missing, so
        // a→b forces c→b, which forces c→d.
        let g = DenseGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let dag = transitively_orient_extending(&g, [(0, 1)]).expect("extendable");
        assert!(dag.has_arc(0, 1));
        assert!(dag.has_arc(2, 1));
        assert!(dag.has_arc(2, 3));
    }

    #[test]
    fn figure5_style_conflict() {
        // Paper Fig. 5: a comparability graph and a partial order that
        // admits no extension. Triangle-free construction: in C4 with
        // vertices 0-1-2-3, edges {0,1},{1,2},{2,3},{3,0}; forcing makes
        // opposite edges parallel. Seeding 0→1 and 2→1 and 2→3 creates a
        // path conflict (0→1 forces ... 0→3? check: {0,1},{1,2} share 1,
        // {0,2} missing: 0→1 forces 2→1 ✓ consistent; {2,1},{2,3} share 2,
        // {1,3} missing: 2→1 forces 2→3 ✓. Instead seed 0→1 and 3→2 and
        // demand 1←2 ... use contradictory forcing: 0→1 forces 2→1 and
        // then 2→1 forces 2→3? no: {2,1},{2,3} share 2, {1,3} missing, so
        // 2→1 ⇔ 2→3. Seed 0→1 plus 3→2 conflicts.
        let g = cycle(4);
        let err =
            transitively_orient_extending(&g, [(0, 1), (3, 2)]).expect_err("conflicting seeds");
        assert_eq!(err, OrientError::NotExtendable);
        // The individual seeds alone are fine.
        assert!(transitively_orient_extending(&g, [(0, 1)]).is_ok());
        assert!(transitively_orient_extending(&g, [(3, 2)]).is_ok());
    }

    #[test]
    fn seed_arc_must_be_an_edge() {
        let g = DenseGraph::from_edges(3, [(0, 1)]);
        assert_eq!(
            transitively_orient_extending(&g, [(0, 2)]),
            Err(OrientError::ArcNotInGraph(0, 2))
        );
    }

    #[test]
    fn contradictory_seeds_rejected() {
        let g = DenseGraph::from_edges(2, [(0, 1)]);
        assert_eq!(
            transitively_orient_extending(&g, [(0, 1), (1, 0)]),
            Err(OrientError::ContradictoryArcs(1, 0))
        );
    }

    #[test]
    fn orientation_contains_all_edges_exactly_once() {
        let g = DenseGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]);
        if let Some(dag) = transitively_orient(&g) {
            assert_eq!(dag.arc_count(), g.edge_count());
            for (u, v) in g.edges() {
                assert!(dag.has_arc(u, v) ^ dag.has_arc(v, u));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn matches_brute_force(n in 1usize..7, seed in 0u64..200, d in 0.2f64..0.9) {
            let g = random_graph(n, d, seed);
            prop_assume!(g.edge_count() <= 16);
            prop_assert_eq!(is_comparability_graph(&g), orient_brute(&g, &[]));
        }

        #[test]
        fn extension_matches_brute_force(n in 2usize..7, seed in 0u64..150) {
            let g = random_graph(n, 0.5, seed);
            prop_assume!(g.edge_count() >= 1 && g.edge_count() <= 14);
            let (u, v) = g.edges().next().expect("has an edge");
            let ours = transitively_orient_extending(&g, [(u, v)]).is_ok();
            prop_assert_eq!(ours, orient_brute(&g, &[(u, v)]));
        }

        #[test]
        fn produced_orientation_is_valid(n in 1usize..8, seed in 0u64..100) {
            let g = random_graph(n, 0.4, seed);
            if let Some(dag) = transitively_orient(&g) {
                prop_assert!(dag.is_transitive());
                prop_assert!(dag.is_acyclic());
                prop_assert_eq!(dag.arc_count(), g.edge_count());
            }
        }
    }
}
