//! Partial orders, comparability graphs, and transitive orientations.
//!
//! The packing-class method reduces geometric packing to graph structure: in
//! every dimension the *complement* of the component graph is a comparability
//! graph, and a transitive orientation of it is an **interval order** — the
//! "comes before" relation of the box projections. Precedence constraints
//! (paper §4) are arcs that a transitive orientation of the time dimension
//! must extend, and the paper's D1 (path) / D2 (transitivity) implications
//! are exactly Gallai's forcing rules.
//!
//! This crate provides:
//!
//! * [`Dag`] — directed acyclic graphs with topological sort, transitive
//!   closure/reduction and weighted critical paths (the dependency-graph
//!   substrate);
//! * [`orientation`] — the forcing engine: orient a comparability graph
//!   transitively, optionally extending a given partial order
//!   (Korte–Möhring's problem, solved by D1/D2 closure plus backtracking);
//! * [`implication`] — Gallai path-implication classes of a comparability
//!   graph (the paper's §4.3 partition);
//! * [`interval`] — interval-graph recognition (chordal + co-comparability,
//!   Gilmore–Hoffman) and coordinate realization of interval orders by
//!   longest weighted chains.
//!
//! # Example: orienting a complement into coordinates
//!
//! ```
//! use recopack_graph::DenseGraph;
//! use recopack_order::{interval, orientation};
//!
//! // Three unit intervals where 0 overlaps 1 and 1 overlaps 2, but 0 and 2
//! // are disjoint: component graph is the path 0-1-2.
//! let g = DenseGraph::from_edges(3, [(0, 1), (1, 2)]);
//! assert!(interval::is_interval_graph(&g));
//!
//! let comp = g.complement(); // single comparability edge {0, 2}
//! let order = orientation::transitively_orient(&comp).expect("path complement orients");
//! assert_eq!(order.arc_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dag;
pub mod implication;
pub mod interval;
pub mod orientation;

pub use dag::{CriticalPath, CycleError, Dag};
