//! Directed acyclic graphs: the dependency-graph substrate.

use recopack_graph::BitSet;

/// Error returned when an operation requires acyclicity but the graph has a
/// directed cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// Vertices of one directed cycle, in order.
    pub cycle: Vec<usize>,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "directed cycle through vertices {:?}", self.cycle)
    }
}

impl std::error::Error for CycleError {}

/// A weighted critical path through a DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Vertices on the path, in order.
    pub vertices: Vec<usize>,
    /// Total vertex weight along the path.
    pub length: u64,
}

/// A directed graph on vertices `0..n`, used for dependency (precedence)
/// structures. Most operations require acyclicity and say so.
///
/// # Example
///
/// ```
/// use recopack_order::Dag;
///
/// let mut d = Dag::new(3);
/// d.add_arc(0, 1);
/// d.add_arc(1, 2);
/// let closure = d.transitive_closure()?;
/// assert!(closure.has_arc(0, 2));
/// assert_eq!(d.critical_path(&[2, 3, 1])?.length, 6);
/// # Ok::<(), recopack_order::CycleError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Dag {
    n: usize,
    succ: Vec<BitSet>,
    pred: Vec<BitSet>,
    arc_count: usize,
}

impl Dag {
    /// Creates an arcless directed graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            succ: (0..n).map(|_| BitSet::new(n)).collect(),
            pred: (0..n).map(|_| BitSet::new(n)).collect(),
            arc_count: 0,
        }
    }

    /// Builds a directed graph from an arc list.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn from_arcs(n: usize, arcs: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut d = Self::new(n);
        for (u, v) in arcs {
            d.add_arc(u, v);
        }
        d
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arc_count
    }

    /// Adds the arc `u → v`, returning whether it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` or either endpoint is out of range.
    pub fn add_arc(&mut self, u: usize, v: usize) -> bool {
        assert!(u != v, "self-loop at {u}");
        assert!(u < self.n && v < self.n, "vertex out of range");
        let added = self.succ[u].insert(v);
        self.pred[v].insert(u);
        if added {
            self.arc_count += 1;
        }
        added
    }

    /// Whether the arc `u → v` is present.
    pub fn has_arc(&self, u: usize, v: usize) -> bool {
        u < self.n && self.succ[u].contains(v)
    }

    /// Successors of `u`.
    pub fn successors(&self, u: usize) -> &BitSet {
        &self.succ[u]
    }

    /// Predecessors of `u`.
    pub fn predecessors(&self, u: usize) -> &BitSet {
        &self.pred[u]
    }

    /// Iterates over all arcs `(u, v)`.
    pub fn arcs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |u| self.succ[u].iter().map(move |v| (u, v)))
    }

    /// A topological order of the vertices.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the graph has a directed cycle.
    pub fn topological_order(&self) -> Result<Vec<usize>, CycleError> {
        let mut indeg: Vec<usize> = (0..self.n).map(|v| self.pred[v].len()).collect();
        let mut queue: Vec<usize> = (0..self.n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(u) = queue.pop() {
            order.push(u);
            for v in self.succ[u].iter() {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if order.len() == self.n {
            Ok(order)
        } else {
            Err(self.find_cycle())
        }
    }

    fn find_cycle(&self) -> CycleError {
        // DFS with colors to extract one cycle.
        let mut color = vec![0u8; self.n]; // 0 white, 1 gray, 2 black
        let mut parent = vec![usize::MAX; self.n];
        for s in 0..self.n {
            if color[s] != 0 {
                continue;
            }
            let mut stack = vec![(s, self.succ[s].iter().collect::<Vec<_>>())];
            color[s] = 1;
            while let Some((u, children)) = stack.last_mut() {
                if let Some(v) = children.pop() {
                    let u = *u;
                    match color[v] {
                        0 => {
                            color[v] = 1;
                            parent[v] = u;
                            stack.push((v, self.succ[v].iter().collect()));
                        }
                        1 => {
                            // Found cycle v -> ... -> u -> v.
                            let mut cycle = vec![u];
                            let mut w = u;
                            while w != v {
                                w = parent[w];
                                cycle.push(w);
                            }
                            cycle.reverse();
                            return CycleError { cycle };
                        }
                        _ => {}
                    }
                } else {
                    color[*u] = 2;
                    stack.pop();
                }
            }
        }
        unreachable!("find_cycle called on acyclic graph")
    }

    /// Whether the graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_ok()
    }

    /// The transitive closure: `u → v` iff a directed path `u ⇝ v` exists.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the graph has a directed cycle.
    pub fn transitive_closure(&self) -> Result<Dag, CycleError> {
        let order = self.topological_order()?;
        let mut reach: Vec<BitSet> = (0..self.n).map(|_| BitSet::new(self.n)).collect();
        for &u in order.iter().rev() {
            let mut r = BitSet::new(self.n);
            for v in self.succ[u].iter() {
                r.insert(v);
                r.union_with(&reach[v]);
            }
            reach[u] = r;
        }
        let mut d = Dag::new(self.n);
        for (u, r) in reach.iter().enumerate() {
            for v in r.iter() {
                d.add_arc(u, v);
            }
        }
        Ok(d)
    }

    /// The transitive reduction: the unique minimal arc set with the same
    /// closure (unique for DAGs).
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the graph has a directed cycle.
    pub fn transitive_reduction(&self) -> Result<Dag, CycleError> {
        let closure = self.transitive_closure()?;
        let mut d = Dag::new(self.n);
        for (u, v) in closure.arcs() {
            // u -> v is redundant iff some intermediate w has u -> w -> v in
            // the closure.
            let via = closure.succ[u].intersection(&closure.pred[v]);
            if via.is_empty() {
                d.add_arc(u, v);
            }
        }
        Ok(d)
    }

    /// Whether the arc relation is transitive (`u→w`, `w→v` implies `u→v`).
    pub fn is_transitive(&self) -> bool {
        (0..self.n).all(|u| {
            self.succ[u]
                .iter()
                .all(|w| self.succ[w].is_subset(&self.succ[u]))
        })
    }

    /// The longest path by total *vertex* weight — for precedence graphs with
    /// task durations as weights this is the schedule-length lower bound
    /// ("the longest path in the graph has length 6", paper §5.1).
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the graph has a directed cycle.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != vertex_count()`.
    pub fn critical_path(&self, weights: &[u64]) -> Result<CriticalPath, CycleError> {
        assert_eq!(weights.len(), self.n, "one weight per vertex required");
        let order = self.topological_order()?;
        if self.n == 0 {
            return Ok(CriticalPath {
                vertices: vec![],
                length: 0,
            });
        }
        let mut dist = vec![0u64; self.n]; // weight of heaviest path ending at v
        let mut from = vec![usize::MAX; self.n];
        for &u in &order {
            let best = self.pred[u]
                .iter()
                .map(|p| (dist[p], p))
                .max()
                .unwrap_or((0, usize::MAX));
            from[u] = best.1;
            dist[u] = best.0 + weights[u];
        }
        let (&best_end, _) = order
            .iter()
            .map(|v| (v, dist[*v]))
            .max_by_key(|&(_, d)| d)
            .expect("nonempty graph");
        let mut vertices = vec![best_end];
        while from[*vertices.last().expect("nonempty")] != usize::MAX {
            vertices.push(from[*vertices.last().expect("nonempty")]);
        }
        vertices.reverse();
        Ok(CriticalPath {
            length: dist[best_end],
            vertices,
        })
    }

    /// Earliest start times honoring all arcs (`start(v) ≥ start(u) + w(u)`).
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the graph has a directed cycle.
    pub fn earliest_starts(&self, weights: &[u64]) -> Result<Vec<u64>, CycleError> {
        assert_eq!(weights.len(), self.n, "one weight per vertex required");
        let order = self.topological_order()?;
        let mut start = vec![0u64; self.n];
        for &u in &order {
            for v in self.succ[u].iter() {
                start[v] = start[v].max(start[u] + weights[u]);
            }
        }
        Ok(start)
    }

    /// Latest start times such that everything finishes by `deadline`.
    ///
    /// Returns `None` for tasks that cannot meet the deadline at all
    /// (their tail of successors is longer than the deadline).
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the graph has a directed cycle.
    pub fn latest_starts(
        &self,
        weights: &[u64],
        deadline: u64,
    ) -> Result<Vec<Option<u64>>, CycleError> {
        assert_eq!(weights.len(), self.n, "one weight per vertex required");
        let order = self.topological_order()?;
        // tail[v]: weight of heaviest path starting at v (including v).
        let mut tail = vec![0u64; self.n];
        for &u in order.iter().rev() {
            let succ_best = self.succ[u].iter().map(|v| tail[v]).max().unwrap_or(0);
            tail[u] = weights[u] + succ_best;
        }
        Ok(tail.iter().map(|&t| deadline.checked_sub(t)).collect())
    }
}

impl std::fmt::Debug for Dag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Dag(n={}, arcs=", self.n)?;
        f.debug_list().entries(self.arcs()).finish()?;
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn diamond() -> Dag {
        Dag::from_arcs(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn topological_order_respects_arcs() {
        let d = diamond();
        let order = d.topological_order().expect("acyclic");
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for (u, v) in d.arcs() {
            assert!(pos[u] < pos[v]);
        }
    }

    #[test]
    fn cycle_detection_reports_cycle() {
        let d = Dag::from_arcs(4, [(0, 1), (1, 2), (2, 0)]);
        let err = d.topological_order().expect_err("cyclic");
        assert!(err.cycle.len() >= 2);
        // every consecutive pair on the reported cycle is an arc
        for w in err.cycle.windows(2) {
            assert!(d.has_arc(w[0], w[1]));
        }
        assert!(d.has_arc(*err.cycle.last().expect("nonempty"), err.cycle[0]));
        assert!(!d.is_acyclic());
    }

    #[test]
    fn closure_of_chain() {
        let d = Dag::from_arcs(4, [(0, 1), (1, 2), (2, 3)]);
        let c = d.transitive_closure().expect("acyclic");
        assert_eq!(c.arc_count(), 6);
        assert!(c.has_arc(0, 3));
        assert!(c.is_transitive());
    }

    #[test]
    fn reduction_of_closure_is_chain() {
        let d = Dag::from_arcs(4, [(0, 1), (1, 2), (2, 3), (0, 2), (0, 3), (1, 3)]);
        let r = d.transitive_reduction().expect("acyclic");
        let arcs: Vec<_> = r.arcs().collect();
        assert_eq!(arcs, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn critical_path_of_diamond() {
        let d = diamond();
        let cp = d.critical_path(&[2, 5, 1, 2]).expect("acyclic");
        assert_eq!(cp.length, 9);
        assert_eq!(cp.vertices, vec![0, 1, 3]);
    }

    #[test]
    fn critical_path_ignores_isolated_light_vertices() {
        let d = Dag::from_arcs(3, [(0, 1)]);
        let cp = d.critical_path(&[1, 1, 10]).expect("acyclic");
        assert_eq!(cp.length, 10);
        assert_eq!(cp.vertices, vec![2]);
    }

    #[test]
    fn earliest_and_latest_starts() {
        let d = Dag::from_arcs(3, [(0, 1), (1, 2)]);
        let w = [2u64, 3, 1];
        assert_eq!(d.earliest_starts(&w).expect("acyclic"), vec![0, 2, 5]);
        let latest = d.latest_starts(&w, 6).expect("acyclic");
        assert_eq!(latest, vec![Some(0), Some(2), Some(5)]);
        let impossible = d.latest_starts(&w, 5).expect("acyclic");
        assert_eq!(impossible[0], None);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let d = Dag::new(0);
        assert!(d.topological_order().expect("trivially acyclic").is_empty());
        assert_eq!(d.critical_path(&[]).expect("acyclic").length, 0);
    }

    fn random_dag(n: usize, density: f64, seed: u64) -> Dag {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(3);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut d = Dag::new(n);
        for v in 1..n {
            for u in 0..v {
                if next() < density {
                    d.add_arc(u, v); // arcs go low -> high: always acyclic
                }
            }
        }
        d
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn closure_is_transitive_and_reduction_roundtrips(n in 1usize..12, seed in 0u64..100) {
            let d = random_dag(n, 0.3, seed);
            let c = d.transitive_closure().expect("acyclic by construction");
            prop_assert!(c.is_transitive());
            let r = d.transitive_reduction().expect("acyclic");
            prop_assert_eq!(r.transitive_closure().expect("acyclic"), c);
            // reduction is minimal: no smaller than any equivalent subgraph arc count
            prop_assert!(r.arc_count() <= d.arc_count());
        }

        #[test]
        fn earliest_starts_respect_arcs(n in 1usize..12, seed in 0u64..100) {
            let d = random_dag(n, 0.4, seed);
            let w: Vec<u64> = (0..n as u64).map(|v| 1 + v % 4).collect();
            let s = d.earliest_starts(&w).expect("acyclic");
            for (u, v) in d.arcs() {
                prop_assert!(s[v] >= s[u] + w[u]);
            }
        }
    }
}
