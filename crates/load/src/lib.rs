//! `recopack-load`: a load generator for `recopack serve`.
//!
//! Drives N concurrent HTTP/1.1 keep-alive clients against a server —
//! either an external one (`--addr`) or one booted in-process on an
//! ephemeral port — with a seeded workload mix of *fresh* instances
//! (every submission unique), *repeated* instances drawn from a small
//! shared pool (exercising the solution cache and in-flight dedup), and
//! `POST /jobs:batch` submissions. Every HTTP round trip is timed; the
//! run ends with a `/metrics` scrape so the report can state the cache
//! hit rate the server actually observed.
//!
//! The [`LoadReport`] serializes into a JSON document (via
//! `recopack-json`) that CI uploads as an artifact and optionally merges
//! into the committed `BENCH_*.json` snapshot, so latency percentiles
//! ride alongside the solver totals. [`check_report`] implements the
//! `--check` threshold gates: zero failed requests, a minimum cache hit
//! rate on the repeated mix, and a p99 sanity bound.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recopack_json::Json;
use recopack_model::format;
use recopack_model::generate::{random_instance, GeneratorConfig};

/// How long one client waits for a submitted job to reach a terminal
/// state before counting it as failed.
const JOB_DEADLINE: Duration = Duration::from_secs(60);

/// Per-request socket timeout (a stalled server counts as a failure, it
/// must not hang the generator).
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

/// Workload mix in percent: the remainder after repeats and batches is
/// fresh, never-seen-before instances.
const REPEAT_PERCENT: u32 = 50;
const BATCH_PERCENT: u32 = 15;

/// Number of distinct instances in the shared repeated pool.
const POOL_SIZE: usize = 6;

/// Options for one load run.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Target server; `None` boots an in-process server on an ephemeral
    /// port for the duration of the run.
    pub addr: Option<String>,
    /// Number of concurrent keep-alive clients.
    pub clients: usize,
    /// Operations (submit / batch) per client.
    pub ops_per_client: usize,
    /// Workload seed: same seed, same instance mix.
    pub seed: u64,
    /// Report label (mirrors `recopack-bench --label`).
    pub label: String,
    /// Marks the report as a smoke run.
    pub smoke: bool,
    /// Worker threads for the in-process server (ignored with `addr`).
    pub workers: usize,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            addr: None,
            clients: 8,
            ops_per_client: 40,
            seed: 7,
            label: "PR7".to_string(),
            smoke: false,
            workers: 2,
        }
    }
}

/// Latency percentiles over one set of samples, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Worst observed sample.
    pub max_ms: f64,
}

impl Percentiles {
    /// Computes percentiles from unsorted samples; all-zero when empty.
    pub fn from_samples(samples: &mut [f64]) -> Self {
        if samples.is_empty() {
            return Self {
                p50_ms: 0.0,
                p90_ms: 0.0,
                p99_ms: 0.0,
                mean_ms: 0.0,
                max_ms: 0.0,
            };
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let at = |q: f64| {
            let idx = ((samples.len() as f64 - 1.0) * q).round() as usize;
            samples[idx.min(samples.len() - 1)]
        };
        Self {
            p50_ms: at(0.50),
            p90_ms: at(0.90),
            p99_ms: at(0.99),
            mean_ms: samples.iter().sum::<f64>() / samples.len() as f64,
            max_ms: samples[samples.len() - 1],
        }
    }

    fn to_json(self) -> Json {
        Json::Object(vec![
            ("p50_ms".to_string(), Json::Number(round3(self.p50_ms))),
            ("p90_ms".to_string(), Json::Number(round3(self.p90_ms))),
            ("p99_ms".to_string(), Json::Number(round3(self.p99_ms))),
            ("mean_ms".to_string(), Json::Number(round3(self.mean_ms))),
            ("max_ms".to_string(), Json::Number(round3(self.max_ms))),
        ])
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// The outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Report label.
    pub label: String,
    /// Whether this was a smoke run.
    pub smoke: bool,
    /// Concurrent clients driven.
    pub clients: usize,
    /// Total HTTP round trips (submissions, batches, polls, scrape).
    pub requests: u64,
    /// Failed operations: refused submissions, transport errors, jobs
    /// that did not reach a successful terminal state in time.
    pub failures: u64,
    /// Times a client had to re-open its supposedly persistent
    /// connection (zero when keep-alive works).
    pub reconnects: u64,
    /// Wall-clock of the client phase, in seconds.
    pub wall_s: f64,
    /// HTTP round trips per second.
    pub throughput_rps: f64,
    /// Per-request (round-trip) latency percentiles.
    pub request_latency: Percentiles,
    /// Submit-to-terminal latency percentiles per job.
    pub job_latency: Percentiles,
    /// Jobs submitted (batch items included).
    pub jobs_submitted: u64,
    /// Jobs that reached `done`.
    pub jobs_completed: u64,
    /// Jobs submitted through `/jobs:batch`.
    pub batch_items: u64,
    /// Server-side `recopack_cache_hits_total` after the run.
    pub cache_hits: u64,
    /// Server-side `recopack_cache_misses_total` after the run.
    pub cache_misses: u64,
    /// Server-side `recopack_jobs_deduplicated_total` after the run.
    pub dedup_joins: u64,
    /// Mean queue wait per solver run in milliseconds, from the server's
    /// `recopack_job_queue_wait_seconds` histogram.
    pub queue_wait_mean_ms: f64,
    /// Mean solve wall time per solver run in milliseconds, from the
    /// server's `recopack_job_solve_seconds` histogram.
    pub solve_mean_ms: f64,
    /// NDJSON lines received by the smoke run's `/jobs/{id}/events`
    /// subscriber, terminal end record included (0 outside `--smoke`).
    pub trace_lines: u64,
}

impl LoadReport {
    /// Cache hit rate over all lookups; 0.0 before any lookup happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The report as a JSON value (the `load` section of `BENCH_*.json`).
    pub fn to_json_value(&self) -> Json {
        Json::Object(vec![
            ("schema_version".to_string(), Json::Number(1.0)),
            (
                "tool".to_string(),
                Json::String("recopack-load".to_string()),
            ),
            ("label".to_string(), Json::String(self.label.clone())),
            ("smoke".to_string(), Json::Bool(self.smoke)),
            ("clients".to_string(), Json::Number(self.clients as f64)),
            ("requests".to_string(), Json::Number(self.requests as f64)),
            ("failures".to_string(), Json::Number(self.failures as f64)),
            (
                "reconnects".to_string(),
                Json::Number(self.reconnects as f64),
            ),
            ("wall_s".to_string(), Json::Number(round3(self.wall_s))),
            (
                "throughput_rps".to_string(),
                Json::Number(round3(self.throughput_rps)),
            ),
            (
                "request_latency".to_string(),
                self.request_latency.to_json(),
            ),
            ("job_latency".to_string(), self.job_latency.to_json()),
            (
                "jobs_submitted".to_string(),
                Json::Number(self.jobs_submitted as f64),
            ),
            (
                "jobs_completed".to_string(),
                Json::Number(self.jobs_completed as f64),
            ),
            (
                "batch_items".to_string(),
                Json::Number(self.batch_items as f64),
            ),
            (
                "server_phases".to_string(),
                Json::Object(vec![
                    (
                        "queue_wait_mean_ms".to_string(),
                        Json::Number(round3(self.queue_wait_mean_ms)),
                    ),
                    (
                        "solve_mean_ms".to_string(),
                        Json::Number(round3(self.solve_mean_ms)),
                    ),
                ]),
            ),
            (
                "trace_lines".to_string(),
                Json::Number(self.trace_lines as f64),
            ),
            (
                "cache".to_string(),
                Json::Object(vec![
                    ("hits".to_string(), Json::Number(self.cache_hits as f64)),
                    ("misses".to_string(), Json::Number(self.cache_misses as f64)),
                    (
                        "dedup_joins".to_string(),
                        Json::Number(self.dedup_joins as f64),
                    ),
                    (
                        "hit_rate".to_string(),
                        Json::Number(round3(self.hit_rate())),
                    ),
                ]),
            ),
        ])
    }

    /// The report as standalone JSON text.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json_string()
    }
}

/// Threshold gates for `--check`.
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// Minimum acceptable cache hit rate.
    pub min_hit_rate: f64,
    /// Maximum acceptable p99 request latency, in milliseconds.
    pub max_p99_ms: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Self {
            min_hit_rate: 0.35,
            max_p99_ms: 2000.0,
        }
    }
}

/// Evaluates the `--check` gates; returns human-readable lines and
/// whether all gates passed.
pub fn check_report(report: &LoadReport, thresholds: &Thresholds) -> (Vec<String>, bool) {
    let mut lines = Vec::new();
    let mut ok = true;
    let mut gate = |pass: bool, line: String| {
        lines.push(format!("{} {line}", if pass { "ok  " } else { "FAIL" }));
        ok &= pass;
    };
    gate(
        report.failures == 0,
        format!("failures = {} (required: 0)", report.failures),
    );
    gate(
        report.hit_rate() >= thresholds.min_hit_rate,
        format!(
            "cache hit rate = {:.3} (required: >= {:.3})",
            report.hit_rate(),
            thresholds.min_hit_rate
        ),
    );
    gate(
        report.request_latency.p99_ms <= thresholds.max_p99_ms,
        format!(
            "p99 request latency = {:.3} ms (required: <= {:.1} ms)",
            report.request_latency.p99_ms, thresholds.max_p99_ms
        ),
    );
    gate(
        report.reconnects == 0,
        format!(
            "keep-alive reconnects = {} (required: 0)",
            report.reconnects
        ),
    );
    (lines, ok)
}

/// Merges the report into an existing `BENCH_*.json` document under a
/// top-level `load` key, preserving the rest of the document byte for
/// byte (source order is kept by the serializer).
pub fn merge_into_bench(bench_text: &str, report: &LoadReport) -> Result<String, String> {
    let mut doc = Json::parse(bench_text).map_err(|e| format!("malformed bench JSON: {e}"))?;
    if !matches!(doc, Json::Object(_)) {
        return Err("bench JSON is not an object".to_string());
    }
    doc.set("load", report.to_json_value());
    Ok(doc.to_json_string())
}

/// One keep-alive HTTP/1.1 client connection with response framing by
/// `Content-Length` (which the server always sends).
struct HttpClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    connects: u64,
}

impl HttpClient {
    fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            stream: None,
            connects: 0,
        }
    }

    /// Re-opens beyond the first connect: keep-alive is not being
    /// honored (or the server closed on us).
    fn reconnects(&self) -> u64 {
        self.connects.saturating_sub(1)
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        let result = self.request_inner(method, path, body);
        if result.is_err() {
            // The stream is not trustworthy after a transport error.
            self.stream = None;
        }
        result
    }

    fn request_inner(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, String)> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, SOCKET_TIMEOUT)?;
            stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
            stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
            self.connects += 1;
        }
        let stream = self.stream.as_mut().expect("connected above");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: load\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(head.as_bytes())?;

        // Read headers.
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let header_end = loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head_text = String::from_utf8_lossy(&buf[..header_end]).to_string();
        let status: u16 = head_text
            .split(' ')
            .nth(1)
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "malformed status line"))?;
        let mut content_length = 0usize;
        let mut close = false;
        for line in head_text.lines().skip(1) {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    std::io::Error::new(ErrorKind::InvalidData, "bad Content-Length")
                })?;
            } else if name.eq_ignore_ascii_case("connection")
                && value.trim().eq_ignore_ascii_case("close")
            {
                close = true;
            }
        }
        let body_start = header_end + 4;
        while buf.len() < body_start + content_length {
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed mid-body",
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        }
        let body =
            String::from_utf8_lossy(&buf[body_start..body_start + content_length]).to_string();
        if close {
            self.stream = None;
        }
        Ok((status, body))
    }
}

/// Per-client tally, merged after the join.
#[derive(Default)]
struct ClientTally {
    request_ms: Vec<f64>,
    job_ms: Vec<f64>,
    requests: u64,
    failures: u64,
    reconnects: u64,
    jobs_submitted: u64,
    jobs_completed: u64,
    batch_items: u64,
}

/// The shared pool of repeated instances: every client draws the same
/// texts, so repeats collide across clients (cache hits / dedup joins).
fn instance_pool(seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = GeneratorConfig {
        task_count: 5,
        max_side: 3,
        max_duration: 3,
        arc_percent: 30,
    };
    (0..POOL_SIZE)
        .map(|_| format::format_instance(&random_instance(&config, &mut rng)))
        .collect()
}

/// A never-repeated instance, unique per (seed, client, op).
fn fresh_instance(seed: u64, client: usize, op: usize) -> String {
    let salt = (client as u64) << 32 | op as u64;
    let mut rng =
        StdRng::seed_from_u64(seed ^ 0xfeed_f00d ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let config = GeneratorConfig {
        task_count: 5,
        max_side: 3,
        max_duration: 3,
        arc_percent: 30,
    };
    format::format_instance(&random_instance(&config, &mut rng))
}

/// A `POST /jobs` body for one instance.
fn job_body(name: &str, instance: &str) -> String {
    Json::Object(vec![
        ("kind".to_string(), Json::String("opp".to_string())),
        ("name".to_string(), Json::String(name.to_string())),
        ("instance".to_string(), Json::String(instance.to_string())),
    ])
    .to_json_string()
}

/// Submits one job and drives it to a terminal state over the client's
/// persistent connection.
fn run_job(client: &mut HttpClient, tally: &mut ClientTally, name: &str, instance: &str) {
    let body = job_body(name, instance);
    let start = Instant::now();
    let reply = timed_request(client, tally, "POST", "/jobs", &body);
    tally.jobs_submitted += 1;
    let Some((status, reply)) = reply else {
        tally.failures += 1;
        return;
    };
    if status != 202 {
        tally.failures += 1;
        return;
    }
    let Ok(doc) = Json::parse(&reply) else {
        tally.failures += 1;
        return;
    };
    let (Some(id), word) = (
        doc.get("id").and_then(Json::as_u64),
        doc.get("status").and_then(Json::as_str).unwrap_or(""),
    ) else {
        tally.failures += 1;
        return;
    };
    if word == "done" {
        // Cache hit: the job was born finished.
        tally.job_ms.push(start.elapsed().as_secs_f64() * 1000.0);
        tally.jobs_completed += 1;
        return;
    }
    poll_job(client, tally, id, start);
}

/// Polls one job id to a terminal state, recording its latency.
fn poll_job(client: &mut HttpClient, tally: &mut ClientTally, id: u64, start: Instant) {
    let deadline = Instant::now() + JOB_DEADLINE;
    loop {
        let reply = timed_request(client, tally, "GET", &format!("/jobs/{id}"), "");
        let Some((status, reply)) = reply else {
            tally.failures += 1;
            return;
        };
        if status != 200 {
            tally.failures += 1;
            return;
        }
        let word = Json::parse(&reply)
            .ok()
            .and_then(|doc| doc.get("status").and_then(Json::as_str).map(str::to_string))
            .unwrap_or_default();
        match word.as_str() {
            "queued" | "running" => {
                if Instant::now() > deadline {
                    tally.failures += 1;
                    return;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            "done" => {
                tally.job_ms.push(start.elapsed().as_secs_f64() * 1000.0);
                tally.jobs_completed += 1;
                return;
            }
            _ => {
                tally.failures += 1;
                return;
            }
        }
    }
}

/// Submits a batch and drives every admitted item to a terminal state.
fn run_batch(client: &mut HttpClient, tally: &mut ClientTally, items: &[(String, String)]) {
    let jobs: Vec<Json> = items
        .iter()
        .map(|(name, instance)| {
            Json::parse(&job_body(name, instance)).expect("own body is valid JSON")
        })
        .collect();
    let body = Json::Object(vec![("jobs".to_string(), Json::Array(jobs))]).to_json_string();
    let start = Instant::now();
    let reply = timed_request(client, tally, "POST", "/jobs:batch", &body);
    tally.batch_items += items.len() as u64;
    tally.jobs_submitted += items.len() as u64;
    let Some((status, reply)) = reply else {
        tally.failures += items.len() as u64;
        return;
    };
    if status != 200 {
        tally.failures += items.len() as u64;
        return;
    }
    let Ok(doc) = Json::parse(&reply) else {
        tally.failures += items.len() as u64;
        return;
    };
    let Some(entries) = doc.get("jobs").and_then(Json::as_array) else {
        tally.failures += items.len() as u64;
        return;
    };
    for entry in entries {
        match (
            entry.get("id").and_then(Json::as_u64),
            entry.get("status").and_then(Json::as_str),
        ) {
            (Some(_), Some("done")) => {
                tally.job_ms.push(start.elapsed().as_secs_f64() * 1000.0);
                tally.jobs_completed += 1;
            }
            (Some(id), _) => poll_job(client, tally, id, start),
            (None, _) => tally.failures += 1,
        }
    }
}

/// One timed HTTP round trip; `None` (plus nothing recorded) on a
/// transport error.
fn timed_request(
    client: &mut HttpClient,
    tally: &mut ClientTally,
    method: &str,
    path: &str,
    body: &str,
) -> Option<(u16, String)> {
    let t0 = Instant::now();
    let result = client.request(method, path, body);
    tally.requests += 1;
    match result {
        Ok(reply) => {
            tally.request_ms.push(t0.elapsed().as_secs_f64() * 1000.0);
            Some(reply)
        }
        Err(_) => None,
    }
}

/// The script of one client thread.
fn client_loop(addr: SocketAddr, options: &LoadOptions, index: usize) -> ClientTally {
    let mut tally = ClientTally::default();
    let mut client = HttpClient::new(addr);
    let pool = instance_pool(options.seed);
    let mut rng = StdRng::seed_from_u64(options.seed.wrapping_add(1 + index as u64));
    for op in 0..options.ops_per_client {
        let roll = rng.gen_range(0..100u32);
        if roll < REPEAT_PERCENT {
            let slot = rng.gen_range(0..pool.len());
            let instance = pool[slot].clone();
            run_job(&mut client, &mut tally, &format!("pool-{slot}"), &instance);
        } else if roll < REPEAT_PERCENT + BATCH_PERCENT {
            // Two pool draws plus one fresh item per batch: batches hit
            // the cache *and* feed it.
            let a = rng.gen_range(0..pool.len());
            let b = rng.gen_range(0..pool.len());
            let items = vec![
                (format!("pool-{a}"), pool[a].clone()),
                (format!("pool-{b}"), pool[b].clone()),
                (
                    format!("c{index}-op{op}-batch"),
                    fresh_instance(options.seed, index, op),
                ),
            ];
            run_batch(&mut client, &mut tally, &items);
        } else {
            let instance = fresh_instance(options.seed, index, op);
            run_job(
                &mut client,
                &mut tally,
                &format!("c{index}-op{op}"),
                &instance,
            );
        }
    }
    tally.reconnects = client.reconnects();
    tally
}

/// Value of one series in a Prometheus text exposition, as a float
/// (histogram sums need the fraction a counter scrape would truncate).
fn scrape_value(exposition: &str, name: &str) -> f64 {
    exposition
        .lines()
        .find_map(|line| {
            let (series, value) = line.rsplit_once(' ')?;
            (series == name).then(|| value.parse::<f64>().ok())?
        })
        .unwrap_or(0.0)
}

/// Value of a counter in a Prometheus text exposition.
fn scrape_counter(exposition: &str, name: &str) -> u64 {
    scrape_value(exposition, name) as u64
}

/// Mean of a histogram family in milliseconds (`_sum / _count`); 0.0
/// before any observation.
fn scraped_mean_ms(exposition: &str, family: &str) -> f64 {
    let sum = scrape_value(exposition, &format!("{family}_sum"));
    let count = scrape_value(exposition, &format!("{family}_count"));
    if count > 0.0 {
        sum / count * 1000.0
    } else {
        0.0
    }
}

/// Submits one traced job and consumes its `/jobs/{id}/events` NDJSON
/// stream over a dedicated raw connection — [`HttpClient`] frames by
/// `Content-Length` and cannot read a chunked response. Returns the
/// number of stream lines, terminal end record included.
fn smoke_event_stream(addr: SocketAddr, seed: u64) -> Result<u64, String> {
    let mut client = HttpClient::new(addr);
    let doc = Json::Object(vec![
        ("kind".to_string(), Json::String("opp".to_string())),
        ("name".to_string(), Json::String("smoke-trace".to_string())),
        (
            "instance".to_string(),
            Json::String(fresh_instance(seed, 0xffff, 0)),
        ),
        ("trace".to_string(), Json::Bool(true)),
        // Force a real search so the stream carries events, not just the
        // end record.
        ("use_heuristics".to_string(), Json::Bool(false)),
    ])
    .to_json_string();
    let (status, reply) = client
        .request("POST", "/jobs", &doc)
        .map_err(|e| format!("traced submission failed: {e}"))?;
    if status != 202 {
        return Err(format!("traced submission returned {status}"));
    }
    let id = Json::parse(&reply)
        .ok()
        .and_then(|d| d.get("id").and_then(Json::as_u64))
        .ok_or("traced submission reply lacks an id")?;

    let mut stream = TcpStream::connect_timeout(&addr, SOCKET_TIMEOUT)
        .map_err(|e| format!("event stream connect failed: {e}"))?;
    stream
        .set_read_timeout(Some(JOB_DEADLINE))
        .map_err(|e| format!("event stream socket: {e}"))?;
    stream
        .write_all(format!("GET /jobs/{id}/events HTTP/1.1\r\nHost: load\r\n\r\n").as_bytes())
        .map_err(|e| format!("event stream request failed: {e}"))?;

    // Read headers.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("event stream read failed: {e}"))?;
        if n == 0 {
            return Err("server closed the event stream before headers".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).to_ascii_lowercase();
    if !head.starts_with("http/1.1 200") {
        return Err(format!(
            "event stream returned {}",
            head.lines().next().unwrap_or("<empty>")
        ));
    }
    if !head.contains("transfer-encoding: chunked") {
        return Err("event stream response is not chunked".to_string());
    }
    buf.drain(..header_end + 4);

    // Decode chunked framing until the terminating zero-size chunk.
    let mut body = String::new();
    loop {
        let line_end = loop {
            if let Some(pos) = buf.windows(2).position(|w| w == b"\r\n") {
                break pos;
            }
            let n = stream
                .read(&mut chunk)
                .map_err(|e| format!("event stream read failed: {e}"))?;
            if n == 0 {
                return Err("server closed mid-stream".to_string());
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let size = usize::from_str_radix(String::from_utf8_lossy(&buf[..line_end]).trim(), 16)
            .map_err(|_| "malformed chunk size".to_string())?;
        let frame_end = line_end + 2 + size + 2;
        while buf.len() < frame_end {
            let n = stream
                .read(&mut chunk)
                .map_err(|e| format!("event stream read failed: {e}"))?;
            if n == 0 {
                return Err("server closed mid-chunk".to_string());
            }
            buf.extend_from_slice(&chunk[..n]);
        }
        if &buf[frame_end - 2..frame_end] != b"\r\n" {
            return Err("chunk lacks its CRLF trailer".to_string());
        }
        if size == 0 {
            break;
        }
        body.push_str(&String::from_utf8_lossy(
            &buf[line_end + 2..line_end + 2 + size],
        ));
        buf.drain(..frame_end);
    }

    let lines: Vec<&str> = body.lines().filter(|l| !l.trim().is_empty()).collect();
    match lines.last() {
        Some(last) if last.contains("\"event\":\"end\"") => Ok(lines.len() as u64),
        Some(last) => Err(format!("stream ended without an end record: {last}")),
        None => Err("stream carried no lines at all".to_string()),
    }
}

/// Runs the workload and produces a report.
pub fn run(options: &LoadOptions) -> Result<LoadReport, String> {
    // Boot an in-process server unless pointed at an external one.
    let server = match &options.addr {
        Some(_) => None,
        None => Some(
            recopack_serve::Server::bind(&recopack_serve::ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: options.workers.max(1),
                queue_depth: options.clients * 8 + 16,
                max_connections: options.clients + 8,
                ..recopack_serve::ServeConfig::default()
            })
            .map_err(|e| format!("cannot bind in-process server: {e}"))?,
        ),
    };
    let addr: SocketAddr = match (&server, &options.addr) {
        (Some(server), _) => server.local_addr(),
        (None, Some(text)) => text
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve {text}: {e}"))?
            .next()
            .ok_or_else(|| format!("{text} resolves to no address"))?,
        (None, None) => unreachable!("server booted when no addr given"),
    };

    let start = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..options.clients.max(1))
            .map(|index| scope.spawn(move || client_loop(addr, options, index)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client threads do not panic"))
            .collect()
    });
    let wall_s = start.elapsed().as_secs_f64();

    // The smoke preset additionally exercises one streamed `/events`
    // subscriber end to end before the final scrape.
    let trace_lines = if options.smoke {
        smoke_event_stream(addr, options.seed)?
    } else {
        0
    };

    // Final scrape for the server-side cache truth.
    let mut scraper = HttpClient::new(addr);
    let exposition = match scraper.request("GET", "/metrics", "") {
        Ok((200, body)) => body,
        Ok((status, _)) => return Err(format!("/metrics scrape returned {status}")),
        Err(e) => return Err(format!("/metrics scrape failed: {e}")),
    };

    if let Some(server) = server {
        server.shutdown();
        server.join();
    }

    let mut request_ms = Vec::new();
    let mut job_ms = Vec::new();
    let mut report = LoadReport {
        label: options.label.clone(),
        smoke: options.smoke,
        clients: options.clients.max(1),
        requests: 0,
        failures: 0,
        reconnects: 0,
        wall_s,
        throughput_rps: 0.0,
        request_latency: Percentiles::from_samples(&mut []),
        job_latency: Percentiles::from_samples(&mut []),
        jobs_submitted: 0,
        jobs_completed: 0,
        batch_items: 0,
        cache_hits: scrape_counter(&exposition, "recopack_cache_hits_total"),
        cache_misses: scrape_counter(&exposition, "recopack_cache_misses_total"),
        dedup_joins: scrape_counter(&exposition, "recopack_jobs_deduplicated_total"),
        queue_wait_mean_ms: scraped_mean_ms(&exposition, "recopack_job_queue_wait_seconds"),
        solve_mean_ms: scraped_mean_ms(&exposition, "recopack_job_solve_seconds"),
        trace_lines,
    };
    for mut tally in tallies {
        request_ms.append(&mut tally.request_ms);
        job_ms.append(&mut tally.job_ms);
        report.requests += tally.requests;
        report.failures += tally.failures;
        report.reconnects += tally.reconnects;
        report.jobs_submitted += tally.jobs_submitted;
        report.jobs_completed += tally.jobs_completed;
        report.batch_items += tally.batch_items;
    }
    report.request_latency = Percentiles::from_samples(&mut request_ms);
    report.job_latency = Percentiles::from_samples(&mut job_ms);
    report.throughput_rps = if wall_s > 0.0 {
        report.requests as f64 / wall_s
    } else {
        0.0
    };
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_samples() {
        let mut samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::from_samples(&mut samples);
        assert_eq!(p.p50_ms, 51.0);
        assert_eq!(p.p99_ms, 99.0);
        assert_eq!(p.max_ms, 100.0);
        assert!((p.mean_ms - 50.5).abs() < 1e-9);
        let p = Percentiles::from_samples(&mut []);
        assert_eq!(p.p99_ms, 0.0);
    }

    #[test]
    fn pool_is_deterministic_and_fresh_instances_are_distinct() {
        assert_eq!(instance_pool(9), instance_pool(9));
        assert_ne!(instance_pool(9), instance_pool(10));
        assert_ne!(fresh_instance(9, 0, 0), fresh_instance(9, 0, 1));
        assert_ne!(fresh_instance(9, 0, 0), fresh_instance(9, 1, 0));
    }

    #[test]
    fn merge_preserves_the_rest_of_the_bench_document() {
        let report = LoadReport {
            label: "T".to_string(),
            smoke: true,
            clients: 1,
            requests: 10,
            failures: 0,
            reconnects: 0,
            wall_s: 0.5,
            throughput_rps: 20.0,
            request_latency: Percentiles::from_samples(&mut [1.0, 2.0]),
            job_latency: Percentiles::from_samples(&mut [3.0]),
            jobs_submitted: 4,
            jobs_completed: 4,
            batch_items: 0,
            cache_hits: 3,
            cache_misses: 1,
            dedup_joins: 0,
            queue_wait_mean_ms: 0.4,
            solve_mean_ms: 2.5,
            trace_lines: 0,
        };
        let bench = r#"{"schema_version":2,"label":"PR7","totals":{"nodes":5}}"#;
        let merged = merge_into_bench(bench, &report).expect("merges");
        let doc = Json::parse(&merged).expect("valid JSON");
        assert_eq!(
            doc.get("totals")
                .and_then(|t| t.get("nodes"))
                .and_then(Json::as_u64),
            Some(5),
            "solver totals survive the merge"
        );
        let load = doc.get("load").expect("load section");
        assert_eq!(
            load.get("cache")
                .and_then(|c| c.get("hit_rate"))
                .and_then(Json::as_f64),
            Some(0.75)
        );
        assert!(merge_into_bench("[]", &report).is_err());
    }

    #[test]
    fn gates_fail_on_failures_and_low_hit_rate() {
        let mut report = LoadReport {
            label: "T".to_string(),
            smoke: true,
            clients: 1,
            requests: 10,
            failures: 0,
            reconnects: 0,
            wall_s: 0.5,
            throughput_rps: 20.0,
            request_latency: Percentiles::from_samples(&mut [1.0, 2.0]),
            job_latency: Percentiles::from_samples(&mut [3.0]),
            jobs_submitted: 4,
            jobs_completed: 4,
            batch_items: 0,
            cache_hits: 3,
            cache_misses: 1,
            dedup_joins: 0,
            queue_wait_mean_ms: 0.4,
            solve_mean_ms: 2.5,
            trace_lines: 0,
        };
        let thresholds = Thresholds::default();
        let (_, ok) = check_report(&report, &thresholds);
        assert!(ok);
        report.failures = 1;
        let (lines, ok) = check_report(&report, &thresholds);
        assert!(!ok);
        assert!(lines.iter().any(|l| l.starts_with("FAIL")), "{lines:?}");
        report.failures = 0;
        report.cache_hits = 0;
        report.cache_misses = 100;
        let (_, ok) = check_report(&report, &thresholds);
        assert!(!ok);
    }

    /// The whole stack end to end: in-process server, keep-alive
    /// clients, a seeded mix, and the metrics scrape.
    #[test]
    fn smoke_run_against_an_in_process_server() {
        let report = run(&LoadOptions {
            clients: 2,
            ops_per_client: 8,
            seed: 11,
            smoke: true,
            workers: 2,
            ..LoadOptions::default()
        })
        .expect("run succeeds");
        assert_eq!(report.failures, 0, "{report:?}");
        assert_eq!(report.reconnects, 0, "keep-alive must hold");
        assert!(report.requests > 16, "{report:?}");
        assert_eq!(report.jobs_completed, report.jobs_submitted);
        assert!(
            report.cache_hits + report.dedup_joins > 0,
            "the repeated mix must produce shared work: {report:?}"
        );
        assert!(report.request_latency.p99_ms >= report.request_latency.p50_ms);
        // Real jobs ran, so the server-side phase split has observations
        // and the smoke preset's `/events` subscriber saw at least the
        // terminal end record.
        assert!(report.solve_mean_ms > 0.0, "{report:?}");
        assert!(report.queue_wait_mean_ms >= 0.0, "{report:?}");
        assert!(report.trace_lines >= 1, "{report:?}");
        // The report parses back as well-formed JSON.
        let doc = Json::parse(&report.to_json()).expect("report JSON parses");
        assert_eq!(
            doc.get("tool").and_then(Json::as_str),
            Some("recopack-load")
        );
        let phases = doc.get("server_phases").expect("server_phases section");
        assert!(
            phases
                .get("solve_mean_ms")
                .and_then(Json::as_f64)
                .is_some_and(|v| v > 0.0),
            "{doc:?}"
        );
    }
}
