//! `recopack-load`: drive a `recopack serve` instance with concurrent
//! keep-alive clients and report latency percentiles plus cache
//! effectiveness.
//!
//! ```text
//! recopack-load [--smoke] [--addr HOST:PORT] [--clients N] [--ops N]
//!               [--seed N] [--workers N] [--label NAME] [--out PATH]
//!               [--merge BENCH_JSON] [--check] [--min-hit-rate F]
//!               [--max-p99-ms F]
//! ```
//!
//! * `--smoke` — small CI preset (4 clients × 12 ops) unless `--clients`
//!   / `--ops` override it;
//! * `--addr` — target an external server instead of booting one
//!   in-process on an ephemeral port;
//! * `--out PATH` — standalone report path (default `LOAD_PR7.json`);
//! * `--merge PATH` — additionally merge the report into an existing
//!   `BENCH_*.json` under a top-level `load` key;
//! * `--check` — gate on zero failures, minimum cache hit rate, a p99
//!   bound, and zero keep-alive reconnects; exits nonzero on failure.

use std::process::ExitCode;

use recopack_load::{check_report, merge_into_bench, run, LoadOptions, Thresholds};

struct Args {
    options: LoadOptions,
    out: String,
    merge: Option<String>,
    check: bool,
    thresholds: Thresholds,
}

fn parse_args() -> Result<Args, String> {
    let mut options = LoadOptions::default();
    let mut out = "LOAD_PR7.json".to_string();
    let mut merge = None;
    let mut check = false;
    let mut thresholds = Thresholds::default();
    let mut explicit_clients = None;
    let mut explicit_ops = None;

    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        let mut value = |flag: &str| iter.next().ok_or(format!("{flag} requires a value"));
        match a.as_str() {
            "--smoke" => options.smoke = true,
            "--addr" => options.addr = Some(value("--addr")?),
            "--clients" => {
                explicit_clients = Some(parse_positive("--clients", &value("--clients")?)?);
            }
            "--ops" => explicit_ops = Some(parse_positive("--ops", &value("--ops")?)?),
            "--seed" => {
                let v = value("--seed")?;
                options.seed = v
                    .parse()
                    .map_err(|_| format!("--seed expects a number, got {v:?}"))?;
            }
            "--workers" => options.workers = parse_positive("--workers", &value("--workers")?)?,
            "--label" => options.label = value("--label")?,
            "--out" => out = value("--out")?,
            "--merge" => merge = Some(value("--merge")?),
            "--check" => check = true,
            "--min-hit-rate" => {
                let v = value("--min-hit-rate")?;
                thresholds.min_hit_rate = v
                    .parse()
                    .map_err(|_| format!("--min-hit-rate expects a number, got {v:?}"))?;
            }
            "--max-p99-ms" => {
                let v = value("--max-p99-ms")?;
                thresholds.max_p99_ms = v
                    .parse()
                    .map_err(|_| format!("--max-p99-ms expects a number, got {v:?}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: recopack-load [--smoke] [--addr HOST:PORT] [--clients N] [--ops N] \
                     [--seed N] [--workers N] [--label NAME] [--out PATH] [--merge BENCH_JSON] \
                     [--check] [--min-hit-rate F] [--max-p99-ms F]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if options.smoke {
        options.clients = 4;
        options.ops_per_client = 12;
    }
    if let Some(clients) = explicit_clients {
        options.clients = clients;
    }
    if let Some(ops) = explicit_ops {
        options.ops_per_client = ops;
    }
    Ok(Args {
        options,
        out,
        merge,
        check,
        thresholds,
    })
}

fn parse_positive(flag: &str, value: &str) -> Result<usize, String> {
    match value.parse() {
        Ok(0) | Err(_) => Err(format!("{flag} expects a positive number, got {value:?}")),
        Ok(n) => Ok(n),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let report = match run(&args.options) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("load run failed: {message}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{} clients x {} ops against {}",
        report.clients,
        args.options.ops_per_client,
        args.options
            .addr
            .as_deref()
            .unwrap_or("in-process server (ephemeral port)"),
    );
    println!(
        "requests {:>8}   failures {:>4}   reconnects {:>4}   wall {:>8.3} s   {:>10.1} req/s",
        report.requests, report.failures, report.reconnects, report.wall_s, report.throughput_rps
    );
    println!(
        "request latency  p50 {:>8.3} ms   p90 {:>8.3} ms   p99 {:>8.3} ms   max {:>8.3} ms",
        report.request_latency.p50_ms,
        report.request_latency.p90_ms,
        report.request_latency.p99_ms,
        report.request_latency.max_ms
    );
    println!(
        "job latency      p50 {:>8.3} ms   p90 {:>8.3} ms   p99 {:>8.3} ms   max {:>8.3} ms",
        report.job_latency.p50_ms,
        report.job_latency.p90_ms,
        report.job_latency.p99_ms,
        report.job_latency.max_ms
    );
    println!(
        "server phases    queue-wait mean {:>6.3} ms   solve mean {:>6.3} ms",
        report.queue_wait_mean_ms, report.solve_mean_ms
    );
    if report.smoke {
        println!(
            "event stream     {} NDJSON lines from the traced smoke job (end record included)",
            report.trace_lines
        );
    }
    println!(
        "jobs {} submitted ({} via batch), {} completed; cache {} hits / {} misses \
         (rate {:.3}), {} dedup joins",
        report.jobs_submitted,
        report.batch_items,
        report.jobs_completed,
        report.cache_hits,
        report.cache_misses,
        report.hit_rate(),
        report.dedup_joins
    );

    if let Err(e) = std::fs::write(&args.out, report.to_json()) {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("report written to {}", args.out);

    if let Some(bench_path) = &args.merge {
        let text = match std::fs::read_to_string(bench_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {bench_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match merge_into_bench(&text, &report) {
            Ok(merged) => {
                if let Err(e) = std::fs::write(bench_path, merged) {
                    eprintln!("cannot write {bench_path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("load section merged into {bench_path}");
            }
            Err(e) => {
                eprintln!("cannot merge into {bench_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if !args.check {
        return ExitCode::SUCCESS;
    }
    let (lines, ok) = check_report(&report, &args.thresholds);
    println!("\nload gates:");
    for line in &lines {
        println!("  {line}");
    }
    if ok {
        println!("gate passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("load gate failed");
        ExitCode::FAILURE
    }
}
