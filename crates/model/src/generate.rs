//! Random instance generators for tests and benchmarks.
//!
//! Two families:
//!
//! * [`random_instance`] — tasks with random shapes, a random layered
//!   precedence DAG, and a container that may or may not admit a packing
//!   (exercises both solver answers);
//! * [`layered_instance`] — pipeline-shaped layered DAGs, the structure of
//!   real dataflow graphs like the paper's benchmarks;
//! * [`random_feasible_instance`] — built *from* a random non-overlapping
//!   placement, so the instance is feasible by construction and the sampled
//!   placement doubles as a witness. Precedence arcs are sampled only
//!   between tasks whose sampled intervals are actually ordered, keeping the
//!   witness valid.

use rand::Rng;

use crate::{Chip, Instance, Placement, Task};

/// Parameters for the random generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Number of tasks.
    pub task_count: usize,
    /// Maximum task extent per spatial dimension (inclusive).
    pub max_side: u64,
    /// Maximum task duration (inclusive).
    pub max_duration: u64,
    /// Precedence arc probability, in percent (0–100).
    pub arc_percent: u32,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            task_count: 6,
            max_side: 4,
            max_duration: 4,
            arc_percent: 25,
        }
    }
}

/// Generates an instance with random task shapes and a random precedence
/// DAG on a container sized near the volume bound — roughly half of the
/// instances drawn this way are feasible, which is what decision-procedure
/// tests want.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use recopack_model::generate::{random_instance, GeneratorConfig};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let instance = random_instance(&GeneratorConfig::default(), &mut rng);
/// assert_eq!(instance.task_count(), 6);
/// ```
pub fn random_instance<R: Rng>(config: &GeneratorConfig, rng: &mut R) -> Instance {
    let tasks: Vec<Task> = (0..config.task_count)
        .map(|i| {
            Task::new(
                format!("t{i}"),
                rng.gen_range(1..=config.max_side),
                rng.gen_range(1..=config.max_side),
                rng.gen_range(1..=config.max_duration),
            )
        })
        .collect();
    let max_w = tasks.iter().map(Task::width).max().unwrap_or(1);
    let max_h = tasks.iter().map(Task::height).max().unwrap_or(1);
    let volume: u64 = tasks.iter().map(Task::volume).sum();

    let mut builder = Instance::builder();
    for t in &tasks {
        builder = builder.task(t.clone());
    }
    // Layered DAG: arcs only low id -> high id keeps it acyclic.
    let mut total_serial = 0u64;
    for v in 1..config.task_count {
        for u in 0..v {
            if rng.gen_range(0..100) < config.arc_percent {
                builder = builder.precedence(format!("t{u}"), format!("t{v}"));
            }
        }
    }
    for t in &tasks {
        total_serial += t.duration();
    }

    // Container: spatial sides at least the largest task, sized so the
    // volume bound is in play; horizon between critical-path-ish and serial.
    let side_w = rng.gen_range(max_w..=max_w + config.max_side);
    let side_h = rng.gen_range(max_h..=max_h + config.max_side);
    let min_t = tasks.iter().map(Task::duration).max().unwrap_or(1);
    let vol_t = volume.div_ceil(side_w * side_h).max(min_t);
    let horizon = rng.gen_range(vol_t..=vol_t.max(total_serial));
    builder
        .chip(Chip::new(side_w, side_h))
        .horizon(horizon)
        .build()
        .expect("generated instances are structurally valid")
}

/// Generates a feasible instance together with a witness placement.
///
/// Boxes are placed one by one at uniformly random positions inside the
/// container, rejecting collisions; precedence arcs are then sampled only
/// between pairs whose placed time intervals are disjoint and ordered, so
/// the returned placement verifies by construction.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use recopack_model::generate::{random_feasible_instance, GeneratorConfig};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let (instance, witness) = random_feasible_instance(&GeneratorConfig::default(), &mut rng);
/// assert!(witness.verify(&instance).is_ok());
/// ```
pub fn random_feasible_instance<R: Rng>(
    config: &GeneratorConfig,
    rng: &mut R,
) -> (Instance, Placement) {
    let n = config.task_count;
    let tasks: Vec<Task> = (0..n)
        .map(|i| {
            Task::new(
                format!("t{i}"),
                rng.gen_range(1..=config.max_side),
                rng.gen_range(1..=config.max_side),
                rng.gen_range(1..=config.max_duration),
            )
        })
        .collect();
    // Container generous enough that rejection sampling terminates fast.
    let side = 2 * config.max_side + config.max_side * (n as u64) / 2;
    let horizon = 2 * config.max_duration + config.max_duration * (n as u64) / 2;

    let mut origins: Vec<[u64; 3]> = Vec::with_capacity(n);
    for t in &tasks {
        let origin = loop {
            let candidate = [
                rng.gen_range(0..=side - t.width()),
                rng.gen_range(0..=side - t.height()),
                rng.gen_range(0..=horizon - t.duration()),
            ];
            let collides = origins.iter().zip(&tasks).any(|(o, placed)| {
                (0..3).all(|d| {
                    let size = [placed.width(), placed.height(), placed.duration()];
                    let tsize = [t.width(), t.height(), t.duration()];
                    candidate[d] < o[d] + size[d] && o[d] < candidate[d] + tsize[d]
                })
            });
            if !collides {
                break candidate;
            }
        };
        origins.push(origin);
    }

    let mut builder = Instance::builder()
        .chip(Chip::new(side, side))
        .horizon(horizon);
    for t in &tasks {
        builder = builder.task(t.clone());
    }
    // Only arcs consistent with the witness: u's interval ends before v's starts.
    for v in 0..n {
        for u in 0..n {
            if u == v {
                continue;
            }
            let u_end = origins[u][2] + tasks[u].duration();
            if u_end <= origins[v][2] && rng.gen_range(0..100) < config.arc_percent {
                builder = builder.precedence(format!("t{u}"), format!("t{v}"));
            }
        }
    }
    let instance = builder
        .build()
        .expect("witness-ordered arcs cannot form cycles");
    let placement = Placement::new(origins, &instance);
    debug_assert_eq!(placement.verify(&instance), Ok(()));
    (instance, placement)
}

/// Parameters for [`layered_instance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayeredConfig {
    /// Number of precedence layers.
    pub layers: usize,
    /// Tasks per layer.
    pub width: usize,
    /// Maximum task extent per spatial dimension (inclusive).
    pub max_side: u64,
    /// Maximum task duration (inclusive).
    pub max_duration: u64,
    /// Probability (percent) of an arc between consecutive-layer tasks.
    pub arc_percent: u32,
}

impl Default for LayeredConfig {
    fn default() -> Self {
        Self {
            layers: 3,
            width: 3,
            max_side: 4,
            max_duration: 3,
            arc_percent: 50,
        }
    }
}

/// Generates a layered ("pipeline-shaped") instance: `layers × width` tasks
/// where precedence arcs only connect consecutive layers — the structure of
/// dataflow graphs like the paper's DE and video-codec benchmarks.
///
/// Every task is guaranteed at least one predecessor in the previous layer
/// (except layer 0), so the critical path spans all layers. The container is
/// sized so instances are usually feasible but tight.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use recopack_model::generate::{layered_instance, LayeredConfig};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let instance = layered_instance(&LayeredConfig::default(), &mut rng);
/// assert_eq!(instance.task_count(), 9);
/// assert!(instance.critical_path_length() >= 3);
/// ```
pub fn layered_instance<R: Rng>(config: &LayeredConfig, rng: &mut R) -> Instance {
    let name = |layer: usize, k: usize| format!("l{layer}t{k}");
    let mut builder = Instance::builder();
    let mut max_w = 1;
    let mut max_h = 1;
    let mut volume = 0u64;
    let mut layer_durations = vec![0u64; config.layers];
    for (layer, layer_duration) in layer_durations.iter_mut().enumerate() {
        for k in 0..config.width {
            let t = Task::new(
                name(layer, k),
                rng.gen_range(1..=config.max_side),
                rng.gen_range(1..=config.max_side),
                rng.gen_range(1..=config.max_duration),
            );
            max_w = max_w.max(t.width());
            max_h = max_h.max(t.height());
            volume += t.volume();
            *layer_duration = (*layer_duration).max(t.duration());
            builder = builder.task(t);
        }
    }
    for layer in 1..config.layers {
        for k in 0..config.width {
            let mut has_pred = false;
            for j in 0..config.width {
                if rng.gen_range(0..100) < config.arc_percent {
                    builder = builder.precedence(name(layer - 1, j), name(layer, k));
                    has_pred = true;
                }
            }
            if !has_pred {
                let j = rng.gen_range(0..config.width);
                builder = builder.precedence(name(layer - 1, j), name(layer, k));
            }
        }
    }
    // Chip: room for about half a layer side by side; horizon: the layered
    // makespan with some slack.
    let side_w = max_w + (config.width as u64 / 2) * config.max_side / 2 + 1;
    let side_h = max_h + (config.width as u64 / 2) * config.max_side / 2 + 1;
    let horizon_floor: u64 = layer_durations.iter().sum();
    let horizon = horizon_floor.max(volume.div_ceil(side_w * side_h)) + config.max_duration;
    builder
        .chip(Chip::new(side_w, side_h))
        .horizon(horizon)
        .build()
        .expect("layered instances are structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_instances_are_structurally_valid() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let i = random_instance(&GeneratorConfig::default(), &mut rng);
            assert_eq!(i.task_count(), 6);
            assert!(i.precedence().is_acyclic());
            // Every task fits the chip spatially.
            for t in i.tasks() {
                assert!(t.width() <= i.chip().width());
                assert!(t.height() <= i.chip().height());
            }
        }
    }

    #[test]
    fn feasible_instances_come_with_valid_witnesses() {
        let mut rng = StdRng::seed_from_u64(7);
        for seed in 0..20 {
            let config = GeneratorConfig {
                task_count: 3 + (seed % 5),
                ..GeneratorConfig::default()
            };
            let (i, p) = random_feasible_instance(&config, &mut rng);
            assert_eq!(p.verify(&i), Ok(()), "witness must verify (seed {seed})");
        }
    }

    #[test]
    fn layered_instances_have_spanning_critical_paths() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..10 {
            let config = LayeredConfig::default();
            let i = layered_instance(&config, &mut rng);
            assert_eq!(i.task_count(), config.layers * config.width);
            assert!(i.precedence().is_acyclic());
            // Every non-source task has a predecessor, so the critical path
            // has at least one task per layer.
            assert!(i.critical_path_length() >= config.layers as u64);
            for t in i.tasks() {
                assert!(t.width() <= i.chip().width());
                assert!(t.height() <= i.chip().height());
            }
        }
    }

    #[test]
    fn config_default_is_modest() {
        let c = GeneratorConfig::default();
        assert!(c.task_count <= 8);
        assert!(c.arc_percent <= 100);
    }
}
