//! The reconfigurable chip.

/// A reconfigurable FPGA: a rectangular array of `width × height` identical
/// cells (paper §2.2, "the reconfigurable chip consists of an array of
/// `h_x · h_y` cells").
///
/// # Example
///
/// ```
/// use recopack_model::Chip;
///
/// let chip = Chip::square(32);
/// assert_eq!(chip.area(), 1024);
/// assert!(chip.is_square());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Chip {
    width: u64,
    height: u64,
}

impl Chip {
    /// Creates a `width × height` chip.
    pub fn new(width: u64, height: u64) -> Self {
        Self { width, height }
    }

    /// Creates a square `side × side` chip — the shape optimized by the
    /// base-minimization problem (BMP / MinA&FindS).
    pub fn square(side: u64) -> Self {
        Self::new(side, side)
    }

    /// Number of cell columns.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Number of cell rows.
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Total number of cells.
    pub fn area(&self) -> u64 {
        self.width * self.height
    }

    /// Whether width equals height.
    pub fn is_square(&self) -> bool {
        self.width == self.height
    }
}

impl std::fmt::Display for Chip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_and_rectangular() {
        assert!(Chip::square(16).is_square());
        assert!(!Chip::new(16, 17).is_square());
        assert_eq!(Chip::new(3, 4).area(), 12);
    }

    #[test]
    fn display_format() {
        assert_eq!(Chip::new(64, 32).to_string(), "64x32");
    }
}
