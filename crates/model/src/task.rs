//! Hardware modules (tasks) as three-dimensional boxes.

use crate::Dim;

/// A hardware module: a `width × height` block of FPGA cells that occupies
/// its region for `duration` clock cycles.
///
/// Per the paper's task model (§2.1), I/O overhead is a constant offset
/// folded into the execution time, and reconfiguration overhead "may be
/// modeled by a constant (possibly a different number for each task)". A
/// task therefore carries an optional [`reconfiguration`](Self::reconfiguration)
/// prefix: the cells are held for `reconfiguration + compute_duration`
/// cycles total, which is what [`duration`](Self::duration) reports and what
/// the packing dimensions see. Tasks are not rotatable: a `16 × 1` ALU
/// cannot be placed as `1 × 16`.
///
/// # Example
///
/// ```
/// use recopack_model::{Dim, Task};
///
/// let mul = Task::new("mul", 16, 16, 2);
/// assert_eq!(mul.size(Dim::X), 16);
/// assert_eq!(mul.size(Dim::Time), 2);
/// assert_eq!(mul.volume(), 512);
///
/// let slow_load = mul.with_reconfiguration(3);
/// assert_eq!(slow_load.duration(), 5);
/// assert_eq!(slow_load.compute_duration(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Task {
    name: String,
    width: u64,
    height: u64,
    compute: u64,
    reconfiguration: u64,
}

impl Task {
    /// Creates a task with the given footprint and compute duration and no
    /// reconfiguration overhead.
    ///
    /// Zero extents are representable here and rejected at
    /// [`Instance`](crate::Instance) build time, so that builders can report
    /// all problems at once.
    pub fn new(name: impl Into<String>, width: u64, height: u64, duration: u64) -> Self {
        Self {
            name: name.into(),
            width,
            height,
            compute: duration,
            reconfiguration: 0,
        }
    }

    /// The same task with a per-task constant reconfiguration overhead,
    /// charged before computation while the cells are already claimed
    /// (paper §2.1, "reconfiguration overhead").
    pub fn with_reconfiguration(mut self, cycles: u64) -> Self {
        self.reconfiguration = cycles;
        self
    }

    /// The task's name (unique within an instance).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Spatial width in cells (extent along [`Dim::X`]).
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Spatial height in cells (extent along [`Dim::Y`]).
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Total cycles the cells are occupied: reconfiguration plus compute
    /// (extent along [`Dim::Time`]).
    pub fn duration(&self) -> u64 {
        self.reconfiguration + self.compute
    }

    /// Compute cycles only, excluding reconfiguration.
    pub fn compute_duration(&self) -> u64 {
        self.compute
    }

    /// Reconfiguration overhead in cycles (0 unless set).
    pub fn reconfiguration(&self) -> u64 {
        self.reconfiguration
    }

    /// Extent along a dimension.
    pub fn size(&self, dim: Dim) -> u64 {
        match dim {
            Dim::X => self.width,
            Dim::Y => self.height,
            Dim::Time => self.duration(),
        }
    }

    /// Space-time volume `width × height × duration`.
    pub fn volume(&self) -> u64 {
        self.width * self.height * self.duration()
    }

    /// Spatial area `width × height`.
    pub fn area(&self) -> u64 {
        self.width * self.height
    }
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}x{}x{})",
            self.name,
            self.width,
            self.height,
            self.duration()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let t = Task::new("alu", 16, 1, 1);
        assert_eq!(t.name(), "alu");
        assert_eq!(t.width(), 16);
        assert_eq!(t.height(), 1);
        assert_eq!(t.duration(), 1);
        assert_eq!(t.area(), 16);
        assert_eq!(t.volume(), 16);
    }

    #[test]
    fn size_by_dim_matches_named_accessors() {
        let t = Task::new("m", 3, 5, 7);
        assert_eq!(t.size(Dim::X), t.width());
        assert_eq!(t.size(Dim::Y), t.height());
        assert_eq!(t.size(Dim::Time), t.duration());
    }

    #[test]
    fn reconfiguration_extends_occupancy() {
        let t = Task::new("m", 4, 4, 2).with_reconfiguration(3);
        assert_eq!(t.duration(), 5);
        assert_eq!(t.compute_duration(), 2);
        assert_eq!(t.reconfiguration(), 3);
        assert_eq!(t.size(Dim::Time), 5);
        assert_eq!(t.volume(), 80);
        assert_eq!(t.to_string(), "m (4x4x5)");
    }

    #[test]
    fn display_contains_shape() {
        assert_eq!(Task::new("mul", 16, 16, 2).to_string(), "mul (16x16x2)");
    }
}
