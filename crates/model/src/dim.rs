//! The three packing dimensions.

/// A dimension of the space-time container: chip columns (`X`), chip rows
/// (`Y`), or execution time (`Time`).
///
/// The packing-class solver treats the dimensions symmetrically except that
/// precedence constraints live in [`Dim::Time`].
///
/// # Example
///
/// ```
/// use recopack_model::Dim;
///
/// assert_eq!(Dim::ALL.len(), 3);
/// assert_eq!(Dim::Time.index(), 2);
/// assert_eq!(Dim::ALL[Dim::X.index()], Dim::X);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dim {
    /// Chip columns (spatial width).
    X,
    /// Chip rows (spatial height).
    Y,
    /// Execution time (clock cycles).
    Time,
}

impl Dim {
    /// All three dimensions, in index order.
    pub const ALL: [Dim; 3] = [Dim::X, Dim::Y, Dim::Time];

    /// Dense index `0..3` (X = 0, Y = 1, Time = 2).
    pub const fn index(self) -> usize {
        match self {
            Dim::X => 0,
            Dim::Y => 1,
            Dim::Time => 2,
        }
    }

    /// The dimension with the given dense index, or a typed error when the
    /// index is out of range.
    ///
    /// This is the only index-to-dimension conversion: in-range indices are
    /// normally known statically (iterate [`Dim::ALL`] instead of `0..3`),
    /// and anything dynamic must handle [`DimIndexError`].
    ///
    /// # Example
    ///
    /// ```
    /// use recopack_model::{Dim, DimIndexError};
    ///
    /// assert_eq!(Dim::try_from_index(2), Ok(Dim::Time));
    /// assert_eq!(Dim::try_from_index(3), Err(DimIndexError(3)));
    /// ```
    pub const fn try_from_index(i: usize) -> Result<Dim, DimIndexError> {
        match i {
            0 => Ok(Dim::X),
            1 => Ok(Dim::Y),
            2 => Ok(Dim::Time),
            _ => Err(DimIndexError(i)),
        }
    }

    /// The other two dimensions, in index order.
    pub const fn others(self) -> [Dim; 2] {
        match self {
            Dim::X => [Dim::Y, Dim::Time],
            Dim::Y => [Dim::X, Dim::Time],
            Dim::Time => [Dim::X, Dim::Y],
        }
    }
}

/// Error of [`Dim::try_from_index`]: the contained index is not in `0..3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimIndexError(pub usize);

impl std::fmt::Display for DimIndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dimension index {} out of range (expected 0..3)", self.0)
    }
}

impl std::error::Error for DimIndexError {}

impl std::fmt::Display for Dim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dim::X => write!(f, "x"),
            Dim::Y => write!(f, "y"),
            Dim::Time => write!(f, "t"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for d in Dim::ALL {
            assert_eq!(Dim::try_from_index(d.index()), Ok(d));
        }
    }

    #[test]
    fn others_are_complementary() {
        for d in Dim::ALL {
            let [a, b] = d.others();
            assert_ne!(a, d);
            assert_ne!(b, d);
            assert_ne!(a, b);
        }
    }

    /// Regression: out-of-range indices must yield a typed error instead of
    /// a panic — the panicking accessor is gone, so no index-to-dimension
    /// conversion can abort the process.
    #[test]
    fn out_of_range_index_is_a_typed_error() {
        for i in 3..10usize {
            let err = Dim::try_from_index(i).expect_err("out of range");
            assert_eq!(err, DimIndexError(i));
            assert!(err.to_string().contains(&i.to_string()));
        }
        assert_eq!(Dim::try_from_index(0), Ok(Dim::X));
        assert_eq!(Dim::try_from_index(1), Ok(Dim::Y));
        assert_eq!(Dim::try_from_index(2), Ok(Dim::Time));
    }

    #[test]
    fn display_names() {
        assert_eq!(Dim::X.to_string(), "x");
        assert_eq!(Dim::Y.to_string(), "y");
        assert_eq!(Dim::Time.to_string(), "t");
    }
}
