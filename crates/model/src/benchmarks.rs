//! The paper's benchmark instances (§5).
//!
//! * [`de`] — the DE (differential equation) benchmark of §5.1: the classic
//!   HAL dataflow graph for one Euler step of `y'' + 3xy' + 3y = 0`, mapped
//!   to a two-module library (16×16 array multiplier, 2 cycles; 16×1 ALU,
//!   1 cycle) — Table 1 and Figure 7;
//! * [`video_codec`] — the H.261 hybrid coder/decoder of §5.2 with the
//!   three-module library (PUM 25×25, BMM 64×64, DCTM 16×16) — Table 2.
//!
//! Both constructors return instances with placeholder containers; the
//! experiments re-target them through [`Instance::with_chip`] /
//! [`Instance::with_horizon`], and apply
//! [`Instance::with_transitive_closure`] as the paper prescribes in §5.1.

use crate::{Chip, Instance, Task};

/// Word length of the DE benchmark datapath (paper §5.1: `n = 16` bits).
pub const DE_WORD_LENGTH: u64 = 16;

/// A 16×16 array multiplier taking 2 clock cycles (paper §5.1).
pub fn de_multiplier(name: &str) -> Task {
    Task::new(name, DE_WORD_LENGTH, DE_WORD_LENGTH, 2)
}

/// A 16×1 ALU module (add / subtract / compare) taking 1 clock cycle
/// (paper §5.1).
pub fn de_alu(name: &str) -> Task {
    Task::new(name, DE_WORD_LENGTH, 1, 1)
}

/// The DE benchmark: 11 tasks of the HAL differential-equation dataflow
/// graph (paper Fig. 2), with the dependency arcs
/// `v1→v3, v2→v3, v3→v4, v4→v5, v6→v7, v7→v5, v8→v9, v10→v11`.
///
/// Operations: multiplications `v1, v2, v3, v6, v7, v8` (16×16×2), ALU
/// operations `v4, v5` (SUB), `v9, v10` (ADD), `v11` (COMP), all 16×1×1.
/// The duration-weighted longest path is `v1→v3→v4→v5` = 2+2+1+1 = 6,
/// matching §5.1 ("as the longest path in the graph has length 6, there
/// does not exist any faster schedule" than 6 cycles).
///
/// The returned instance carries `chip` and `horizon` as given; Table 1
/// solves BMP for horizons 6, 13, 14.
///
/// # Example
///
/// ```
/// use recopack_model::benchmarks::de;
/// use recopack_model::Chip;
///
/// let instance = de(Chip::square(32), 6);
/// assert_eq!(instance.task_count(), 11);
/// assert_eq!(instance.critical_path_length(), 6);
/// ```
pub fn de(chip: Chip, horizon: u64) -> Instance {
    Instance::builder()
        .chip(chip)
        .horizon(horizon)
        .task(de_multiplier("v1")) // 3 * x
        .task(de_multiplier("v2")) // u * dx
        .task(de_multiplier("v3")) // (3x) * (u dx)
        .task(de_alu("v4")) // u - 3x u dx
        .task(de_alu("v5")) // u' = (u - 3x u dx) - 3y dx
        .task(de_multiplier("v6")) // 3 * y
        .task(de_multiplier("v7")) // (3y) * dx
        .task(de_multiplier("v8")) // u * dx (for y')
        .task(de_alu("v9")) // y' = y + u dx
        .task(de_alu("v10")) // x' = x + dx
        .task(de_alu("v11")) // x' < a ?
        .precedence("v1", "v3")
        .precedence("v2", "v3")
        .precedence("v3", "v4")
        .precedence("v4", "v5")
        .precedence("v6", "v7")
        .precedence("v7", "v5")
        .precedence("v8", "v9")
        .precedence("v10", "v11")
        .build()
        .expect("the DE benchmark is a valid instance")
}

/// Normalized side length of the video codec's processor module
/// (PUM, 625 = 25×25 cells, paper §5.2).
pub const PUM_SIDE: u64 = 25;
/// Side length of the block-matching module (BMM, 64×64 cells).
pub const BMM_SIDE: u64 = 64;
/// Side length of the DCT/IDCT module (DCTM, 16×16 cells).
pub const DCTM_SIDE: u64 = 16;

/// The H.261 video-codec benchmark (paper §5.2, Figs. 8–9, Table 2).
///
/// The problem graph contains a coder subgraph (prediction error → DCT → Q →
/// RLC plus the reconstruction loop Q⁻¹ → DCT⁻¹ → + → loop filter → frame
/// memory, fed by block-matching motion estimation and motion compensation)
/// and a decoder subgraph (RLD → Q⁻¹ → IDCT → compensation → output).
///
/// **Substitution note (see DESIGN.md §5):** the paper's Fig. 9 durations are
/// only available in the companion journal paper; this reconstruction keeps
/// the paper's module library and graph structure, with durations calibrated
/// so the published results hold exactly: the duration-weighted critical path
/// is 59 cycles and the 64×64 BMM forces a 64×64 chip, yielding Table 2's
/// single Pareto point (64×64 at latency 59).
///
/// # Example
///
/// ```
/// use recopack_model::benchmarks::video_codec;
/// use recopack_model::Chip;
///
/// let instance = video_codec(Chip::square(64), 59);
/// assert_eq!(instance.critical_path_length(), 59);
/// ```
pub fn video_codec(chip: Chip, horizon: u64) -> Instance {
    let pum = |name: &str, cycles: u64| Task::new(name, PUM_SIDE, PUM_SIDE, cycles);
    let dctm = |name: &str, cycles: u64| Task::new(name, DCTM_SIDE, DCTM_SIDE, cycles);
    Instance::builder()
        .chip(chip)
        .horizon(horizon)
        // --- coder subgraph ---
        .task(pum("frame_input", 2)) // a[i]: current frame block fetch
        .task(Task::new("motion_estimation", BMM_SIDE, BMM_SIDE, 24)) // BMM
        .task(pum("motion_compensation", 4)) // g[i] -> h[i]
        .task(pum("prediction_error", 2)) // b[i] = a[i] - h[i]
        .task(dctm("dct", 8)) // c[i] = DCT(b[i])
        .task(pum("quantize", 2)) // Q
        .task(pum("run_length_code", 2)) // RLC (output)
        .task(pum("dequantize", 2)) // Q^-1
        .task(dctm("idct", 8)) // DCT^-1
        .task(pum("reconstruct", 2)) // d[i] = idct + h[i]
        .task(pum("loop_filter", 4)) // e[i]
        .task(pum("frame_memory", 1)) // f[i] write-back
        // --- decoder subgraph ---
        .task(pum("run_length_decode", 2)) // RLD
        .task(pum("dec_dequantize", 2)) // Q^-1
        .task(dctm("dec_idct", 8)) // IDCT
        .task(pum("dec_compensation", 4)) // + prev frame
        .task(pum("dec_output", 1)) // k[i]
        // coder arcs
        .precedence("frame_input", "motion_estimation")
        .precedence("motion_estimation", "motion_compensation")
        .precedence("frame_input", "prediction_error")
        .precedence("motion_compensation", "prediction_error")
        .precedence("prediction_error", "dct")
        .precedence("dct", "quantize")
        .precedence("quantize", "run_length_code")
        .precedence("quantize", "dequantize")
        .precedence("dequantize", "idct")
        .precedence("idct", "reconstruct")
        .precedence("motion_compensation", "reconstruct")
        .precedence("reconstruct", "loop_filter")
        .precedence("loop_filter", "frame_memory")
        // decoder arcs
        .precedence("run_length_decode", "dec_dequantize")
        .precedence("dec_dequantize", "dec_idct")
        .precedence("dec_idct", "dec_compensation")
        .precedence("dec_compensation", "dec_output")
        .build()
        .expect("the video codec benchmark is a valid instance")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dim;

    #[test]
    fn de_matches_paper_structure() {
        let i = de(Chip::square(32), 6);
        assert_eq!(i.task_count(), 11);
        // 6 multipliers, 5 ALU operations.
        let muls = i.tasks().iter().filter(|t| t.area() == 256).count();
        let alus = i.tasks().iter().filter(|t| t.area() == 16).count();
        assert_eq!((muls, alus), (6, 5));
        assert_eq!(i.precedence().arc_count(), 8);
        assert_eq!(i.critical_path_length(), 6);
        // A single multiplication occupies the full 16x16 chip (§5.1).
        assert_eq!(i.task(0).size(Dim::X), 16);
        assert_eq!(i.task(0).size(Dim::Y), 16);
    }

    #[test]
    fn de_transitive_closure_adds_paths() {
        let i = de(Chip::square(32), 6).with_transitive_closure();
        let v1 = i.task_id("v1").expect("exists");
        let v5 = i.task_id("v5").expect("exists");
        assert!(i.precedence().has_arc(v1, v5));
    }

    #[test]
    fn video_codec_matches_calibration() {
        let i = video_codec(Chip::square(64), 59);
        assert_eq!(i.task_count(), 17);
        assert_eq!(i.critical_path_length(), 59);
        // The BMM forces the chip: largest module is 64x64.
        let max_side = i
            .tasks()
            .iter()
            .map(|t| t.width().max(t.height()))
            .max()
            .expect("nonempty");
        assert_eq!(max_side, BMM_SIDE);
        // Two disconnected subgraphs: coder (12 tasks) + decoder (5 tasks).
        let order = i.precedence().topological_order().expect("acyclic");
        assert_eq!(order.len(), 17);
    }

    #[test]
    fn video_codec_critical_path_runs_through_the_coder_loop() {
        let i = video_codec(Chip::square(64), 59);
        let cp = i
            .precedence()
            .critical_path(&i.sizes(Dim::Time))
            .expect("acyclic");
        let names: Vec<&str> = cp.vertices.iter().map(|&v| i.task(v).name()).collect();
        assert_eq!(names.first(), Some(&"frame_input"));
        assert_eq!(names.last(), Some(&"frame_memory"));
        assert!(names.contains(&"motion_estimation"));
        assert!(names.contains(&"idct"));
    }
}
