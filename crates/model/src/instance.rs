//! Problem instances: tasks + precedence + container.

use std::collections::HashMap;

use recopack_order::Dag;

use crate::{Chip, Dim, Task};

/// Errors raised when building an [`Instance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Two tasks share a name.
    DuplicateTaskName(String),
    /// A precedence arc refers to an unknown task name.
    UnknownTask(String),
    /// The precedence relation has a directed cycle (task names on it).
    CyclicPrecedence(Vec<String>),
    /// A task has a zero extent in some dimension.
    ZeroExtent(String),
    /// No chip was specified.
    MissingChip,
    /// No time horizon was specified.
    MissingHorizon,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DuplicateTaskName(n) => write!(f, "duplicate task name {n:?}"),
            Self::UnknownTask(n) => write!(f, "precedence arc names unknown task {n:?}"),
            Self::CyclicPrecedence(c) => write!(f, "cyclic precedence through {c:?}"),
            Self::ZeroExtent(n) => write!(f, "task {n:?} has a zero extent"),
            Self::MissingChip => write!(f, "no chip specified"),
            Self::MissingHorizon => write!(f, "no time horizon specified"),
        }
    }
}

impl std::error::Error for BuildError {}

/// A complete problem statement: tasks, precedence constraints, chip, and
/// time horizon.
///
/// An instance fixes the container `W × H × T`; the solvers vary parts of it
/// (BMP searches chips, SPP searches horizons) by deriving modified copies
/// through [`Instance::with_chip`] / [`Instance::with_horizon`].
///
/// # Example
///
/// ```
/// use recopack_model::{Chip, Instance, Task};
///
/// let instance = Instance::builder()
///     .chip(Chip::square(8))
///     .horizon(10)
///     .task(Task::new("a", 4, 4, 3))
///     .task(Task::new("b", 8, 8, 2))
///     .precedence("a", "b")
///     .build()?;
/// assert_eq!(instance.container(), [8, 8, 10]);
/// assert!(instance.precedence().has_arc(0, 1));
/// # Ok::<(), recopack_model::BuildError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    tasks: Vec<Task>,
    precedence: Dag,
    chip: Chip,
    horizon: u64,
}

impl Instance {
    /// Starts building an instance.
    pub fn builder() -> InstanceBuilder {
        InstanceBuilder::new()
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// All tasks, indexed by task id.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: usize) -> &Task {
        &self.tasks[id]
    }

    /// The id of the task with the given name, if any.
    pub fn task_id(&self, name: &str) -> Option<usize> {
        self.tasks.iter().position(|t| t.name() == name)
    }

    /// The precedence DAG over task ids.
    pub fn precedence(&self) -> &Dag {
        &self.precedence
    }

    /// The chip.
    pub fn chip(&self) -> Chip {
        self.chip
    }

    /// The allowed overall execution time `T`.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Container extents `[W, H, T]` in dimension-index order.
    pub fn container(&self) -> [u64; 3] {
        [self.chip.width(), self.chip.height(), self.horizon]
    }

    /// Container extent along one dimension.
    pub fn container_size(&self, dim: Dim) -> u64 {
        self.container()[dim.index()]
    }

    /// Task extents along one dimension, indexed by task id.
    pub fn sizes(&self, dim: Dim) -> Vec<u64> {
        self.tasks.iter().map(|t| t.size(dim)).collect()
    }

    /// Total space-time volume of all tasks.
    pub fn total_volume(&self) -> u64 {
        self.tasks.iter().map(Task::volume).sum()
    }

    /// Same instance with the precedence relation replaced by its transitive
    /// closure — the preprocessing step of paper §5.1 ("first, we compute
    /// the transitive closure of all data dependencies"), which lets the
    /// search detect contradictions earlier.
    pub fn with_transitive_closure(mut self) -> Self {
        self.precedence = self
            .precedence
            .transitive_closure()
            .expect("instances are validated acyclic at build time");
        self
    }

    /// Same instance on a different chip.
    pub fn with_chip(mut self, chip: Chip) -> Self {
        self.chip = chip;
        self
    }

    /// Same instance with a different time horizon.
    pub fn with_horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Same instance with all precedence constraints dropped — the paper's
    /// "(b) without consideration of partial order constraints" variant in
    /// Figure 7.
    pub fn without_precedence(mut self) -> Self {
        self.precedence = Dag::new(self.tasks.len());
        self
    }

    /// Duration-weighted critical path through the precedence DAG: no
    /// schedule can finish earlier, whatever the chip.
    pub fn critical_path_length(&self) -> u64 {
        let durations = self.sizes(Dim::Time);
        self.precedence
            .critical_path(&durations)
            .expect("instances are validated acyclic at build time")
            .length
    }
}

/// Builder for [`Instance`].
///
/// Collects tasks and name-based precedence arcs; [`build`](Self::build)
/// validates everything at once.
#[derive(Debug, Clone, Default)]
pub struct InstanceBuilder {
    tasks: Vec<Task>,
    arcs: Vec<(String, String)>,
    chip: Option<Chip>,
    horizon: Option<u64>,
}

impl InstanceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the chip.
    pub fn chip(mut self, chip: Chip) -> Self {
        self.chip = Some(chip);
        self
    }

    /// Sets the time horizon `T`.
    pub fn horizon(mut self, horizon: u64) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Adds a task; ids are assigned in insertion order.
    pub fn task(mut self, task: Task) -> Self {
        self.tasks.push(task);
        self
    }

    /// Adds all tasks from an iterator.
    pub fn tasks(mut self, tasks: impl IntoIterator<Item = Task>) -> Self {
        self.tasks.extend(tasks);
        self
    }

    /// Adds the precedence constraint "`before` finishes before `after`
    /// starts", by task name.
    pub fn precedence(mut self, before: impl Into<String>, after: impl Into<String>) -> Self {
        self.arcs.push((before.into(), after.into()));
        self
    }

    /// Validates and builds the instance.
    ///
    /// # Errors
    ///
    /// See [`BuildError`]: duplicate/unknown task names, zero extents,
    /// cyclic precedence, missing chip or horizon.
    pub fn build(self) -> Result<Instance, BuildError> {
        let chip = self.chip.ok_or(BuildError::MissingChip)?;
        let horizon = self.horizon.ok_or(BuildError::MissingHorizon)?;
        let mut ids: HashMap<&str, usize> = HashMap::new();
        for (i, t) in self.tasks.iter().enumerate() {
            if t.width() == 0 || t.height() == 0 || t.duration() == 0 {
                return Err(BuildError::ZeroExtent(t.name().to_string()));
            }
            if ids.insert(t.name(), i).is_some() {
                return Err(BuildError::DuplicateTaskName(t.name().to_string()));
            }
        }
        let mut precedence = Dag::new(self.tasks.len());
        for (u, v) in &self.arcs {
            let &ui = ids
                .get(u.as_str())
                .ok_or_else(|| BuildError::UnknownTask(u.clone()))?;
            let &vi = ids
                .get(v.as_str())
                .ok_or_else(|| BuildError::UnknownTask(v.clone()))?;
            precedence.add_arc(ui, vi);
        }
        if let Err(cycle) = precedence.topological_order() {
            return Err(BuildError::CyclicPrecedence(
                cycle
                    .cycle
                    .iter()
                    .map(|&v| self.tasks[v].name().to_string())
                    .collect(),
            ));
        }
        Ok(Instance {
            tasks: self.tasks,
            precedence,
            chip,
            horizon,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tasks() -> InstanceBuilder {
        Instance::builder()
            .chip(Chip::square(4))
            .horizon(8)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 3))
    }

    #[test]
    fn builds_and_exposes_fields() {
        let i = two_tasks().precedence("a", "b").build().expect("valid");
        assert_eq!(i.task_count(), 2);
        assert_eq!(i.container(), [4, 4, 8]);
        assert_eq!(i.sizes(Dim::Time), vec![2, 3]);
        assert_eq!(i.task_id("b"), Some(1));
        assert_eq!(i.task_id("zz"), None);
        assert_eq!(i.critical_path_length(), 5);
        assert_eq!(i.total_volume(), 2 * 2 * 2 + 2 * 2 * 3);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = two_tasks()
            .task(Task::new("a", 1, 1, 1))
            .build()
            .expect_err("duplicate");
        assert_eq!(err, BuildError::DuplicateTaskName("a".into()));
    }

    #[test]
    fn unknown_task_in_arc_rejected() {
        let err = two_tasks()
            .precedence("a", "c")
            .build()
            .expect_err("unknown");
        assert_eq!(err, BuildError::UnknownTask("c".into()));
    }

    #[test]
    fn cycle_rejected_with_names() {
        let err = two_tasks()
            .precedence("a", "b")
            .precedence("b", "a")
            .build()
            .expect_err("cycle");
        match err {
            BuildError::CyclicPrecedence(names) => {
                assert!(names.contains(&"a".to_string()));
                assert!(names.contains(&"b".to_string()));
            }
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn zero_extent_rejected() {
        let err = Instance::builder()
            .chip(Chip::square(4))
            .horizon(4)
            .task(Task::new("z", 0, 2, 2))
            .build()
            .expect_err("zero extent");
        assert_eq!(err, BuildError::ZeroExtent("z".into()));
    }

    #[test]
    fn missing_parts_rejected() {
        assert_eq!(
            Instance::builder().horizon(4).build().expect_err("no chip"),
            BuildError::MissingChip
        );
        assert_eq!(
            Instance::builder()
                .chip(Chip::square(4))
                .build()
                .expect_err("no horizon"),
            BuildError::MissingHorizon
        );
    }

    #[test]
    fn closure_and_strip_variants() {
        let i = two_tasks()
            .task(Task::new("c", 1, 1, 1))
            .precedence("a", "b")
            .precedence("b", "c")
            .build()
            .expect("valid");
        let closed = i.clone().with_transitive_closure();
        assert!(closed.precedence().has_arc(0, 2));
        let free = i.clone().without_precedence();
        assert_eq!(free.precedence().arc_count(), 0);
        assert_eq!(i.clone().with_horizon(3).horizon(), 3);
        assert_eq!(i.with_chip(Chip::new(9, 9)).chip(), Chip::square(9));
    }
}
