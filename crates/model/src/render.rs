//! Human-readable renderings of placements: a reconfiguration timeline and
//! per-interval chip floorplans.

use crate::{Dim, Instance, Placement};

/// Renders a Gantt-style timeline: one row per task, `#` for cycles where
/// the task executes.
///
/// # Example
///
/// ```
/// use recopack_model::{render, Chip, Instance, Placement, Task};
///
/// let instance = Instance::builder()
///     .chip(Chip::square(2))
///     .horizon(4)
///     .task(Task::new("a", 2, 2, 2))
///     .task(Task::new("b", 2, 2, 2))
///     .precedence("a", "b")
///     .build()?;
/// let placement = Placement::new(vec![[0, 0, 0], [0, 0, 2]], &instance);
/// let gantt = render::gantt(&placement, &instance);
/// assert!(gantt.contains("a"));
/// assert!(gantt.lines().count() >= 3);
/// # Ok::<(), recopack_model::BuildError>(())
/// ```
pub fn gantt(placement: &Placement, instance: &Instance) -> String {
    let span = placement.makespan().max(1) as usize;
    let name_width = instance
        .tasks()
        .iter()
        .map(|t| t.name().len())
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    out.push_str(&format!("{:>name_width$} | ", "task"));
    for tick in 0..span {
        out.push(char::from_digit((tick % 10) as u32, 10).expect("digit"));
    }
    out.push('\n');
    out.push_str(&format!("{:->name_width$}-+-{}\n", "", "-".repeat(span)));
    for (id, b) in placement.boxes().iter().enumerate() {
        let (s, e) = (b.start(Dim::Time) as usize, b.end(Dim::Time) as usize);
        let mut row = String::with_capacity(span);
        for tick in 0..span {
            row.push(if tick >= s && tick < e { '#' } else { '.' });
        }
        out.push_str(&format!(
            "{:>name_width$} | {row}  @({},{})\n",
            instance.task(id).name(),
            b.origin[0],
            b.origin[1],
        ));
    }
    out
}

/// Renders the chip floorplan during the time interval `[from, to)`: a
/// character grid where each cell shows the occupying task's letter, `.` for
/// free cells. Tasks are lettered `a`, `b`, … by id (wrapping after 52).
///
/// Returns `None` when some task only partially overlaps the interval —
/// the floorplan is only well-defined for intervals between reconfiguration
/// events (use [`events`] to enumerate them).
pub fn floorplan(placement: &Placement, instance: &Instance, from: u64, to: u64) -> Option<String> {
    const LETTERS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    let chip = instance.chip();
    let mut grid = vec![b'.'; (chip.width() * chip.height()) as usize];
    for (id, b) in placement.boxes().iter().enumerate() {
        let (s, e) = (b.start(Dim::Time), b.end(Dim::Time));
        let full = s <= from && to <= e;
        let disjoint = e <= from || to <= s;
        if !full && !disjoint {
            return None;
        }
        if full {
            let letter = LETTERS[id % LETTERS.len()];
            for y in b.start(Dim::Y)..b.end(Dim::Y) {
                for x in b.start(Dim::X)..b.end(Dim::X) {
                    grid[(y * chip.width() + x) as usize] = letter;
                }
            }
        }
    }
    let mut out = String::new();
    for y in 0..chip.height() {
        let row = &grid[(y * chip.width()) as usize..((y + 1) * chip.width()) as usize];
        out.push_str(std::str::from_utf8(row).expect("ascii grid"));
        out.push('\n');
    }
    Some(out)
}

/// The reconfiguration event times of a placement: every distinct task start
/// or end, sorted. Consecutive events bound intervals with a constant
/// floorplan.
pub fn events(placement: &Placement) -> Vec<u64> {
    let mut times: Vec<u64> = placement
        .boxes()
        .iter()
        .flat_map(|b| [b.start(Dim::Time), b.end(Dim::Time)])
        .collect();
    times.sort_unstable();
    times.dedup();
    times
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Chip, Task};

    fn setup() -> (Instance, Placement) {
        let instance = Instance::builder()
            .chip(Chip::new(4, 2))
            .horizon(4)
            .task(Task::new("alpha", 2, 2, 2))
            .task(Task::new("b", 2, 2, 3))
            .build()
            .expect("valid");
        let placement = Placement::new(vec![[0, 0, 0], [2, 0, 0]], &instance);
        assert_eq!(placement.verify(&instance), Ok(()));
        (instance, placement)
    }

    #[test]
    fn gantt_marks_execution_cycles() {
        let (i, p) = setup();
        let g = gantt(&p, &i);
        let alpha_row = g.lines().find(|l| l.contains("alpha")).expect("row");
        assert!(alpha_row.contains("##."));
        let b_row = g
            .lines()
            .find(|l| l.trim_start().starts_with("b "))
            .expect("row");
        assert!(b_row.contains("###"));
    }

    #[test]
    fn floorplan_shows_letters() {
        let (i, p) = setup();
        let plan = floorplan(&p, &i, 0, 2).expect("constant interval");
        assert_eq!(plan, "aabb\naabb\n");
        // After alpha ends, only b remains.
        let plan = floorplan(&p, &i, 2, 3).expect("constant interval");
        assert_eq!(plan, "..bb\n..bb\n");
        // Interval crossing alpha's end is not constant.
        assert_eq!(floorplan(&p, &i, 1, 3), None);
    }

    #[test]
    fn events_are_distinct_sorted() {
        let (_, p) = setup();
        assert_eq!(events(&p), vec![0, 2, 3]);
    }

    #[test]
    fn empty_placement_renders() {
        let i = Instance::builder()
            .chip(Chip::square(2))
            .horizon(2)
            .build()
            .expect("valid");
        let p = Placement::new(vec![], &i);
        assert!(gantt(&p, &i).contains("task"));
        assert_eq!(floorplan(&p, &i, 0, 1).expect("empty"), "..\n..\n");
        assert!(events(&p).is_empty());
    }
}

/// Renders the whole space-time placement as an SVG document: one chip
/// floorplan panel per reconfiguration interval, tasks as labeled rectangles
/// with stable per-task colors, plus a caption per panel.
///
/// Pure string generation — no drawing dependencies. The output is a valid
/// standalone `.svg` file.
pub fn svg(placement: &Placement, instance: &Instance) -> String {
    const CELL: u64 = 8; // pixels per chip cell
    const GAP: u64 = 18; // between panels
    const CAPTION: u64 = 14;
    let chip = instance.chip();
    let events = events(placement);
    let intervals: Vec<(u64, u64)> = events.windows(2).map(|w| (w[0], w[1])).collect();
    let panels = intervals.len().max(1) as u64;
    let panel_w = chip.width() * CELL;
    let panel_h = chip.height() * CELL;
    let width = panels * (panel_w + GAP) + GAP;
    let height = panel_h + CAPTION + 2 * GAP;

    let color = |id: usize| -> String {
        // Evenly spaced hues, fixed saturation/lightness: stable and legible.
        let hue = (id * 137) % 360;
        format!("hsl({hue}, 62%, 68%)")
    };

    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {width} {height}\" font-family=\"monospace\" font-size=\"10\">\n"
    ));
    out.push_str(&format!(
        "  <rect width=\"{width}\" height=\"{height}\" fill=\"white\"/>\n"
    ));
    for (k, &(from, to)) in intervals.iter().enumerate() {
        let ox = GAP + k as u64 * (panel_w + GAP);
        let oy = GAP;
        out.push_str(&format!(
            "  <g transform=\"translate({ox},{oy})\">\n    <rect width=\"{panel_w}\" \
             height=\"{panel_h}\" fill=\"#f4f4f4\" stroke=\"#333\"/>\n"
        ));
        for (id, b) in placement.boxes().iter().enumerate() {
            let (s, e) = (b.start(Dim::Time), b.end(Dim::Time));
            if !(s <= from && to <= e) {
                continue;
            }
            let x = b.start(Dim::X) * CELL;
            let y = b.start(Dim::Y) * CELL;
            let w = (b.end(Dim::X) - b.start(Dim::X)) * CELL;
            let h = (b.end(Dim::Y) - b.start(Dim::Y)) * CELL;
            out.push_str(&format!(
                "    <rect x=\"{x}\" y=\"{y}\" width=\"{w}\" height=\"{h}\" fill=\"{}\" \
                 stroke=\"#222\"/>\n",
                color(id)
            ));
            out.push_str(&format!(
                "    <text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>\n",
                x + w / 2,
                y + h / 2 + 3,
                xml_escape(instance.task(id).name())
            ));
        }
        out.push_str(&format!(
            "    <text x=\"0\" y=\"{}\">cycles [{from}, {to})</text>\n  </g>\n",
            panel_h + CAPTION
        ));
    }
    out.push_str("</svg>\n");
    out
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod svg_tests {
    use super::*;
    use crate::{Chip, Task};

    #[test]
    fn svg_has_one_panel_per_interval() {
        let instance = Instance::builder()
            .chip(Chip::new(4, 2))
            .horizon(4)
            .task(Task::new("alpha", 2, 2, 2))
            .task(Task::new("b", 2, 2, 3))
            .build()
            .expect("valid");
        let placement = Placement::new(vec![[0, 0, 0], [2, 0, 0]], &instance);
        let doc = svg(&placement, &instance);
        assert!(doc.starts_with("<svg"));
        assert!(doc.trim_end().ends_with("</svg>"));
        // Events 0, 2, 3 -> two intervals -> two captions.
        assert_eq!(doc.matches("cycles [").count(), 2);
        // alpha appears in the first interval only; b in both.
        assert_eq!(doc.matches(">alpha<").count(), 1);
        assert_eq!(doc.matches(">b<").count(), 2);
    }

    #[test]
    fn svg_escapes_task_names() {
        let instance = Instance::builder()
            .chip(Chip::square(2))
            .horizon(1)
            .task(Task::new("a<b&c>", 1, 1, 1))
            .build()
            .expect("valid");
        let placement = Placement::new(vec![[0, 0, 0]], &instance);
        let doc = svg(&placement, &instance);
        assert!(doc.contains("a&lt;b&amp;c&gt;"));
        assert!(!doc.contains("a<b"));
    }

    #[test]
    fn empty_placement_is_still_valid_svg() {
        let instance = Instance::builder()
            .chip(Chip::square(2))
            .horizon(1)
            .build()
            .expect("valid");
        let placement = Placement::new(vec![], &instance);
        let doc = svg(&placement, &instance);
        assert!(doc.starts_with("<svg"));
    }
}
