//! Problem model for FPGA module placement in space-time.
//!
//! Following the architecture assumptions of Fekete–Köhler–Teich (DATE 2001,
//! §2): a partially reconfigurable FPGA is a `W × H` array of identical
//! cells; a hardware module (task) occupies a `w_x × w_y` sub-rectangle for
//! `w_t` clock cycles and may be placed anywhere on the chip; intermodule
//! communication happens through off-chip memory at task boundaries, so no
//! routing constraints arise; data dependencies impose a partial order on
//! task *time intervals*. A feasible solution is a placement of
//! three-dimensional boxes in the container `W × H × T` such that no two
//! boxes overlap and every precedence arc `u → v` satisfies
//! `end(u) ≤ start(v)`.
//!
//! Contents:
//!
//! * [`Task`], [`Chip`], [`Instance`] (+ builder) — problem statements;
//! * [`Dim`] — the three packing dimensions `x`, `y`, `t`;
//! * [`Placement`], [`Schedule`] — solutions and partial solutions, with a
//!   strict geometric [verifier](Placement::verify);
//! * [`benchmarks`] — the paper's DE (differential equation) and H.261
//!   video-codec instances;
//! * [`generate`] — random instance generators for tests and benchmarks;
//! * [`format`](mod@format) — a plain-text instance file format (parse / write);
//! * [`render`] — Gantt timelines and chip floorplans for placements.
//!
//! # Example
//!
//! ```
//! use recopack_model::{Chip, Instance, Task};
//!
//! let instance = Instance::builder()
//!     .chip(Chip::new(16, 16))
//!     .horizon(4)
//!     .task(Task::new("mul", 16, 16, 2))
//!     .task(Task::new("alu", 16, 1, 1))
//!     .precedence("mul", "alu")
//!     .build()?;
//! assert_eq!(instance.task_count(), 2);
//! assert_eq!(instance.critical_path_length(), 3);
//! # Ok::<(), recopack_model::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
mod chip;
mod dim;
pub mod format;
pub mod generate;
mod instance;
mod placement;
pub mod render;
mod task;

pub use chip::Chip;
pub use dim::{Dim, DimIndexError};
pub use instance::{BuildError, Instance, InstanceBuilder};
pub use placement::{Box3, Placement, Schedule, VerifyError};
pub use task::Task;
