//! Solutions: schedules, placements, and the geometric verifier.

use crate::{Dim, Instance};

/// An axis-aligned box in space-time: the realized position of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Box3 {
    /// Lower corner `[x, y, t]`.
    pub origin: [u64; 3],
    /// Extents `[w_x, w_y, w_t]`.
    pub size: [u64; 3],
}

impl Box3 {
    /// Exclusive upper corner along `dim`.
    pub fn end(&self, dim: Dim) -> u64 {
        self.origin[dim.index()] + self.size[dim.index()]
    }

    /// Inclusive lower corner along `dim`.
    pub fn start(&self, dim: Dim) -> u64 {
        self.origin[dim.index()]
    }

    /// Whether the open projections of `self` and `other` overlap along `dim`.
    pub fn overlaps_in(&self, other: &Box3, dim: Dim) -> bool {
        self.start(dim) < other.end(dim) && other.start(dim) < self.end(dim)
    }

    /// Whether the boxes overlap in all three dimensions (i.e. collide).
    pub fn collides(&self, other: &Box3) -> bool {
        Dim::ALL.iter().all(|&d| self.overlaps_in(other, d))
    }
}

/// Errors found by [`Placement::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The placement has a different number of boxes than the instance has
    /// tasks.
    WrongTaskCount {
        /// Boxes in the placement.
        got: usize,
        /// Tasks in the instance.
        expected: usize,
    },
    /// A box's size differs from its task's size.
    WrongShape {
        /// Task id.
        task: usize,
    },
    /// A task leaves the chip or exceeds the horizon.
    OutOfBounds {
        /// Task id.
        task: usize,
        /// Dimension in which the bound is violated.
        dim: Dim,
    },
    /// Two tasks overlap in all three dimensions.
    Collision {
        /// First task id.
        a: usize,
        /// Second task id.
        b: usize,
    },
    /// A precedence arc `u → v` is violated (`u` does not finish before `v`
    /// starts).
    PrecedenceViolated {
        /// Predecessor task id.
        before: usize,
        /// Successor task id.
        after: usize,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WrongTaskCount { got, expected } => {
                write!(f, "placement has {got} boxes for {expected} tasks")
            }
            Self::WrongShape { task } => write!(f, "box of task {task} has the wrong shape"),
            Self::OutOfBounds { task, dim } => {
                write!(f, "task {task} exceeds the container in dimension {dim}")
            }
            Self::Collision { a, b } => write!(f, "tasks {a} and {b} overlap in space-time"),
            Self::PrecedenceViolated { before, after } => {
                write!(f, "task {before} must finish before task {after} starts")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// A complete solution: one space-time box per task.
///
/// `Placement` is the *certificate* returned by the solvers; [`verify`]
/// checks it against the instance from first principles (bounds, pairwise
/// collisions, precedence), independent of any solver internals.
///
/// [`verify`]: Placement::verify
///
/// # Example
///
/// ```
/// use recopack_model::{Chip, Instance, Placement, Task};
///
/// let instance = Instance::builder()
///     .chip(Chip::square(2))
///     .horizon(4)
///     .task(Task::new("a", 2, 2, 2))
///     .task(Task::new("b", 2, 2, 2))
///     .precedence("a", "b")
///     .build()?;
/// let placement = Placement::new(vec![[0, 0, 0], [0, 0, 2]], &instance);
/// assert!(placement.verify(&instance).is_ok());
/// # Ok::<(), recopack_model::BuildError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    boxes: Vec<Box3>,
}

impl Placement {
    /// Creates a placement from per-task origins `[x, y, t]`, taking sizes
    /// from the instance.
    ///
    /// # Panics
    ///
    /// Panics if `origins.len()` differs from the instance's task count.
    pub fn new(origins: Vec<[u64; 3]>, instance: &Instance) -> Self {
        assert_eq!(
            origins.len(),
            instance.task_count(),
            "one origin per task required"
        );
        let boxes = origins
            .into_iter()
            .zip(instance.tasks())
            .map(|(origin, t)| Box3 {
                origin,
                size: [t.width(), t.height(), t.duration()],
            })
            .collect();
        Self { boxes }
    }

    /// The boxes, indexed by task id.
    pub fn boxes(&self) -> &[Box3] {
        &self.boxes
    }

    /// The box of one task.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn task_box(&self, task: usize) -> Box3 {
        self.boxes[task]
    }

    /// The start times only, as a [`Schedule`].
    pub fn schedule(&self) -> Schedule {
        Schedule {
            starts: self.boxes.iter().map(|b| b.origin[2]).collect(),
        }
    }

    /// The makespan: latest finishing time over all tasks.
    pub fn makespan(&self) -> u64 {
        self.boxes
            .iter()
            .map(|b| b.end(Dim::Time))
            .max()
            .unwrap_or(0)
    }

    /// Smallest square chip side the spatial footprint fits on.
    pub fn bounding_square(&self) -> u64 {
        self.boxes
            .iter()
            .map(|b| b.end(Dim::X).max(b.end(Dim::Y)))
            .max()
            .unwrap_or(0)
    }

    /// Verifies the placement against `instance` from first principles.
    ///
    /// # Errors
    ///
    /// The first violation found, as a [`VerifyError`]: shape mismatch,
    /// container bounds, pairwise space-time collision, or precedence.
    pub fn verify(&self, instance: &Instance) -> Result<(), VerifyError> {
        let n = instance.task_count();
        if self.boxes.len() != n {
            return Err(VerifyError::WrongTaskCount {
                got: self.boxes.len(),
                expected: n,
            });
        }
        let container = instance.container();
        for (i, b) in self.boxes.iter().enumerate() {
            let t = instance.task(i);
            if b.size != [t.width(), t.height(), t.duration()] {
                return Err(VerifyError::WrongShape { task: i });
            }
            for d in Dim::ALL {
                if b.end(d) > container[d.index()] {
                    return Err(VerifyError::OutOfBounds { task: i, dim: d });
                }
            }
        }
        for a in 0..n {
            for b in 0..a {
                if self.boxes[a].collides(&self.boxes[b]) {
                    return Err(VerifyError::Collision { a: b, b: a });
                }
            }
        }
        for (u, v) in instance.precedence().arcs() {
            if self.boxes[u].end(Dim::Time) > self.boxes[v].start(Dim::Time) {
                return Err(VerifyError::PrecedenceViolated {
                    before: u,
                    after: v,
                });
            }
        }
        Ok(())
    }
}

/// Start times only — the "schedule" half of a solution, used by the
/// FixedS problem family where starts are given and only the spatial
/// placement is sought.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    starts: Vec<u64>,
}

impl Schedule {
    /// Creates a schedule from per-task start times.
    pub fn new(starts: Vec<u64>) -> Self {
        Self { starts }
    }

    /// Start times indexed by task id.
    pub fn starts(&self) -> &[u64] {
        &self.starts
    }

    /// Start time of one task.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn start(&self, task: usize) -> u64 {
        self.starts[task]
    }

    /// Latest finishing time under `instance`'s durations.
    pub fn makespan(&self, instance: &Instance) -> u64 {
        self.starts
            .iter()
            .zip(instance.tasks())
            .map(|(s, t)| s + t.duration())
            .max()
            .unwrap_or(0)
    }

    /// Whether all precedence arcs and the horizon are honored (ignoring
    /// space).
    pub fn respects_precedence(&self, instance: &Instance) -> bool {
        instance
            .precedence()
            .arcs()
            .all(|(u, v)| self.starts[u] + instance.task(u).duration() <= self.starts[v])
            && self.makespan(instance) <= instance.horizon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Chip, Task};

    fn instance() -> Instance {
        Instance::builder()
            .chip(Chip::square(4))
            .horizon(6)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .task(Task::new("c", 4, 4, 2))
            .precedence("a", "c")
            .build()
            .expect("valid instance")
    }

    #[test]
    fn valid_placement_verifies() {
        let i = instance();
        let p = Placement::new(vec![[0, 0, 0], [2, 2, 0], [0, 0, 2]], &i);
        assert_eq!(p.verify(&i), Ok(()));
        assert_eq!(p.makespan(), 4);
        assert_eq!(p.bounding_square(), 4);
        assert_eq!(p.schedule().starts(), &[0, 0, 2]);
    }

    #[test]
    fn out_of_bounds_detected() {
        let i = instance();
        let p = Placement::new(vec![[3, 0, 0], [0, 2, 0], [0, 0, 2]], &i);
        assert_eq!(
            p.verify(&i),
            Err(VerifyError::OutOfBounds {
                task: 0,
                dim: Dim::X
            })
        );
        let late = Placement::new(vec![[0, 0, 5], [2, 2, 0], [0, 0, 0]], &i);
        assert!(matches!(
            late.verify(&i),
            Err(VerifyError::OutOfBounds {
                task: 0,
                dim: Dim::Time
            }) | Err(VerifyError::PrecedenceViolated { .. })
        ));
    }

    #[test]
    fn collision_detected() {
        let i = instance();
        let p = Placement::new(vec![[0, 0, 0], [1, 1, 0], [0, 0, 2]], &i);
        assert_eq!(p.verify(&i), Err(VerifyError::Collision { a: 0, b: 1 }));
    }

    #[test]
    fn touching_boxes_do_not_collide() {
        let i = instance();
        // b starts exactly where a ends in x.
        let p = Placement::new(vec![[0, 0, 0], [2, 0, 0], [0, 0, 2]], &i);
        assert_eq!(p.verify(&i), Ok(()));
    }

    #[test]
    fn precedence_violation_detected() {
        let i = instance();
        // c (dependent on a) starts at 1 < end(a) = 2, but they don't collide
        // spatially? c is 4x4 = whole chip, so move a's start instead:
        let p = Placement::new(vec![[0, 0, 4], [2, 2, 4], [0, 0, 0]], &i);
        assert_eq!(
            p.verify(&i),
            Err(VerifyError::PrecedenceViolated {
                before: 0,
                after: 2
            })
        );
    }

    #[test]
    fn schedule_checks_precedence_and_horizon() {
        let i = instance();
        let good = Schedule::new(vec![0, 0, 2]);
        assert!(good.respects_precedence(&i));
        let bad = Schedule::new(vec![1, 0, 2]);
        assert!(!bad.respects_precedence(&i));
        let over = Schedule::new(vec![0, 0, 5]);
        assert!(!over.respects_precedence(&i));
        assert_eq!(good.makespan(&i), 4);
        assert_eq!(good.start(2), 2);
    }

    #[test]
    fn box_overlap_predicates() {
        let a = Box3 {
            origin: [0, 0, 0],
            size: [2, 2, 2],
        };
        let b = Box3 {
            origin: [1, 1, 1],
            size: [2, 2, 2],
        };
        let c = Box3 {
            origin: [2, 0, 0],
            size: [2, 2, 2],
        };
        assert!(a.collides(&b));
        assert!(!a.collides(&c));
        assert!(a.overlaps_in(&c, Dim::Y));
        assert!(!a.overlaps_in(&c, Dim::X));
    }
}
