//! A plain-text instance format for files and tooling.
//!
//! Line-oriented, whitespace-separated, `#` starts a comment:
//!
//! ```text
//! # DE benchmark fragment
//! chip 32 32
//! horizon 6
//! task v1 16 16 2
//! task v3 16 16 2
//! arc v1 v3
//! ```
//!
//! Directives may appear in any order; `chip` and `horizon` must each occur
//! exactly once. Task names may not contain whitespace.

use crate::{BuildError, Chip, Instance, Task};

/// Errors of [`parse_instance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseInstanceError {
    /// A line could not be parsed; carries the 1-based line number and a
    /// description.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A directive appeared twice or was missing.
    Structure(String),
    /// The parsed pieces do not form a valid instance.
    Invalid(BuildError),
}

impl std::fmt::Display for ParseInstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Syntax { line, message } => write!(f, "line {line}: {message}"),
            Self::Structure(m) => write!(f, "{m}"),
            Self::Invalid(e) => write!(f, "invalid instance: {e}"),
        }
    }
}

impl std::error::Error for ParseInstanceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildError> for ParseInstanceError {
    fn from(e: BuildError) -> Self {
        Self::Invalid(e)
    }
}

/// Parses an instance from the text format.
///
/// # Errors
///
/// [`ParseInstanceError`] on malformed lines, duplicate/missing `chip` or
/// `horizon`, or semantic problems (unknown task names in arcs, cycles…).
///
/// # Example
///
/// ```
/// use recopack_model::format::parse_instance;
///
/// let instance = parse_instance(
///     "chip 4 4\nhorizon 8\ntask a 2 2 2\ntask b 2 2 3\narc a b\n",
/// )?;
/// assert_eq!(instance.task_count(), 2);
/// assert!(instance.precedence().has_arc(0, 1));
/// # Ok::<(), recopack_model::format::ParseInstanceError>(())
/// ```
pub fn parse_instance(text: &str) -> Result<Instance, ParseInstanceError> {
    let mut chip: Option<Chip> = None;
    let mut horizon: Option<u64> = None;
    let mut builder = Instance::builder();
    let syntax = |line: usize, message: &str| ParseInstanceError::Syntax {
        line,
        message: message.to_string(),
    };
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields[0] {
            "chip" => {
                let [w, h] = fields[1..] else {
                    return Err(syntax(line_no, "expected: chip <width> <height>"));
                };
                let (w, h) = (
                    w.parse().map_err(|_| syntax(line_no, "bad chip width"))?,
                    h.parse().map_err(|_| syntax(line_no, "bad chip height"))?,
                );
                if chip.replace(Chip::new(w, h)).is_some() {
                    return Err(ParseInstanceError::Structure(
                        "duplicate `chip` directive".into(),
                    ));
                }
            }
            "horizon" => {
                let [t] = fields[1..] else {
                    return Err(syntax(line_no, "expected: horizon <cycles>"));
                };
                let t = t.parse().map_err(|_| syntax(line_no, "bad horizon"))?;
                if horizon.replace(t).is_some() {
                    return Err(ParseInstanceError::Structure(
                        "duplicate `horizon` directive".into(),
                    ));
                }
            }
            "task" => {
                let (name, w, h, d, reconfig) =
                    match fields[1..] {
                        [name, w, h, d] => (name, w, h, d, None),
                        [name, w, h, d, r] => (name, w, h, d, Some(r)),
                        _ => return Err(syntax(
                            line_no,
                            "expected: task <name> <width> <height> <duration> [reconfiguration]",
                        )),
                    };
                let parse = |s: &str, what: &str| -> Result<u64, ParseInstanceError> {
                    s.parse()
                        .map_err(|_| syntax(line_no, &format!("bad task {what}")))
                };
                let mut task = Task::new(
                    name,
                    parse(w, "width")?,
                    parse(h, "height")?,
                    parse(d, "duration")?,
                );
                if let Some(r) = reconfig {
                    task = task.with_reconfiguration(parse(r, "reconfiguration")?);
                }
                builder = builder.task(task);
            }
            "arc" => {
                let [from, to] = fields[1..] else {
                    return Err(syntax(line_no, "expected: arc <before> <after>"));
                };
                builder = builder.precedence(from, to);
            }
            other => {
                return Err(syntax(line_no, &format!("unknown directive {other:?}")));
            }
        }
    }
    let chip =
        chip.ok_or_else(|| ParseInstanceError::Structure("missing `chip` directive".into()))?;
    let horizon = horizon
        .ok_or_else(|| ParseInstanceError::Structure("missing `horizon` directive".into()))?;
    Ok(builder.chip(chip).horizon(horizon).build()?)
}

/// Renders an instance in the text format; [`parse_instance`] of the result
/// reproduces the instance (task names must be whitespace-free, which the
/// writer checks).
///
/// # Panics
///
/// Panics if a task name contains whitespace or `#`.
pub fn format_instance(instance: &Instance) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "chip {} {}\n",
        instance.chip().width(),
        instance.chip().height()
    ));
    out.push_str(&format!("horizon {}\n", instance.horizon()));
    for t in instance.tasks() {
        assert!(
            !t.name().contains(char::is_whitespace) && !t.name().contains('#'),
            "task name {:?} cannot be serialized",
            t.name()
        );
        if t.reconfiguration() == 0 {
            out.push_str(&format!(
                "task {} {} {} {}\n",
                t.name(),
                t.width(),
                t.height(),
                t.compute_duration()
            ));
        } else {
            out.push_str(&format!(
                "task {} {} {} {} {}\n",
                t.name(),
                t.width(),
                t.height(),
                t.compute_duration(),
                t.reconfiguration()
            ));
        }
    }
    for (u, v) in instance.precedence().arcs() {
        out.push_str(&format!(
            "arc {} {}\n",
            instance.task(u).name(),
            instance.task(v).name()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn parse_well_formed() {
        let i = parse_instance(
            "# header\nchip 4 4 # trailing comment\nhorizon 8\n\ntask a 2 2 2\ntask b 2 2 3\narc a b\n",
        )
        .expect("valid");
        assert_eq!(i.chip(), Chip::new(4, 4));
        assert_eq!(i.horizon(), 8);
        assert_eq!(i.task_count(), 2);
        assert_eq!(i.precedence().arc_count(), 1);
    }

    #[test]
    fn roundtrips_benchmarks() {
        for instance in [
            benchmarks::de(Chip::square(32), 6),
            benchmarks::video_codec(Chip::square(64), 59),
        ] {
            let text = format_instance(&instance);
            let parsed = parse_instance(&text).expect("roundtrip parses");
            assert_eq!(parsed, instance);
        }
    }

    #[test]
    fn reconfiguration_roundtrips() {
        let i = parse_instance("chip 4 4\nhorizon 9\ntask a 2 2 2 3\n").expect("valid");
        assert_eq!(i.task(0).duration(), 5);
        assert_eq!(i.task(0).reconfiguration(), 3);
        let text = format_instance(&i);
        assert!(text.contains("task a 2 2 2 3"));
        assert_eq!(parse_instance(&text).expect("roundtrip"), i);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse_instance("chip 4 4\nhorizon 2\ntask a 1 1\n").expect_err("bad task");
        assert_eq!(
            err,
            ParseInstanceError::Syntax {
                line: 3,
                message: "expected: task <name> <width> <height> <duration> [reconfiguration]"
                    .into()
            }
        );
        let err = parse_instance("chip 4\n").expect_err("bad chip");
        assert!(matches!(err, ParseInstanceError::Syntax { line: 1, .. }));
        let err = parse_instance("chip 4 4\nhorizon 2\nfrob x\n").expect_err("unknown");
        assert!(err.to_string().contains("unknown directive"));
    }

    #[test]
    fn structural_errors() {
        assert!(matches!(
            parse_instance("horizon 2\n"),
            Err(ParseInstanceError::Structure(_))
        ));
        assert!(matches!(
            parse_instance("chip 2 2\nchip 2 2\nhorizon 1\n"),
            Err(ParseInstanceError::Structure(_))
        ));
        assert!(matches!(
            parse_instance("chip 2 2\nhorizon 1\nhorizon 2\n"),
            Err(ParseInstanceError::Structure(_))
        ));
    }

    #[test]
    fn semantic_errors_are_forwarded() {
        let err = parse_instance("chip 2 2\nhorizon 4\ntask a 1 1 1\narc a b\n")
            .expect_err("unknown task");
        assert_eq!(
            err,
            ParseInstanceError::Invalid(BuildError::UnknownTask("b".into()))
        );
        let err =
            parse_instance("chip 2 2\nhorizon 4\ntask a 1 1 1\ntask b 1 1 1\narc a b\narc b a\n")
                .expect_err("cycle");
        assert!(matches!(
            err,
            ParseInstanceError::Invalid(BuildError::CyclicPrecedence(_))
        ));
    }
}

/// Errors of [`parse_placement`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePlacementError {
    /// A line could not be parsed (1-based line number and description).
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A task name is unknown or placed twice, or a task is missing.
    Structure(String),
}

impl std::fmt::Display for ParsePlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Syntax { line, message } => write!(f, "line {line}: {message}"),
            Self::Structure(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ParsePlacementError {}

/// Renders a placement in the text format: one `place <task> <x> <y> <t>`
/// line per task, in task-id order.
pub fn format_placement(placement: &crate::Placement, instance: &Instance) -> String {
    let mut out = String::new();
    for (id, b) in placement.boxes().iter().enumerate() {
        out.push_str(&format!(
            "place {} {} {} {}\n",
            instance.task(id).name(),
            b.origin[0],
            b.origin[1],
            b.origin[2]
        ));
    }
    out
}

/// Parses a placement for `instance` from `place` lines (comments and blank
/// lines allowed). Every task must be placed exactly once. The result is
/// *not* verified — callers decide whether to
/// [`verify`](crate::Placement::verify).
///
/// # Errors
///
/// [`ParsePlacementError`] on malformed lines, unknown or duplicate task
/// names, or missing tasks.
pub fn parse_placement(
    text: &str,
    instance: &Instance,
) -> Result<crate::Placement, ParsePlacementError> {
    let n = instance.task_count();
    let mut origins: Vec<Option<[u64; 3]>> = vec![None; n];
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let syntax = |message: &str| ParsePlacementError::Syntax {
            line: line_no,
            message: message.to_string(),
        };
        let ["place", name, x, y, t] = fields.as_slice() else {
            return Err(syntax("expected: place <task> <x> <y> <t>"));
        };
        let id = instance
            .task_id(name)
            .ok_or_else(|| ParsePlacementError::Structure(format!("unknown task {name:?}")))?;
        if origins[id].is_some() {
            return Err(ParsePlacementError::Structure(format!(
                "task {name:?} placed twice"
            )));
        }
        let parse = |s: &str, what: &str| -> Result<u64, ParsePlacementError> {
            s.parse().map_err(|_| syntax(&format!("bad {what}")))
        };
        origins[id] = Some([parse(x, "x")?, parse(y, "y")?, parse(t, "t")?]);
    }
    let origins: Vec<[u64; 3]> = origins
        .into_iter()
        .enumerate()
        .map(|(id, o)| {
            o.ok_or_else(|| {
                ParsePlacementError::Structure(format!(
                    "task {:?} not placed",
                    instance.task(id).name()
                ))
            })
        })
        .collect::<Result<_, _>>()?;
    Ok(crate::Placement::new(origins, instance))
}

#[cfg(test)]
mod placement_tests {
    use super::*;
    use crate::{Chip, Placement, Task};

    fn setup() -> (Instance, Placement) {
        let i = Instance::builder()
            .chip(Chip::square(4))
            .horizon(4)
            .task(Task::new("a", 2, 2, 2))
            .task(Task::new("b", 2, 2, 2))
            .precedence("a", "b")
            .build()
            .expect("valid");
        let p = Placement::new(vec![[0, 0, 0], [2, 2, 2]], &i);
        (i, p)
    }

    #[test]
    fn placement_roundtrips() {
        let (i, p) = setup();
        let text = format_placement(&p, &i);
        assert!(text.contains("place a 0 0 0"));
        assert!(text.contains("place b 2 2 2"));
        let parsed = parse_placement(&text, &i).expect("roundtrip");
        assert_eq!(parsed, p);
        assert_eq!(parsed.verify(&i), Ok(()));
    }

    #[test]
    fn unknown_task_rejected() {
        let (i, _) = setup();
        let err = parse_placement("place z 0 0 0\n", &i).expect_err("unknown");
        assert!(err.to_string().contains("unknown task"));
    }

    #[test]
    fn duplicate_and_missing_tasks_rejected() {
        let (i, _) = setup();
        let err = parse_placement("place a 0 0 0\nplace a 1 1 1\n", &i).expect_err("dup");
        assert!(err.to_string().contains("placed twice"));
        let err = parse_placement("place a 0 0 0\n", &i).expect_err("missing");
        assert!(err.to_string().contains("not placed"));
    }

    #[test]
    fn syntax_errors_have_line_numbers() {
        let (i, _) = setup();
        let err = parse_placement("# ok\nplace a 0 0\n", &i).expect_err("short line");
        assert_eq!(
            err,
            ParsePlacementError::Syntax {
                line: 2,
                message: "expected: place <task> <x> <y> <t>".into()
            }
        );
    }

    #[test]
    fn parsed_placement_may_fail_verification() {
        let (i, _) = setup();
        // Overlapping placement parses fine but does not verify.
        let p = parse_placement("place a 0 0 0\nplace b 0 0 0\n", &i).expect("parses");
        assert!(p.verify(&i).is_err());
    }
}
