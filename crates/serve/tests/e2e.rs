//! End-to-end tests: a real server on an ephemeral port, exercised with
//! raw `TcpStream` HTTP/1.1 requests exactly the way curl or a Prometheus
//! scraper would.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use recopack_core::telemetry::stats_to_json;
use recopack_core::{Opp, SolverConfig};
use recopack_json::Json;
use recopack_model::format;
use recopack_serve::{ServeConfig, Server};

/// A trivially feasible two-task chain on a 2x2 chip.
const PAIR: &str = "chip 2 2\nhorizon 4\ntask a 2 2 2\ntask b 2 2 2\narc a b\n";

/// Infeasible by one task too many, with bounds and heuristics disabled in
/// the submission so the exhaustive refutation takes long enough to cancel.
fn hard_instance() -> String {
    hard_instance_with(12)
}

/// Variant of [`hard_instance`] with a chosen task count, for tests that
/// need several distinct hard instances (identical submissions would
/// otherwise dedup onto one in-flight solver run).
fn hard_instance_with(tasks: usize) -> String {
    let mut text = String::from("chip 6 6\nhorizon 2\n");
    for i in 0..tasks {
        text.push_str(&format!("task t{i} 2 2 2\n"));
    }
    text
}

/// Sends one HTTP/1.1 request on a fresh connection and returns
/// `(status, body)`. Asks the server to close afterwards, so reading to
/// EOF terminates promptly despite keep-alive being the default.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\n\
         Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("malformed response {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get_json(addr: SocketAddr, path: &str) -> (u16, Json) {
    let (status, body) = request(addr, "GET", path, "");
    let doc = Json::parse(&body).unwrap_or_else(|e| panic!("bad JSON from {path}: {e}: {body}"));
    (status, doc)
}

/// Polls `GET /jobs/{id}` until `done(status_word)` holds or a deadline
/// expires, returning the job document.
fn poll_job(addr: SocketAddr, id: u64, done: impl Fn(&str) -> bool) -> Json {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, doc) = get_json(addr, &format!("/jobs/{id}"));
        assert_eq!(status, 200, "job {id} should exist");
        let word = doc
            .get("status")
            .and_then(Json::as_str)
            .expect("status field")
            .to_string();
        if done(&word) {
            return doc;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} stuck in state {word:?}"
        );
        // Short nap between polls; the deadline above, not a fixed retry
        // count, decides when to give up, so slow CI cannot flake this.
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Value of a series in a Prometheus text exposition, by exact
/// `name{labels}` prefix.
fn metric_value(exposition: &str, series: &str) -> Option<f64> {
    exposition.lines().find_map(|line| {
        let (name, value) = line.rsplit_once(' ')?;
        (name == series).then(|| value.parse().expect("metric value parses"))
    })
}

/// A persistent keep-alive connection for multi-request tests. Bytes
/// over-read past the current response (pipelined replies arrive
/// coalesced) are carried into the next [`TestConn::read_framed`] call.
struct TestConn {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl TestConn {
    fn connect(addr: SocketAddr) -> Self {
        TestConn {
            stream: TcpStream::connect(addr).expect("connect"),
            carry: Vec::new(),
        }
    }

    /// Writes one request without asking the server to close
    /// (HTTP/1.1 keep-alive default).
    fn send(&mut self, method: &str, path: &str, body: &str) {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: e2e\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.send_raw(head.as_bytes());
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("send request");
    }

    /// Reads one `Content-Length`-framed response. Returns
    /// `(status, headers, body)`.
    fn read_framed(&mut self) -> (u16, String, String) {
        let mut buf = std::mem::take(&mut self.carry);
        let mut chunk = [0u8; 4096];
        let header_end = loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = self.stream.read(&mut chunk).expect("read headers");
            assert!(n > 0, "server closed mid-response: {buf:?}");
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|code| code.parse().ok())
            .unwrap_or_else(|| panic!("malformed status line in {head:?}"));
        let content_length: usize = head
            .lines()
            .find_map(|line| {
                let (name, value) = line.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().expect("numeric Content-Length"))
            })
            .expect("responses always carry Content-Length");
        let body_start = header_end + 4;
        while buf.len() < body_start + content_length {
            let n = self.stream.read(&mut chunk).expect("read body");
            assert!(n > 0, "server closed mid-body");
            buf.extend_from_slice(&chunk[..n]);
        }
        let end = body_start + content_length;
        let body = String::from_utf8_lossy(&buf[body_start..end]).to_string();
        self.carry = buf.split_off(end);
        (status, head, body)
    }

    /// Reads one `Transfer-Encoding: chunked` response through its
    /// terminating zero-size chunk, returning `(status, headers, decoded
    /// body)`. Bytes past the terminator (the next pipelined response)
    /// are carried over like in [`TestConn::read_framed`].
    fn read_chunked(&mut self) -> (u16, String, String) {
        let mut buf = std::mem::take(&mut self.carry);
        let mut chunk = [0u8; 4096];
        let header_end = loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = self.stream.read(&mut chunk).expect("read headers");
            assert!(n > 0, "server closed mid-response: {buf:?}");
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|code| code.parse().ok())
            .unwrap_or_else(|| panic!("malformed status line in {head:?}"));
        assert!(
            head.to_ascii_lowercase()
                .contains("transfer-encoding: chunked"),
            "streamed response must be chunked: {head}"
        );
        let mut rest = buf.split_off(header_end + 4);
        let mut body = Vec::new();
        loop {
            let size_end = loop {
                if let Some(pos) = rest.windows(2).position(|w| w == b"\r\n") {
                    break pos;
                }
                let n = self.stream.read(&mut chunk).expect("read chunk size");
                assert!(n > 0, "server closed mid-chunk");
                rest.extend_from_slice(&chunk[..n]);
            };
            let size = usize::from_str_radix(
                std::str::from_utf8(&rest[..size_end]).expect("chunk size is UTF-8"),
                16,
            )
            .expect("hex chunk size");
            let data_start = size_end + 2;
            while rest.len() < data_start + size + 2 {
                let n = self.stream.read(&mut chunk).expect("read chunk data");
                assert!(n > 0, "server closed mid-chunk");
                rest.extend_from_slice(&chunk[..n]);
            }
            body.extend_from_slice(&rest[data_start..data_start + size]);
            assert_eq!(
                &rest[data_start + size..data_start + size + 2],
                b"\r\n",
                "chunk data must end in CRLF"
            );
            rest = rest.split_off(data_start + size + 2);
            if size == 0 {
                break;
            }
        }
        self.carry = rest;
        (status, head, String::from_utf8_lossy(&body).to_string())
    }

    /// Asserts the server sends nothing further and closes the stream.
    fn assert_eof(&mut self) {
        assert!(self.carry.is_empty(), "unread bytes: {:?}", self.carry);
        let mut rest = Vec::new();
        self.stream.read_to_end(&mut rest).expect("read EOF");
        assert!(rest.is_empty(), "server must have closed: {rest:?}");
    }
}

fn bind_test_server(workers: usize, queue_depth: usize) -> Server {
    Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_depth,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

#[test]
fn served_opp_job_matches_direct_solve_and_shows_in_metrics() {
    let server = bind_test_server(1, 4);
    let addr = server.local_addr();

    let (status, health) = get_json(addr, "/healthz");
    assert_eq!(status, 200, "fresh server is healthy");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));

    // Heuristics off so the job runs a real branch-and-bound search (the
    // solver-telemetry series below stay at zero for heuristic solves).
    let mut body =
        String::from("{\"kind\":\"opp\",\"name\":\"pair\",\"use_heuristics\":false,\"instance\":");
    recopack_core::telemetry::push_json_str(&mut body, PAIR);
    body.push('}');
    let (status, reply) = request(addr, "POST", "/jobs", &body);
    assert_eq!(status, 202, "submission accepted: {reply}");
    let id = Json::parse(&reply)
        .expect("submission reply is JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id field");

    let job = poll_job(addr, id, |s| s != "queued" && s != "running");
    assert_eq!(job.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(job.get("outcome").and_then(Json::as_str), Some("feasible"));
    let placement = job
        .get("placement")
        .and_then(Json::as_str)
        .expect("feasible job carries a placement");
    assert!(placement.contains('a') && placement.contains('b'));

    // The served report must agree exactly with a direct in-process solve
    // under the same configuration.
    let report = job.get("report").expect("finished job carries a report");
    assert_eq!(report.get("command").and_then(Json::as_str), Some("opp"));
    assert_eq!(report.get("instance").and_then(Json::as_str), Some("pair"));
    let instance = format::parse_instance(PAIR)
        .expect("pair instance parses")
        .with_transitive_closure();
    let (_, direct_stats) = Opp::new(&instance)
        .with_config(SolverConfig {
            threads: 1,
            use_heuristics: false,
            ..SolverConfig::default()
        })
        .solve_with_stats();
    let direct = Json::parse(&stats_to_json(&direct_stats)).expect("stats JSON parses");
    assert_eq!(
        report.get("stats"),
        Some(&direct),
        "served stats must match a direct solve"
    );

    // The exposition is well-formed and shows exactly one completed job.
    let (status, exposition) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for line in exposition.lines().filter(|l| !l.starts_with('#')) {
        let (name, value) = line.rsplit_once(' ').expect("name value pair");
        assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "{line}");
    }
    assert_eq!(
        metric_value(&exposition, "recopack_jobs_accepted_total{kind=\"opp\"}"),
        Some(1.0)
    );
    assert_eq!(
        metric_value(&exposition, "recopack_jobs_completed_total{kind=\"opp\"}"),
        Some(1.0)
    );
    assert_eq!(
        metric_value(&exposition, "recopack_job_solve_seconds_count"),
        Some(1.0)
    );
    assert_eq!(
        metric_value(&exposition, "recopack_job_queue_wait_seconds_count"),
        Some(1.0)
    );
    assert_eq!(
        metric_value(&exposition, "recopack_cache_canonicalization_seconds_count"),
        Some(1.0)
    );
    assert_eq!(
        metric_value(&exposition, "recopack_searches_total"),
        Some(1.0)
    );
    let nodes = metric_value(&exposition, "recopack_solver_nodes_total").expect("nodes series");
    assert_eq!(nodes as u64, direct_stats.nodes);

    server.shutdown();
    server.join();
}

#[test]
fn delete_cancels_a_running_search_and_counts_it() {
    let server = bind_test_server(1, 4);
    let addr = server.local_addr();

    let mut body = String::from(
        "{\"kind\":\"opp\",\"name\":\"hard\",\"use_bounds\":false,\
         \"use_heuristics\":false,\"time_limit_ms\":60000,\"instance\":",
    );
    recopack_core::telemetry::push_json_str(&mut body, &hard_instance());
    body.push('}');
    let (status, reply) = request(addr, "POST", "/jobs", &body);
    assert_eq!(status, 202, "submission accepted: {reply}");
    let id = Json::parse(&reply)
        .expect("reply is JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id field");

    poll_job(addr, id, |s| s == "running");
    let (status, reply) = request(addr, "DELETE", &format!("/jobs/{id}"), "");
    assert_eq!(status, 202, "running job starts cancelling: {reply}");

    let job = poll_job(addr, id, |s| s != "queued" && s != "running");
    assert_eq!(
        job.get("status").and_then(Json::as_str),
        Some("cancelled"),
        "{job:?}"
    );
    assert_eq!(job.get("outcome").and_then(Json::as_str), Some("cancelled"));

    let (_, exposition) = request(addr, "GET", "/metrics", "");
    assert_eq!(
        metric_value(&exposition, "recopack_jobs_cancelled_total{kind=\"opp\"}"),
        Some(1.0)
    );
    assert_eq!(
        metric_value(&exposition, "recopack_jobs_completed_total{kind=\"opp\"}"),
        Some(0.0)
    );

    // Cancelling a finished job is refused.
    let (status, _) = request(addr, "DELETE", &format!("/jobs/{id}"), "");
    assert_eq!(status, 409);

    server.shutdown();
    server.join();
}

#[test]
fn saturated_queue_rejects_submissions_and_reports_unhealthy() {
    let server = bind_test_server(1, 1);
    let addr = server.local_addr();

    let submit = |name: &str, instance: &str| -> (u16, String) {
        let mut body = format!(
            "{{\"kind\":\"opp\",\"name\":\"{name}\",\"use_bounds\":false,\
             \"use_heuristics\":false,\"time_limit_ms\":60000,\"instance\":"
        );
        recopack_core::telemetry::push_json_str(&mut body, instance);
        body.push('}');
        request(addr, "POST", "/jobs", &body)
    };

    // Three *distinct* hard instances: identical ones would dedup onto a
    // single in-flight run instead of filling the queue.
    let (status, reply) = submit("occupant", &hard_instance_with(12));
    assert_eq!(status, 202);
    let occupant = Json::parse(&reply)
        .expect("reply is JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id");
    poll_job(addr, occupant, |s| s == "running");

    // The single queue slot fills; the server reports saturation.
    let (status, reply) = submit("waiter", &hard_instance_with(13));
    assert_eq!(status, 202);
    let waiter = Json::parse(&reply)
        .expect("reply is JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id");
    let (status, health) = get_json(addr, "/healthz");
    assert_eq!(status, 503);
    assert_eq!(
        health.get("status").and_then(Json::as_str),
        Some("saturated")
    );

    let (status, reply) = submit("overflow", &hard_instance_with(14));
    assert_eq!(status, 503, "full queue refuses work: {reply}");

    // Malformed submissions are counted under the closed `unknown` label.
    let (status, _) = request(addr, "POST", "/jobs", "{\"kind\":\"sudoku\"}");
    assert_eq!(status, 400);

    let (_, exposition) = request(addr, "GET", "/metrics", "");
    assert_eq!(
        metric_value(&exposition, "recopack_jobs_rejected_total{kind=\"opp\"}"),
        Some(1.0)
    );
    assert_eq!(
        metric_value(
            &exposition,
            "recopack_jobs_rejected_total{kind=\"unknown\"}"
        ),
        Some(1.0)
    );
    assert_eq!(metric_value(&exposition, "recopack_queue_depth"), Some(1.0));

    // Cancel the queued waiter first (it never runs), then the occupant.
    let (status, _) = request(addr, "DELETE", &format!("/jobs/{waiter}"), "");
    assert_eq!(status, 200, "queued job cancels immediately");
    let (status, _) = request(addr, "DELETE", &format!("/jobs/{occupant}"), "");
    assert_eq!(status, 202);
    poll_job(addr, occupant, |s| s != "queued" && s != "running");

    let (status, health) = get_json(addr, "/healthz");
    assert_eq!(status, 200, "queue drained, healthy again: {health:?}");

    let (_, listing) = get_json(addr, "/jobs");
    let jobs = listing
        .get("jobs")
        .and_then(Json::as_array)
        .expect("jobs array");
    assert_eq!(jobs.len(), 2, "occupant and waiter are both known");

    server.shutdown();
    server.join();
}

#[test]
fn keep_alive_serves_sequential_and_pipelined_requests_on_one_stream() {
    let server = bind_test_server(1, 4);
    let addr = server.local_addr();

    let mut conn = TestConn::connect(addr);

    // Two sequential requests over the same connection.
    conn.send("GET", "/healthz", "");
    let (status, head, _) = conn.read_framed();
    assert_eq!(status, 200);
    assert!(
        head.contains("Connection: keep-alive"),
        "HTTP/1.1 persists by default: {head}"
    );
    conn.send("GET", "/healthz", "");
    let (status, _, body) = conn.read_framed();
    assert_eq!(status, 200, "second request on the same stream: {body}");

    // Two pipelined requests written back to back, answered in order.
    conn.send("GET", "/healthz", "");
    conn.send("GET", "/metrics", "");
    let (status, _, body) = conn.read_framed();
    assert_eq!(status, 200);
    assert!(body.contains("\"status\""), "healthz answers first: {body}");
    let (status, _, exposition) = conn.read_framed();
    assert_eq!(status, 200);
    assert!(
        exposition.contains("recopack_http_connections_total"),
        "metrics answers second"
    );
    // Everything above traveled over a single accepted connection.
    assert_eq!(
        metric_value(&exposition, "recopack_http_connections_total"),
        Some(1.0)
    );

    // An explicit close is honored: response says so, then EOF.
    conn.send_raw(
        b"GET /healthz HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\n\
          Content-Length: 0\r\n\r\n",
    );
    let (status, head, _) = conn.read_framed();
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "{head}");
    conn.assert_eof();

    server.shutdown();
    server.join();
}

#[test]
fn protocol_errors_are_reported_without_killing_the_connection() {
    let server = bind_test_server(1, 4);
    let addr = server.local_addr();
    let mut conn = TestConn::connect(addr);

    // Malformed JSON body: the framing is intact, so after the 400 the
    // same connection keeps serving.
    conn.send("POST", "/jobs", "{not json");
    let (status, head, _) = conn.read_framed();
    assert_eq!(status, 400);
    assert!(head.contains("Connection: keep-alive"), "{head}");
    conn.send("GET", "/healthz", "");
    let (status, _, _) = conn.read_framed();
    assert_eq!(status, 200, "connection survives the 400");

    // Oversized body (above the 4 MiB limit, below the drain bound): the
    // server swallows it, answers 413, and keeps the connection.
    let oversized = "x".repeat(4 * 1024 * 1024 + 1);
    conn.send("POST", "/jobs", &oversized);
    let (status, _, body) = conn.read_framed();
    assert_eq!(status, 413, "{body}");
    conn.send("GET", "/healthz", "");
    let (status, _, _) = conn.read_framed();
    assert_eq!(status, 200, "connection survives the 413");

    // A garbled request line leaves the stream unframeable: 400, close.
    conn.send_raw(b"NONSENSE\r\n\r\n");
    let (status, head, _) = conn.read_framed();
    assert_eq!(status, 400);
    assert!(head.contains("Connection: close"), "{head}");
    conn.assert_eof();

    server.shutdown();
    server.join();
}

#[test]
fn cached_hit_returns_identical_report_without_new_solver_work() {
    let server = bind_test_server(1, 4);
    let addr = server.local_addr();

    let mut body =
        String::from("{\"kind\":\"opp\",\"name\":\"pair\",\"use_heuristics\":false,\"instance\":");
    recopack_core::telemetry::push_json_str(&mut body, PAIR);
    body.push('}');

    // First submission: a miss that runs the solver.
    let (status, reply) = request(addr, "POST", "/jobs", &body);
    assert_eq!(status, 202, "{reply}");
    let first = Json::parse(&reply)
        .expect("reply is JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id");
    let first_job = poll_job(addr, first, |s| s != "queued" && s != "running");
    assert_eq!(first_job.get("status").and_then(Json::as_str), Some("done"));

    let (_, exposition) = request(addr, "GET", "/metrics", "");
    assert_eq!(
        metric_value(&exposition, "recopack_cache_misses_total"),
        Some(1.0)
    );
    assert_eq!(
        metric_value(&exposition, "recopack_cache_hits_total"),
        Some(0.0)
    );
    assert_eq!(
        metric_value(&exposition, "recopack_job_nodes_count"),
        Some(1.0),
        "one solver run so far"
    );

    // Second, identical submission: born finished, straight from cache.
    let (status, reply) = request(addr, "POST", "/jobs", &body);
    assert_eq!(status, 202, "{reply}");
    let reply = Json::parse(&reply).expect("reply is JSON");
    assert_eq!(
        reply.get("status").and_then(Json::as_str),
        Some("done"),
        "a cache hit is done at submission time"
    );
    let second = reply.get("id").and_then(Json::as_u64).expect("id");
    let second_job = poll_job(addr, second, |s| s != "queued" && s != "running");

    // The replayed report and placement are identical to the original —
    // same serialized bytes, stats and all.
    assert_eq!(
        first_job.get("report").expect("report").to_json_string(),
        second_job.get("report").expect("report").to_json_string(),
        "cached report must be identical to the original"
    );
    assert_eq!(
        first_job.get("placement").and_then(Json::as_str),
        second_job.get("placement").and_then(Json::as_str)
    );

    let (_, exposition) = request(addr, "GET", "/metrics", "");
    assert_eq!(
        metric_value(&exposition, "recopack_cache_hits_total"),
        Some(1.0)
    );
    assert_eq!(
        metric_value(&exposition, "recopack_cache_misses_total"),
        Some(1.0)
    );
    assert_eq!(
        metric_value(&exposition, "recopack_job_nodes_count"),
        Some(1.0),
        "the hit must not spend a second solver run"
    );
    assert_eq!(
        metric_value(&exposition, "recopack_jobs_completed_total{kind=\"opp\"}"),
        Some(2.0),
        "both clients got their answer"
    );
    assert_eq!(
        metric_value(&exposition, "recopack_cache_entries"),
        Some(1.0)
    );

    server.shutdown();
    server.join();
}

#[test]
fn inflight_dedup_shares_one_solver_run_between_identical_jobs() {
    // One worker: the occupant holds it while two identical submissions
    // pile up behind, forcing a deterministic dedup join.
    let server = bind_test_server(1, 4);
    let addr = server.local_addr();

    let mut occupant_body = String::from(
        "{\"kind\":\"opp\",\"name\":\"occupant\",\"use_bounds\":false,\
         \"use_heuristics\":false,\"time_limit_ms\":60000,\"instance\":",
    );
    recopack_core::telemetry::push_json_str(&mut occupant_body, &hard_instance());
    occupant_body.push('}');
    let (status, reply) = request(addr, "POST", "/jobs", &occupant_body);
    assert_eq!(status, 202, "{reply}");
    let occupant = Json::parse(&reply)
        .expect("reply is JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id");
    poll_job(addr, occupant, |s| s == "running");

    // Two identical submissions while the worker is busy: the second
    // joins the first's in-flight group instead of taking a queue slot.
    let mut body =
        String::from("{\"kind\":\"opp\",\"name\":\"first\",\"use_heuristics\":false,\"instance\":");
    recopack_core::telemetry::push_json_str(&mut body, PAIR);
    body.push('}');
    let (status, reply) = request(addr, "POST", "/jobs", &body);
    assert_eq!(status, 202, "{reply}");
    let driver = Json::parse(&reply)
        .expect("reply is JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id");
    let mut body = String::from(
        "{\"kind\":\"opp\",\"name\":\"second\",\"use_heuristics\":false,\"instance\":",
    );
    recopack_core::telemetry::push_json_str(&mut body, PAIR);
    body.push('}');
    let (status, reply) = request(addr, "POST", "/jobs", &body);
    assert_eq!(status, 202, "{reply}");
    let follower = Json::parse(&reply)
        .expect("reply is JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id");

    let (_, exposition) = request(addr, "GET", "/metrics", "");
    assert_eq!(
        metric_value(&exposition, "recopack_jobs_deduplicated_total"),
        Some(1.0),
        "the second identical submission joins in flight"
    );

    // Free the worker; the shared run executes once and publishes to
    // both subscribers.
    let (status, _) = request(addr, "DELETE", &format!("/jobs/{occupant}"), "");
    assert_eq!(status, 202);
    let driver_job = poll_job(addr, driver, |s| s != "queued" && s != "running");
    let follower_job = poll_job(addr, follower, |s| s != "queued" && s != "running");
    assert_eq!(
        driver_job.get("status").and_then(Json::as_str),
        Some("done")
    );
    assert_eq!(
        follower_job.get("status").and_then(Json::as_str),
        Some("done")
    );
    assert_eq!(
        driver_job.get("report").expect("report").to_json_string(),
        follower_job.get("report").expect("report").to_json_string(),
        "both subscribers receive the same report"
    );

    // The shared stats agree with a direct in-process solve.
    let instance = format::parse_instance(PAIR)
        .expect("pair parses")
        .with_transitive_closure();
    let (_, direct_stats) = Opp::new(&instance)
        .with_config(SolverConfig {
            threads: 1,
            use_heuristics: false,
            ..SolverConfig::default()
        })
        .solve_with_stats();
    let direct = Json::parse(&stats_to_json(&direct_stats)).expect("stats JSON parses");
    assert_eq!(
        driver_job.get("report").and_then(|r| r.get("stats")),
        Some(&direct)
    );

    let (_, exposition) = request(addr, "GET", "/metrics", "");
    assert_eq!(
        metric_value(&exposition, "recopack_job_nodes_count"),
        Some(2.0),
        "exactly two solver runs: the occupant and ONE shared run"
    );
    assert_eq!(
        metric_value(&exposition, "recopack_jobs_completed_total{kind=\"opp\"}"),
        Some(2.0)
    );
    assert_eq!(
        metric_value(&exposition, "recopack_jobs_cancelled_total{kind=\"opp\"}"),
        Some(1.0)
    );

    server.shutdown();
    server.join();
}

#[test]
fn unsubscribing_a_deduped_job_keeps_the_shared_run_alive() {
    let server = bind_test_server(1, 4);
    let addr = server.local_addr();

    let mut occupant_body = String::from(
        "{\"kind\":\"opp\",\"name\":\"occupant\",\"use_bounds\":false,\
         \"use_heuristics\":false,\"time_limit_ms\":60000,\"instance\":",
    );
    recopack_core::telemetry::push_json_str(&mut occupant_body, &hard_instance());
    occupant_body.push('}');
    let (status, reply) = request(addr, "POST", "/jobs", &occupant_body);
    assert_eq!(status, 202, "{reply}");
    let occupant = Json::parse(&reply)
        .expect("reply is JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id");
    poll_job(addr, occupant, |s| s == "running");

    let submit_pair = |name: &str| -> u64 {
        let mut body = format!(
            "{{\"kind\":\"opp\",\"name\":\"{name}\",\"use_heuristics\":false,\"instance\":"
        );
        recopack_core::telemetry::push_json_str(&mut body, PAIR);
        body.push('}');
        let (status, reply) = request(addr, "POST", "/jobs", &body);
        assert_eq!(status, 202, "{reply}");
        Json::parse(&reply)
            .expect("reply is JSON")
            .get("id")
            .and_then(Json::as_u64)
            .expect("id")
    };
    let driver = submit_pair("driver");
    let follower = submit_pair("follower");

    // Unsubscribing the driver cancels only that job; the follower
    // inherits the pending run.
    let (status, reply) = request(addr, "DELETE", &format!("/jobs/{driver}"), "");
    assert_eq!(status, 200, "unsubscribe completes immediately: {reply}");
    let driver_job = poll_job(addr, driver, |s| s != "queued" && s != "running");
    assert_eq!(
        driver_job.get("status").and_then(Json::as_str),
        Some("cancelled")
    );
    assert_eq!(
        driver_job.get("outcome").and_then(Json::as_str),
        Some("unsubscribed from shared run")
    );

    // Free the worker: the run still happens and the follower gets it.
    let (status, _) = request(addr, "DELETE", &format!("/jobs/{occupant}"), "");
    assert_eq!(status, 202);
    let follower_job = poll_job(addr, follower, |s| s != "queued" && s != "running");
    assert_eq!(
        follower_job.get("status").and_then(Json::as_str),
        Some("done"),
        "the surviving subscriber still receives the result: {follower_job:?}"
    );
    assert_eq!(
        follower_job.get("outcome").and_then(Json::as_str),
        Some("feasible")
    );

    // Deleting the finished follower is refused like any finished job.
    let (status, _) = request(addr, "DELETE", &format!("/jobs/{follower}"), "");
    assert_eq!(status, 409);

    server.shutdown();
    server.join();
}

/// Id field of a submission reply.
fn job_id(reply: &str) -> u64 {
    Json::parse(reply)
        .expect("reply is JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id field")
}

/// The cache key is invariant under task relabeling and reordering, so a
/// hit (or an in-flight join) may pair submissions whose task names
/// differ or whose identical names are bound to different geometries.
/// The served placement must always name *this* submission's tasks and
/// be valid for *its* task bindings.
#[test]
fn shared_and_cached_placements_carry_each_submissions_own_task_names() {
    // One abstract instance — a three-task chain with distinct
    // geometries — under three presentations: the base, a renamed and
    // reordered twin, and one that reuses the base's names bound to
    // *different* tasks.
    const BASE: &str =
        "chip 4 4\nhorizon 6\ntask a 1 2 3\ntask b 2 2 1\ntask c 3 1 2\narc a b\narc b c\n";
    const RENAMED: &str =
        "chip 4 4\nhorizon 6\ntask z 3 1 2\ntask y 2 2 1\ntask x 1 2 3\narc x y\narc y z\n";
    const SWAPPED: &str =
        "chip 4 4\nhorizon 6\ntask a 3 1 2\ntask b 2 2 1\ntask c 1 2 3\narc c b\narc b a\n";

    let server = bind_test_server(1, 4);
    let addr = server.local_addr();

    // Block the single worker so BASE and RENAMED form one dedup group.
    let mut occupant_body = String::from(
        "{\"kind\":\"opp\",\"name\":\"occupant\",\"use_bounds\":false,\
         \"use_heuristics\":false,\"time_limit_ms\":60000,\"instance\":",
    );
    recopack_core::telemetry::push_json_str(&mut occupant_body, &hard_instance());
    occupant_body.push('}');
    let (status, reply) = request(addr, "POST", "/jobs", &occupant_body);
    assert_eq!(status, 202, "{reply}");
    let occupant = job_id(&reply);
    poll_job(addr, occupant, |s| s == "running");

    let submit = |name: &str, instance: &str| -> u64 {
        let mut body = format!("{{\"kind\":\"opp\",\"name\":\"{name}\",\"instance\":");
        recopack_core::telemetry::push_json_str(&mut body, instance);
        body.push('}');
        let (status, reply) = request(addr, "POST", "/jobs", &body);
        assert_eq!(status, 202, "{reply}");
        job_id(&reply)
    };
    let driver = submit("driver", BASE);
    let joiner = submit("joiner", RENAMED);
    let (_, exposition) = request(addr, "GET", "/metrics", "");
    assert_eq!(
        metric_value(&exposition, "recopack_jobs_deduplicated_total"),
        Some(1.0),
        "the relabeled twin joins the in-flight run"
    );

    // Free the worker; the shared run publishes to both subscribers.
    let (status, _) = request(addr, "DELETE", &format!("/jobs/{occupant}"), "");
    assert_eq!(status, 202);

    // Each subscriber's placement must parse against its *own* instance
    // (unknown task names fail the parse) and verify from first
    // principles (a name bound to the wrong geometry or chain position
    // fails bounds, collision, or precedence checks).
    let placement_of = |id: u64, instance_text: &str| -> String {
        let job = poll_job(addr, id, |s| s != "queued" && s != "running");
        assert_eq!(
            job.get("status").and_then(Json::as_str),
            Some("done"),
            "{job:?}"
        );
        let text = job
            .get("placement")
            .and_then(Json::as_str)
            .expect("feasible job carries a placement")
            .to_string();
        let instance = format::parse_instance(instance_text)
            .expect("instance parses")
            .with_transitive_closure();
        let placement = format::parse_placement(&text, &instance)
            .expect("placement names this submission's tasks");
        placement
            .verify(&instance)
            .expect("placement is valid for this submission's task bindings");
        text
    };
    let base_text = placement_of(driver, BASE);
    assert!(
        base_text.contains("place a ") && !base_text.contains("place x "),
        "{base_text}"
    );
    let renamed_text = placement_of(joiner, RENAMED);
    assert!(
        renamed_text.contains("place x ") && !renamed_text.contains("place a "),
        "{renamed_text}"
    );

    // The third presentation resolves from the cache; its same-named
    // tasks have different geometries, so only a correctly re-rendered
    // placement verifies.
    let third = submit("swapped", SWAPPED);
    let (_, exposition) = request(addr, "GET", "/metrics", "");
    assert_eq!(
        metric_value(&exposition, "recopack_cache_hits_total"),
        Some(1.0),
        "the swapped presentation hits the cache"
    );
    placement_of(third, SWAPPED);

    server.shutdown();
    server.join();
}

/// Cancelling the sole subscriber of a *running* job retires its dedup
/// group immediately: an identical submission arriving in the window
/// before the solver unwinds must start a fresh run, not join the
/// cancelled one and be published "cancelled".
#[test]
fn resubmitting_after_cancelling_a_running_job_starts_a_fresh_run() {
    let server = bind_test_server(1, 4);
    let addr = server.local_addr();

    let mut body = String::from(
        "{\"kind\":\"opp\",\"name\":\"victim\",\"use_bounds\":false,\
         \"use_heuristics\":false,\"time_limit_ms\":60000,\"instance\":",
    );
    recopack_core::telemetry::push_json_str(&mut body, &hard_instance());
    body.push('}');
    let (status, reply) = request(addr, "POST", "/jobs", &body);
    assert_eq!(status, 202, "{reply}");
    let victim = job_id(&reply);
    poll_job(addr, victim, |s| s == "running");

    let (status, _) = request(addr, "DELETE", &format!("/jobs/{victim}"), "");
    assert_eq!(status, 202);

    // Identical bytes, resubmitted while the cancelled run unwinds.
    let (status, reply) = request(addr, "POST", "/jobs", &body);
    assert_eq!(status, 202, "{reply}");
    let fresh = job_id(&reply);
    assert_ne!(fresh, victim);

    // The victim ends cancelled; the resubmission gets its own solver
    // run (it would never reach "running" had it joined the old group).
    let victim_job = poll_job(addr, victim, |s| s != "queued" && s != "running");
    assert_eq!(
        victim_job.get("status").and_then(Json::as_str),
        Some("cancelled")
    );
    poll_job(addr, fresh, |s| s == "running");
    let (_, exposition) = request(addr, "GET", "/metrics", "");
    assert_eq!(
        metric_value(&exposition, "recopack_jobs_deduplicated_total"),
        Some(0.0),
        "the resubmission must not join the cancelled run"
    );

    let (status, _) = request(addr, "DELETE", &format!("/jobs/{fresh}"), "");
    assert_eq!(status, 202);
    poll_job(addr, fresh, |s| s != "queued" && s != "running");

    server.shutdown();
    server.join();
}

#[test]
fn batch_submissions_round_trip_with_per_item_outcomes() {
    let server = bind_test_server(1, 8);
    let addr = server.local_addr();

    // A good item and a bad one in a single batch: the bad item is
    // rejected in place without poisoning the good one.
    let mut batch = String::from(
        "{\"jobs\":[{\"kind\":\"opp\",\"name\":\"batched\",\"use_heuristics\":false,\"instance\":",
    );
    recopack_core::telemetry::push_json_str(&mut batch, PAIR);
    batch.push_str("},{\"kind\":\"sudoku\"}]}");
    let (status, reply) = request(addr, "POST", "/jobs:batch", &batch);
    assert_eq!(status, 200, "{reply}");
    let doc = Json::parse(&reply).expect("batch reply is JSON");
    let entries = doc
        .get("jobs")
        .and_then(Json::as_array)
        .expect("jobs array");
    assert_eq!(entries.len(), 2);
    let id = entries[0].get("id").and_then(Json::as_u64).expect("id");
    assert_eq!(
        entries[1].get("status").and_then(Json::as_str),
        Some("rejected")
    );
    assert_eq!(entries[1].get("code").and_then(Json::as_u64), Some(400));
    assert!(entries[1].get("error").and_then(Json::as_str).is_some());

    let job = poll_job(addr, id, |s| s != "queued" && s != "running");
    assert_eq!(job.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(job.get("outcome").and_then(Json::as_str), Some("feasible"));

    // A bare top-level array works too.
    let mut batch =
        String::from("[{\"kind\":\"opp\",\"name\":\"bare\",\"use_heuristics\":false,\"instance\":");
    recopack_core::telemetry::push_json_str(&mut batch, PAIR);
    batch.push_str("}]");
    let (status, reply) = request(addr, "POST", "/jobs:batch", &batch);
    assert_eq!(status, 200, "{reply}");
    let doc = Json::parse(&reply).expect("batch reply is JSON");
    let entries = doc
        .get("jobs")
        .and_then(Json::as_array)
        .expect("jobs array");
    assert_eq!(entries.len(), 1);
    assert_eq!(
        entries[0].get("status").and_then(Json::as_str),
        Some("done"),
        "identical instance resolves straight from the cache: {reply}"
    );

    // Degenerate batches are refused as a whole.
    let (status, _) = request(addr, "POST", "/jobs:batch", "[]");
    assert_eq!(status, 400);
    let (status, _) = request(addr, "POST", "/jobs:batch", "{\"jobs\":3}");
    assert_eq!(status, 400);

    server.shutdown();
    server.join();
}

#[test]
fn traced_job_streams_progress_and_events_and_untraced_runs_stay_pristine() {
    let server = bind_test_server(1, 4);
    let addr = server.local_addr();

    // A long-running traced job: an exhaustive infeasibility refutation
    // that only a cancel will stop within the test's lifetime.
    let mut body = String::from(
        "{\"kind\":\"opp\",\"name\":\"traced\",\"trace\":true,\"use_bounds\":false,\
         \"use_heuristics\":false,\"time_limit_ms\":60000,\"instance\":",
    );
    recopack_core::telemetry::push_json_str(&mut body, &hard_instance());
    body.push('}');
    let (status, reply) = request(addr, "POST", "/jobs", &body);
    assert_eq!(status, 202, "{reply}");
    let id = job_id(&reply);

    // Subscribe to the event stream on a keep-alive connection while the
    // job runs; the response stays open until the job is terminal.
    let mut events_conn = TestConn::connect(addr);
    events_conn.send("GET", &format!("/jobs/{id}/events"), "");

    // Progress while running: poll until the snapshot shows real search
    // work and the stream subscriber.
    let deadline = Instant::now() + Duration::from_secs(60);
    let snapshot = loop {
        let (status, doc) = get_json(addr, &format!("/jobs/{id}/progress"));
        assert_eq!(status, 200);
        let word = doc
            .get("status")
            .and_then(Json::as_str)
            .expect("status field")
            .to_string();
        assert!(
            word == "queued" || word == "running",
            "the hard job must still be live, got {word:?}"
        );
        let nodes = doc.get("nodes").and_then(Json::as_u64).unwrap_or(0);
        let subscribers = doc
            .get("trace")
            .and_then(|t| t.get("subscribers"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if word == "running" && nodes > 0 && subscribers == 1 {
            break doc;
        }
        assert!(
            Instant::now() < deadline,
            "no running snapshot with nodes > 0 and one subscriber: {nodes} nodes"
        );
        std::thread::sleep(Duration::from_millis(2));
    };
    assert!(
        snapshot
            .get("solve_ms")
            .and_then(Json::as_f64)
            .is_some_and(|ms| ms > 0.0),
        "running job accrues solve time"
    );
    assert!(
        snapshot
            .get("depth_profile")
            .and_then(Json::as_array)
            .is_some_and(|p| !p.is_empty()),
        "branching search populates the depth profile"
    );
    assert!(
        snapshot
            .get("events_per_sec")
            .and_then(Json::as_f64)
            .is_some_and(|rate| rate > 0.0),
        "live event rate is reported"
    );

    // Let the subscriber observe a real window of the search before
    // stopping it: the poll above can succeed within a millisecond of the
    // subscription, and a window that small may carry only a single event.
    std::thread::sleep(Duration::from_millis(150));

    // Stop the job; the worker publishes `cancelled` at its next budget
    // checkpoint and the event stream closes behind it.
    let (status, _) = request(addr, "DELETE", &format!("/jobs/{id}"), "");
    assert_eq!(status, 202);
    poll_job(addr, id, |s| s == "cancelled");

    // The stream delivers NDJSON search events and a final end record,
    // all on the same keep-alive connection.
    let (status, _, ndjson) = events_conn.read_chunked();
    assert_eq!(status, 200);
    let lines: Vec<&str> = ndjson.lines().collect();
    assert!(
        lines.len() >= 2,
        "at least one event plus the end record: {} lines",
        lines.len()
    );
    for line in &lines {
        Json::parse(line).unwrap_or_else(|e| panic!("bad NDJSON line {line:?}: {e}"));
    }
    assert!(
        lines[..lines.len() - 1]
            .iter()
            .any(|l| l.contains("\"event\":\"branch\"")),
        "stream carries real search events; got {} lines, first: {:?}",
        lines.len(),
        &lines[..lines.len().min(5)]
    );
    let end = Json::parse(lines.last().expect("end record")).expect("end record is JSON");
    assert_eq!(end.get("event").and_then(Json::as_str), Some("end"));
    assert_eq!(end.get("job").and_then(Json::as_u64), Some(id));
    assert_eq!(end.get("status").and_then(Json::as_str), Some("cancelled"));
    assert!(
        end.get("dropped").and_then(Json::as_u64).is_some(),
        "end record reports the subscriber's dropped count"
    );

    // The chunked framing was exact: the connection serves another
    // request afterwards.
    events_conn.send("GET", "/healthz", "");
    let (status, _, _) = events_conn.read_framed();
    assert_eq!(status, 200, "keep-alive connection survives the stream");

    // An untraced job is byte-identical to a direct solve: no subscriber
    // or journal overhead leaks into its statistics.
    let mut body =
        String::from("{\"kind\":\"opp\",\"name\":\"pair\",\"use_heuristics\":false,\"instance\":");
    recopack_core::telemetry::push_json_str(&mut body, PAIR);
    body.push('}');
    let (status, reply) = request(addr, "POST", "/jobs", &body);
    assert_eq!(status, 202, "{reply}");
    let untraced = job_id(&reply);
    let job = poll_job(addr, untraced, |s| s != "queued" && s != "running");
    let instance = format::parse_instance(PAIR)
        .expect("pair instance parses")
        .with_transitive_closure();
    let (_, direct_stats) = Opp::new(&instance)
        .with_config(SolverConfig {
            threads: 1,
            use_heuristics: false,
            ..SolverConfig::default()
        })
        .solve_with_stats();
    let direct = Json::parse(&stats_to_json(&direct_stats)).expect("stats JSON parses");
    assert_eq!(
        job.get("report").and_then(|r| r.get("stats")),
        Some(&direct),
        "untraced served stats must match a direct solve byte-for-byte"
    );

    // Untraced jobs have no stream to serve (409), and their progress
    // snapshot reports no trace; unknown jobs 404 on both endpoints.
    let (status, doc) = get_json(addr, &format!("/jobs/{untraced}/progress"));
    assert_eq!(status, 200);
    assert_eq!(doc.get("trace"), Some(&Json::Null));
    let (status, _) = request(addr, "GET", &format!("/jobs/{untraced}/events"), "");
    assert_eq!(status, 409);
    let (status, _) = request(addr, "GET", "/jobs/999999/progress", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/jobs/999999/events", "");
    assert_eq!(status, 404);

    server.shutdown();
    server.join();
}

#[test]
fn request_ids_correlate_submissions_and_land_in_the_flight_recorder() {
    let server = bind_test_server(1, 4);
    let addr = server.local_addr();

    // A client-supplied X-Request-Id is echoed on the response and
    // attached to the job it admitted.
    let mut body = String::from(
        "{\"kind\":\"opp\",\"name\":\"tagged\",\"use_heuristics\":false,\"instance\":",
    );
    recopack_core::telemetry::push_json_str(&mut body, PAIR);
    body.push('}');
    let mut conn = TestConn::connect(addr);
    conn.send_raw(
        format!(
            "POST /jobs HTTP/1.1\r\nHost: e2e\r\nX-Request-Id: corr-e2e-1\r\n\
             Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    );
    let (status, head, reply) = conn.read_framed();
    assert_eq!(status, 202, "{reply}");
    assert!(
        head.contains("X-Request-Id: corr-e2e-1"),
        "response echoes the supplied id: {head}"
    );
    let id = job_id(&reply);
    let job = poll_job(addr, id, |s| s != "queued" && s != "running");
    assert_eq!(
        job.get("request_id").and_then(Json::as_str),
        Some("corr-e2e-1"),
        "job record carries the submission's request id"
    );

    // A malformed id (spaces) is replaced with a generated one.
    conn.send_raw(
        format!(
            "POST /jobs HTTP/1.1\r\nHost: e2e\r\nX-Request-Id: not a valid id\r\n\
             Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    );
    let (status, head, reply) = conn.read_framed();
    assert_eq!(status, 202, "{reply}");
    assert!(
        head.contains("X-Request-Id: req-"),
        "unusable ids are replaced, not echoed: {head}"
    );

    // The flight recorder saw both jobs, newest first, with the
    // correlation id, verdict, and how each result was produced (the
    // second submission hit the cache).
    let (status, recorder) = get_json(addr, "/debug/jobs");
    assert_eq!(status, 200);
    let jobs = recorder
        .get("jobs")
        .and_then(Json::as_array)
        .expect("recorder jobs array");
    assert_eq!(jobs.len(), 2, "two recorded jobs");
    assert_eq!(jobs[1].get("id").and_then(Json::as_u64), Some(id));
    assert_eq!(
        jobs[1].get("request_id").and_then(Json::as_str),
        Some("corr-e2e-1")
    );
    assert_eq!(jobs[1].get("via").and_then(Json::as_str), Some("run"));
    assert_eq!(jobs[1].get("status").and_then(Json::as_str), Some("done"));
    assert!(
        jobs[1]
            .get("solve_ms")
            .and_then(Json::as_f64)
            .is_some_and(|ms| ms >= 0.0),
        "recorded summaries carry the phase split"
    );
    assert_eq!(jobs[0].get("via").and_then(Json::as_str), Some("cache"));
    assert!(recorder.get("slow").is_some(), "slow-job section present");

    server.shutdown();
    server.join();
}

#[test]
fn late_submission_after_cancelling_a_shared_run_starts_fresh() {
    let server = bind_test_server(1, 4);
    let addr = server.local_addr();

    let mut body = String::from(
        "{\"kind\":\"opp\",\"use_bounds\":false,\"use_heuristics\":false,\
         \"time_limit_ms\":60000,\"instance\":",
    );
    recopack_core::telemetry::push_json_str(&mut body, &hard_instance_with(11));
    body.push('}');
    let (status, reply) = request(addr, "POST", "/jobs", &body);
    assert_eq!(status, 202, "{reply}");
    let victim = job_id(&reply);
    poll_job(addr, victim, |s| s == "running");

    // A second identical submission joins the running group...
    let (status, reply) = request(addr, "POST", "/jobs", &body);
    assert_eq!(status, 202, "{reply}");
    let joiner = job_id(&reply);
    let (_, exposition) = request(addr, "GET", "/metrics", "");
    assert_eq!(
        metric_value(&exposition, "recopack_jobs_deduplicated_total"),
        Some(1.0)
    );

    // ...then unsubscribes, and the last member cancels the run. The
    // group's token is fired while the solver is still unwinding.
    let (status, _) = request(addr, "DELETE", &format!("/jobs/{joiner}"), "");
    assert_eq!(status, 200, "unsubscribe completes immediately");
    let (status, _) = request(addr, "DELETE", &format!("/jobs/{victim}"), "");
    assert_eq!(status, 202, "running cancel is asynchronous");

    // An identical submission racing the unwinding worker must start a
    // fresh run — never observe `cancelled` for a run it never cancelled.
    let (status, reply) = request(addr, "POST", "/jobs", &body);
    assert_eq!(status, 202, "{reply}");
    let fresh = job_id(&reply);
    let doc = poll_job(addr, fresh, |s| s != "queued");
    assert_ne!(
        doc.get("status").and_then(Json::as_str),
        Some("cancelled"),
        "late submission must not inherit the cancelled verdict: {doc:?}"
    );
    let (_, exposition) = request(addr, "GET", "/metrics", "");
    assert_eq!(
        metric_value(&exposition, "recopack_jobs_deduplicated_total"),
        Some(1.0),
        "the late submission started fresh instead of joining"
    );

    let (status, _) = request(addr, "DELETE", &format!("/jobs/{fresh}"), "");
    assert!(status == 200 || status == 202, "cleanup cancel: {status}");
    poll_job(addr, fresh, |s| s == "cancelled");
    poll_job(addr, victim, |s| s == "cancelled");
    server.shutdown();
    server.join();
}

#[test]
fn debug_profile_captures_folded_stacks_of_a_running_job() {
    let server = bind_test_server(1, 4);
    let addr = server.local_addr();

    // Parameter validation and method handling answer without capturing.
    let (status, body) = request(addr, "GET", "/debug/profile?seconds=0", "");
    assert_eq!(status, 400, "{body}");
    let (status, body) = request(addr, "GET", "/debug/profile?seconds=99", "");
    assert_eq!(status, 400, "duration cap: {body}");
    let (status, body) = request(addr, "GET", "/debug/profile?hz=5000", "");
    assert_eq!(status, 400, "rate cap: {body}");
    let (status, body) = request(addr, "GET", "/debug/profile?depth=1", "");
    assert_eq!(status, 400, "unknown parameter: {body}");
    let (status, _) = request(addr, "POST", "/debug/profile?seconds=1", "");
    assert_eq!(status, 405);

    // Keep a worker busy so the capture has a live beacon to sample.
    let mut body = String::from(
        "{\"kind\":\"opp\",\"name\":\"profiled\",\"use_bounds\":false,\
         \"use_heuristics\":false,\"time_limit_ms\":60000,\"instance\":",
    );
    recopack_core::telemetry::push_json_str(&mut body, &hard_instance());
    body.push('}');
    let (status, reply) = request(addr, "POST", "/jobs", &body);
    assert_eq!(status, 202, "{reply}");
    let id = job_id(&reply);
    poll_job(addr, id, |s| s == "running");

    let mut conn = TestConn::connect(addr);
    conn.send("GET", "/debug/profile?seconds=1&hz=200", "");
    let (status, head, folded) = conn.read_chunked();
    assert_eq!(status, 200, "{head}");
    assert!(
        head.to_ascii_lowercase()
            .contains("content-type: text/plain"),
        "folded stacks are plain text: {head}"
    );
    assert!(
        !folded.trim().is_empty(),
        "a 1s capture of a busy worker must sample something"
    );
    for line in folded.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("folded line has a weight");
        assert!(stack.starts_with("worker:"), "stack frame root: {line}");
        assert!(stack.contains(';'), "stack has phase frames: {line}");
        weight.parse::<u64>().expect("weight is a count");
    }

    // The JSON summary rides the same machinery and reports the capture.
    conn.send("GET", "/debug/profile?seconds=1&format=json", "");
    let (status, _, summary) = conn.read_chunked();
    assert_eq!(status, 200);
    let doc = Json::parse(&summary).unwrap_or_else(|e| panic!("summary JSON: {e}: {summary}"));
    assert!(
        doc.get("samples").and_then(Json::as_u64).expect("samples") > 0,
        "{summary}"
    );
    assert_eq!(doc.get("hz").and_then(Json::as_u64), Some(97));

    let (status, _) = request(addr, "DELETE", &format!("/jobs/{id}"), "");
    assert_eq!(status, 202);
    poll_job(addr, id, |s| s == "cancelled");
    server.shutdown();
    server.join();
}

#[test]
fn build_info_uptime_and_version_are_exposed() {
    let server = bind_test_server(1, 2);
    let addr = server.local_addr();

    let (status, health) = get_json(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(
        health.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION")),
        "healthz echoes the crate version"
    );

    let (_, exposition) = request(addr, "GET", "/metrics", "");
    let build_info = exposition
        .lines()
        .find(|line| line.starts_with("recopack_build_info{"))
        .expect("build info series present");
    assert!(
        build_info.contains(&format!("version=\"{}\"", env!("CARGO_PKG_VERSION"))),
        "{build_info}"
    );
    assert!(build_info.contains("rustc=\""), "{build_info}");
    assert!(
        build_info.contains("profile=\"debug\"") || build_info.contains("profile=\"release\""),
        "{build_info}"
    );
    assert!(build_info.ends_with(" 1"), "info gauge is always 1");
    assert!(
        metric_value(&exposition, "recopack_uptime_seconds").is_some(),
        "uptime gauge present"
    );
    for phase in [
        "idle",
        "expand",
        "propagate",
        "bounds",
        "realize",
        "backtrack",
    ] {
        let series = format!("recopack_worker_phase_occupancy{{phase=\"{phase}\"}}");
        assert!(
            metric_value(&exposition, &series).is_some(),
            "missing {series}"
        );
    }
    assert!(
        metric_value(&exposition, "recopack_workers_stalled").is_some(),
        "stall gauge present"
    );

    server.shutdown();
    server.join();
}
