//! End-to-end tests: a real server on an ephemeral port, exercised with
//! raw `TcpStream` HTTP/1.1 requests exactly the way curl or a Prometheus
//! scraper would.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use recopack_core::telemetry::stats_to_json;
use recopack_core::{Opp, SolverConfig};
use recopack_json::Json;
use recopack_model::format;
use recopack_serve::{ServeConfig, Server};

/// A trivially feasible two-task chain on a 2x2 chip.
const PAIR: &str = "chip 2 2\nhorizon 4\ntask a 2 2 2\ntask b 2 2 2\narc a b\n";

/// Infeasible by one task too many, with bounds and heuristics disabled in
/// the submission so the exhaustive refutation takes long enough to cancel.
fn hard_instance() -> String {
    let mut text = String::from("chip 6 6\nhorizon 2\n");
    for i in 0..12 {
        text.push_str(&format!("task t{i} 2 2 2\n"));
    }
    text
}

/// Sends one HTTP/1.1 request and returns `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: e2e\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("malformed response {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get_json(addr: SocketAddr, path: &str) -> (u16, Json) {
    let (status, body) = request(addr, "GET", path, "");
    let doc = Json::parse(&body).unwrap_or_else(|e| panic!("bad JSON from {path}: {e}: {body}"));
    (status, doc)
}

/// Polls `GET /jobs/{id}` until `done(status_word)` holds or a deadline
/// expires, returning the job document.
fn poll_job(addr: SocketAddr, id: u64, done: impl Fn(&str) -> bool) -> Json {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, doc) = get_json(addr, &format!("/jobs/{id}"));
        assert_eq!(status, 200, "job {id} should exist");
        let word = doc
            .get("status")
            .and_then(Json::as_str)
            .expect("status field")
            .to_string();
        if done(&word) {
            return doc;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} stuck in state {word:?}"
        );
        // Short nap between polls; the deadline above, not a fixed retry
        // count, decides when to give up, so slow CI cannot flake this.
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Value of a series in a Prometheus text exposition, by exact
/// `name{labels}` prefix.
fn metric_value(exposition: &str, series: &str) -> Option<f64> {
    exposition.lines().find_map(|line| {
        let (name, value) = line.rsplit_once(' ')?;
        (name == series).then(|| value.parse().expect("metric value parses"))
    })
}

fn bind_test_server(workers: usize, queue_depth: usize) -> Server {
    Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_depth,
    })
    .expect("bind ephemeral port")
}

#[test]
fn served_opp_job_matches_direct_solve_and_shows_in_metrics() {
    let server = bind_test_server(1, 4);
    let addr = server.local_addr();

    let (status, health) = get_json(addr, "/healthz");
    assert_eq!(status, 200, "fresh server is healthy");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));

    // Heuristics off so the job runs a real branch-and-bound search (the
    // solver-telemetry series below stay at zero for heuristic solves).
    let mut body =
        String::from("{\"kind\":\"opp\",\"name\":\"pair\",\"use_heuristics\":false,\"instance\":");
    recopack_core::telemetry::push_json_str(&mut body, PAIR);
    body.push('}');
    let (status, reply) = request(addr, "POST", "/jobs", &body);
    assert_eq!(status, 202, "submission accepted: {reply}");
    let id = Json::parse(&reply)
        .expect("submission reply is JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id field");

    let job = poll_job(addr, id, |s| s != "queued" && s != "running");
    assert_eq!(job.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(job.get("outcome").and_then(Json::as_str), Some("feasible"));
    let placement = job
        .get("placement")
        .and_then(Json::as_str)
        .expect("feasible job carries a placement");
    assert!(placement.contains('a') && placement.contains('b'));

    // The served report must agree exactly with a direct in-process solve
    // under the same configuration.
    let report = job.get("report").expect("finished job carries a report");
    assert_eq!(report.get("command").and_then(Json::as_str), Some("opp"));
    assert_eq!(report.get("instance").and_then(Json::as_str), Some("pair"));
    let instance = format::parse_instance(PAIR)
        .expect("pair instance parses")
        .with_transitive_closure();
    let (_, direct_stats) = Opp::new(&instance)
        .with_config(SolverConfig {
            threads: 1,
            use_heuristics: false,
            ..SolverConfig::default()
        })
        .solve_with_stats();
    let direct = Json::parse(&stats_to_json(&direct_stats)).expect("stats JSON parses");
    assert_eq!(
        report.get("stats"),
        Some(&direct),
        "served stats must match a direct solve"
    );

    // The exposition is well-formed and shows exactly one completed job.
    let (status, exposition) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for line in exposition.lines().filter(|l| !l.starts_with('#')) {
        let (name, value) = line.rsplit_once(' ').expect("name value pair");
        assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "{line}");
    }
    assert_eq!(
        metric_value(&exposition, "recopack_jobs_accepted_total{kind=\"opp\"}"),
        Some(1.0)
    );
    assert_eq!(
        metric_value(&exposition, "recopack_jobs_completed_total{kind=\"opp\"}"),
        Some(1.0)
    );
    assert_eq!(
        metric_value(&exposition, "recopack_job_duration_seconds_count"),
        Some(1.0)
    );
    assert_eq!(
        metric_value(&exposition, "recopack_searches_total"),
        Some(1.0)
    );
    let nodes = metric_value(&exposition, "recopack_solver_nodes_total").expect("nodes series");
    assert_eq!(nodes as u64, direct_stats.nodes);

    server.shutdown();
    server.join();
}

#[test]
fn delete_cancels_a_running_search_and_counts_it() {
    let server = bind_test_server(1, 4);
    let addr = server.local_addr();

    let mut body = String::from(
        "{\"kind\":\"opp\",\"name\":\"hard\",\"use_bounds\":false,\
         \"use_heuristics\":false,\"time_limit_ms\":60000,\"instance\":",
    );
    recopack_core::telemetry::push_json_str(&mut body, &hard_instance());
    body.push('}');
    let (status, reply) = request(addr, "POST", "/jobs", &body);
    assert_eq!(status, 202, "submission accepted: {reply}");
    let id = Json::parse(&reply)
        .expect("reply is JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id field");

    poll_job(addr, id, |s| s == "running");
    let (status, reply) = request(addr, "DELETE", &format!("/jobs/{id}"), "");
    assert_eq!(status, 202, "running job starts cancelling: {reply}");

    let job = poll_job(addr, id, |s| s != "queued" && s != "running");
    assert_eq!(
        job.get("status").and_then(Json::as_str),
        Some("cancelled"),
        "{job:?}"
    );
    assert_eq!(job.get("outcome").and_then(Json::as_str), Some("cancelled"));

    let (_, exposition) = request(addr, "GET", "/metrics", "");
    assert_eq!(
        metric_value(&exposition, "recopack_jobs_cancelled_total{kind=\"opp\"}"),
        Some(1.0)
    );
    assert_eq!(
        metric_value(&exposition, "recopack_jobs_completed_total{kind=\"opp\"}"),
        Some(0.0)
    );

    // Cancelling a finished job is refused.
    let (status, _) = request(addr, "DELETE", &format!("/jobs/{id}"), "");
    assert_eq!(status, 409);

    server.shutdown();
    server.join();
}

#[test]
fn saturated_queue_rejects_submissions_and_reports_unhealthy() {
    let server = bind_test_server(1, 1);
    let addr = server.local_addr();

    let submit = |name: &str, instance: &str| -> (u16, String) {
        let mut body = format!(
            "{{\"kind\":\"opp\",\"name\":\"{name}\",\"use_bounds\":false,\
             \"use_heuristics\":false,\"time_limit_ms\":60000,\"instance\":"
        );
        recopack_core::telemetry::push_json_str(&mut body, instance);
        body.push('}');
        request(addr, "POST", "/jobs", &body)
    };

    let hard = hard_instance();
    let (status, reply) = submit("occupant", &hard);
    assert_eq!(status, 202);
    let occupant = Json::parse(&reply)
        .expect("reply is JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id");
    poll_job(addr, occupant, |s| s == "running");

    // The single queue slot fills; the server reports saturation.
    let (status, reply) = submit("waiter", &hard);
    assert_eq!(status, 202);
    let waiter = Json::parse(&reply)
        .expect("reply is JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id");
    let (status, health) = get_json(addr, "/healthz");
    assert_eq!(status, 503);
    assert_eq!(
        health.get("status").and_then(Json::as_str),
        Some("saturated")
    );

    let (status, reply) = submit("overflow", &hard);
    assert_eq!(status, 503, "full queue refuses work: {reply}");

    // Malformed submissions are counted under the closed `unknown` label.
    let (status, _) = request(addr, "POST", "/jobs", "{\"kind\":\"sudoku\"}");
    assert_eq!(status, 400);

    let (_, exposition) = request(addr, "GET", "/metrics", "");
    assert_eq!(
        metric_value(&exposition, "recopack_jobs_rejected_total{kind=\"opp\"}"),
        Some(1.0)
    );
    assert_eq!(
        metric_value(
            &exposition,
            "recopack_jobs_rejected_total{kind=\"unknown\"}"
        ),
        Some(1.0)
    );
    assert_eq!(metric_value(&exposition, "recopack_queue_depth"), Some(1.0));

    // Cancel the queued waiter first (it never runs), then the occupant.
    let (status, _) = request(addr, "DELETE", &format!("/jobs/{waiter}"), "");
    assert_eq!(status, 200, "queued job cancels immediately");
    let (status, _) = request(addr, "DELETE", &format!("/jobs/{occupant}"), "");
    assert_eq!(status, 202);
    poll_job(addr, occupant, |s| s != "queued" && s != "running");

    let (status, health) = get_json(addr, "/healthz");
    assert_eq!(status, 200, "queue drained, healthy again: {health:?}");

    let (_, listing) = get_json(addr, "/jobs");
    let jobs = listing
        .get("jobs")
        .and_then(Json::as_array)
        .expect("jobs array");
    assert_eq!(jobs.len(), 2, "occupant and waiter are both known");

    server.shutdown();
    server.join();
}
