//! Property tests for the solution-cache canonicalization: the cache key
//! must be invariant under task relabeling and reordering — the two ways
//! structurally identical instances arrive looking different — and must
//! separate instances that genuinely differ.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use recopack_model::generate::{random_instance, GeneratorConfig};
use recopack_model::{Instance, Task};
use recopack_serve::cache::canonical_instance_text;

/// Rebuilds `instance` with its tasks shuffled into `order` and renamed by
/// `rename`, remapping every precedence arc accordingly. The result is the
/// same abstract instance under a different presentation.
fn permuted_copy(
    instance: &Instance,
    order: &[usize],
    rename: impl Fn(usize) -> String,
) -> Instance {
    let tasks = instance.tasks();
    let mut builder = Instance::builder()
        .chip(instance.chip())
        .horizon(instance.horizon());
    for &old in order {
        let t = &tasks[old];
        builder = builder.task(
            Task::new(rename(old), t.width(), t.height(), t.compute_duration())
                .with_reconfiguration(t.reconfiguration()),
        );
    }
    for (u, v) in instance.precedence().arcs() {
        builder = builder.precedence(rename(u), rename(v));
    }
    builder.build().expect("a permuted valid instance is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any relabeling + reordering of any random instance produces the
    /// same canonical text (and therefore the same cache key).
    #[test]
    fn relabeling_and_reordering_preserve_the_key(
        seed in 0u64..100_000,
        permutation_seed in 0u64..100_000,
        task_count in 2usize..9,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = GeneratorConfig {
            task_count,
            ..GeneratorConfig::default()
        };
        let instance = random_instance(&config, &mut rng);

        let mut perm_rng = StdRng::seed_from_u64(permutation_seed);
        let mut order: Vec<usize> = (0..task_count).collect();
        order.shuffle(&mut perm_rng);
        // Names unrelated to the originals, in shuffled positions; a
        // random numeric salt keeps them from encoding the old index.
        let salt: u64 = perm_rng.gen_range(0..1_000_000);
        let permuted = permuted_copy(&instance, &order, |old| format!("z{salt}_{old}"));

        prop_assert_eq!(
            canonical_instance_text(&instance),
            canonical_instance_text(&permuted),
            "presentation must not leak into the key (seed {}, perm {})",
            seed,
            permutation_seed
        );
    }

    /// Changing one task's geometry changes the key: canonicalization
    /// must never merge genuinely different instances.
    #[test]
    fn distinct_geometry_separates_keys(
        seed in 0u64..100_000,
        task_count in 2usize..9,
        victim in 0usize..9,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = GeneratorConfig {
            task_count,
            ..GeneratorConfig::default()
        };
        let instance = random_instance(&config, &mut rng);
        let victim = victim % task_count;

        let tasks = instance.tasks();
        let mut builder = Instance::builder()
            .chip(instance.chip())
            .horizon(instance.horizon());
        for (i, t) in tasks.iter().enumerate() {
            let duration = if i == victim {
                t.compute_duration() + 1
            } else {
                t.compute_duration()
            };
            builder = builder.task(
                Task::new(t.name(), t.width(), t.height(), duration)
                    .with_reconfiguration(t.reconfiguration()),
            );
        }
        for (u, v) in instance.precedence().arcs() {
            builder = builder.precedence(tasks[u].name(), tasks[v].name());
        }
        let grown = builder.build().expect("still a valid instance");

        prop_assert_ne!(
            canonical_instance_text(&instance),
            canonical_instance_text(&grown),
            "a changed duration must change the key (seed {})",
            seed
        );
    }
}
