//! Captures the compiler version at build time for the
//! `recopack_build_info` metric (no build dependencies: just `rustc
//! --version` via the toolchain cargo already resolved).

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let version = std::process::Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=RECOPACK_RUSTC={version}");
    println!("cargo:rerun-if-changed=build.rs");
}
