//! A deliberately minimal HTTP/1.1 server side: parse one request, write
//! one response, close the connection.
//!
//! The service speaks to curl, Prometheus scrapers, and the raw
//! `std::net::TcpStream` clients of the integration tests — none of which
//! need keep-alive, chunked transfer, or TLS. Every response carries
//! `Connection: close` and an exact `Content-Length`, so clients can read
//! to EOF.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;

/// Upper bound on the request line plus headers.
const MAX_HEADER_BYTES: usize = 64 * 1024;

/// Upper bound on a request body (instance files are a few KB; a megabyte
/// is already a thousand-task instance).
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub(crate) struct Request {
    pub(crate) method: String,
    pub(crate) path: String,
    pub(crate) body: String,
}

/// Reads and parses one request from `stream`.
///
/// Malformed input yields a human-readable message the caller turns into a
/// `400 Bad Request`; transport errors are folded into the same path (the
/// peer is gone either way).
pub(crate) fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_blank_line(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err("request headers too large".to_string());
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("read failed: {e}"))?;
        if n == 0 {
            return Err("connection closed before the headers ended".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| "request headers are not UTF-8".to_string())?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(format!("malformed request line {request_line:?}"));
    }

    let mut content_length = 0usize;
    let mut expects_continue = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| format!("bad Content-Length {value:?}"))?;
        } else if name.eq_ignore_ascii_case("expect") && value.eq_ignore_ascii_case("100-continue")
        {
            expects_continue = true;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!("request body too large ({content_length} bytes)"));
    }
    // curl sends `Expect: 100-continue` for larger bodies and stalls until
    // the server approves; acknowledge so instance uploads don't hang.
    if expects_continue {
        let _ = stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
    }

    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("read failed: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".to_string());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| "request body is not UTF-8".to_string())?;
    Ok(Request { method, path, body })
}

/// Writes a complete response and flushes it.
pub(crate) fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    // The peer may have gone away; nothing useful to do about it.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Index of the first `\r\n\r\n` in `buf`, if any.
fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_line_is_found() {
        assert_eq!(find_blank_line(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_blank_line(b"partial\r\n"), None);
    }
}
