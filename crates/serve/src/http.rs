//! A deliberately minimal HTTP/1.1 server side with keep-alive and
//! pipelining.
//!
//! The service speaks to curl, Prometheus scrapers, the load generator,
//! and the raw `std::net::TcpStream` clients of the integration tests.
//! A [`Conn`] owns one connection: it reads requests in a loop, keeps the
//! bytes that arrive past the current request body (pipelined requests),
//! and negotiates persistence per request — HTTP/1.1 defaults to
//! keep-alive, HTTP/1.0 to close, and a `Connection:` header overrides
//! either way. Every response carries an exact `Content-Length` and a
//! `Connection:` header that reflects the negotiated semantics.
//!
//! Error handling distinguishes *recoverable* protocol errors, where the
//! request framing is still intact (malformed JSON, oversized-but-drained
//! bodies → 400/413, connection stays up), from *fatal* ones where the
//! byte stream can no longer be trusted (garbled request line, unsupported
//! transfer encoding → respond and close).

use std::io::{ErrorKind, Read, Write};

/// Upper bound on the request line plus headers.
const MAX_HEADER_BYTES: usize = 64 * 1024;

/// Upper bound on a request body (instance files are a few KB; a megabyte
/// is already a thousand-task instance).
pub(crate) const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Oversized bodies up to this declared length are read and discarded so
/// the connection can survive a `413`; beyond it the connection closes.
const MAX_DRAIN_BYTES: usize = 16 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub(crate) struct Request {
    pub(crate) method: String,
    pub(crate) path: String,
    pub(crate) body: String,
    /// Negotiated persistence: the response must carry the matching
    /// `Connection:` header and the server loop continues only if `true`.
    pub(crate) keep_alive: bool,
    /// The client-supplied `X-Request-Id` header, verbatim; the server
    /// sanitizes it (or generates one) before it enters logs and job
    /// records.
    pub(crate) request_id: Option<String>,
}

/// What [`Conn::read_next`] produced.
pub(crate) enum Next {
    /// A complete, well-framed request.
    Request(Request),
    /// The peer closed (or idled past the read timeout) between requests;
    /// nothing to answer.
    Closed,
    /// A protocol error to report. `keep_alive` is `true` when the framing
    /// survived (the connection may keep serving) and `false` when the
    /// stream is unusable and must close after the error response.
    Error {
        status: u16,
        message: String,
        keep_alive: bool,
    },
}

/// Server side of one connection: a stream plus the bytes read beyond the
/// previous request (pipelining).
pub(crate) struct Conn<S> {
    stream: S,
    buf: Vec<u8>,
}

impl<S: Read + Write> Conn<S> {
    pub(crate) fn new(stream: S) -> Self {
        Self {
            stream,
            buf: Vec::new(),
        }
    }

    /// Reads and parses the next request, consuming exactly its bytes from
    /// the connection. Read timeouts set on the underlying stream surface
    /// as [`Next::Closed`] — the idle-timeout mechanism of the server loop.
    pub(crate) fn read_next(&mut self) -> Next {
        let mut chunk = [0u8; 4096];
        let header_end = loop {
            if let Some(pos) = find_blank_line(&self.buf) {
                break pos;
            }
            if self.buf.len() > MAX_HEADER_BYTES {
                return fatal(400, "request headers too large");
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Next::Closed,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    // Idle timeout between requests, or a stalled sender
                    // mid-request; either way the connection is done.
                    return Next::Closed;
                }
                Err(_) => return Next::Closed,
            }
        };
        let Ok(head) = std::str::from_utf8(&self.buf[..header_end]) else {
            return fatal(400, "request headers are not UTF-8");
        };
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let method = parts.next().unwrap_or("").to_string();
        let path = parts.next().unwrap_or("").to_string();
        let version = parts.next().unwrap_or("");
        if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
            return fatal(400, &format!("malformed request line {request_line:?}"));
        }
        // HTTP/1.1 persists by default; HTTP/1.0 closes by default; an
        // explicit `Connection:` token overrides either.
        let mut keep_alive = version != "HTTP/1.0";

        let mut content_length = 0usize;
        let mut expects_continue = false;
        let mut request_id = None;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                let Ok(length) = value.parse() else {
                    return fatal(400, &format!("bad Content-Length {value:?}"));
                };
                content_length = length;
            } else if name.eq_ignore_ascii_case("connection") {
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        keep_alive = false;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        keep_alive = true;
                    }
                }
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                // Chunked framing is not spoken here; without a length the
                // stream cannot be re-synchronized, so close.
                return fatal(
                    400,
                    "transfer encodings are not supported (send Content-Length)",
                );
            } else if name.eq_ignore_ascii_case("expect")
                && value.eq_ignore_ascii_case("100-continue")
            {
                expects_continue = true;
            } else if name.eq_ignore_ascii_case("x-request-id") {
                request_id = Some(value.to_string());
            }
        }
        // curl sends `Expect: 100-continue` for larger bodies and stalls
        // until the server approves; acknowledge so uploads don't hang.
        if expects_continue {
            let _ = self.stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
        }
        let body_start = header_end + 4;
        if content_length > MAX_BODY_BYTES {
            // Over the limit but under the drain bound: discard the body
            // chunk-by-chunk — never accumulating it, so a peer cannot pin
            // megabytes per connection — to keep the stream synchronized,
            // then report 413 without closing. Hopelessly large
            // declarations just close.
            if content_length > MAX_DRAIN_BYTES
                || !self.discard(body_start, content_length, &mut chunk)
            {
                return fatal(
                    413,
                    &format!("request body too large ({content_length} bytes)"),
                );
            }
            return Next::Error {
                status: 413,
                message: format!("request body too large ({content_length} bytes)"),
                keep_alive,
            };
        }
        if !self.consume(body_start + content_length, &mut chunk) {
            return Next::Closed;
        }
        let body_bytes = self.buf[body_start..body_start + content_length].to_vec();
        // Anything past the body already read belongs to the next
        // pipelined request; keep it buffered.
        self.buf.drain(..body_start + content_length);
        let Ok(body) = String::from_utf8(body_bytes) else {
            return Next::Error {
                status: 400,
                message: "request body is not UTF-8".to_string(),
                keep_alive,
            };
        };
        Next::Request(Request {
            method,
            path,
            body,
            keep_alive,
            request_id,
        })
    }

    /// Reads until the buffer holds at least `target` bytes; `false` on
    /// EOF, timeout, or transport error.
    fn consume(&mut self, target: usize, chunk: &mut [u8]) -> bool {
        while self.buf.len() < target {
            match self.stream.read(chunk) {
                Ok(0) => return false,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(_) => return false,
            }
        }
        true
    }

    /// Discards the current request head plus `content_length` body bytes
    /// without buffering them: already-read body bytes are dropped in
    /// place, the rest is read into the scratch chunk and thrown away.
    /// Bytes past the body (the next pipelined request) are kept. `false`
    /// on EOF, timeout, or transport error.
    fn discard(&mut self, body_start: usize, content_length: usize, chunk: &mut [u8]) -> bool {
        let buffered = self.buf.len().saturating_sub(body_start);
        if buffered >= content_length {
            self.buf.drain(..body_start + content_length);
            return true;
        }
        self.buf.clear();
        let mut remaining = content_length - buffered;
        while remaining > 0 {
            match self.stream.read(chunk) {
                Ok(0) => return false,
                Ok(n) if n > remaining => {
                    // The tail of this chunk is the next pipelined request.
                    self.buf.extend_from_slice(&chunk[remaining..n]);
                    remaining = 0;
                }
                Ok(n) => remaining -= n,
                Err(_) => return false,
            }
        }
        true
    }

    /// Writes a complete response with the negotiated `Connection` header,
    /// echoing `request_id` as `X-Request-Id` when one is known.
    pub(crate) fn respond(
        &mut self,
        status: u16,
        content_type: &str,
        body: &str,
        keep_alive: bool,
        request_id: Option<&str>,
    ) {
        respond_with_id(
            &mut self.stream,
            status,
            content_type,
            body,
            keep_alive,
            request_id,
        );
    }

    /// Starts a chunked (`Transfer-Encoding: chunked`) response. The body
    /// is then written with [`Conn::write_chunk`] and terminated with
    /// [`Conn::end_stream`]. Chunked framing is self-delimiting, so on a
    /// clean termination the connection can keep serving requests.
    /// Returns `false` when the peer is gone.
    pub(crate) fn start_stream(
        &mut self,
        status: u16,
        content_type: &str,
        keep_alive: bool,
        request_id: &str,
    ) -> bool {
        let reason = reason_phrase(status);
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let head = format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
             Transfer-Encoding: chunked\r\nConnection: {connection}\r\n\
             X-Request-Id: {request_id}\r\n\r\n"
        );
        self.stream.write_all(head.as_bytes()).is_ok() && self.stream.flush().is_ok()
    }

    /// Writes one chunk of a streaming response; `false` means the peer
    /// went away. Empty data is skipped — a zero-length chunk would
    /// terminate the stream (that is [`Conn::end_stream`]'s job).
    pub(crate) fn write_chunk(&mut self, data: &str) -> bool {
        if data.is_empty() {
            return true;
        }
        let head = format!("{:x}\r\n", data.len());
        self.stream.write_all(head.as_bytes()).is_ok()
            && self.stream.write_all(data.as_bytes()).is_ok()
            && self.stream.write_all(b"\r\n").is_ok()
            && self.stream.flush().is_ok()
    }

    /// Terminates a streaming response with the final zero-length chunk.
    pub(crate) fn end_stream(&mut self) -> bool {
        self.stream.write_all(b"0\r\n\r\n").is_ok() && self.stream.flush().is_ok()
    }
}

fn fatal(status: u16, message: &str) -> Next {
    Next::Error {
        status,
        message: message.to_string(),
        keep_alive: false,
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response and flushes it.
pub(crate) fn respond(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) {
    respond_with_id(stream, status, content_type, body, keep_alive, None);
}

/// [`respond`], optionally echoing an `X-Request-Id` header.
pub(crate) fn respond_with_id(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    request_id: Option<&str>,
) {
    let reason = reason_phrase(status);
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    );
    if let Some(id) = request_id {
        use std::fmt::Write as _;
        let _ = write!(head, "X-Request-Id: {id}\r\n");
    }
    head.push_str("\r\n");
    // The peer may have gone away; nothing useful to do about it.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Index of the first `\r\n\r\n` in `buf`, if any.
fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A fake duplex stream: reads from a script, discards writes.
    struct Fake(Cursor<Vec<u8>>);

    impl Read for Fake {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.0.read(buf)
        }
    }

    impl Write for Fake {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn conn(script: &str) -> Conn<Fake> {
        Conn::new(Fake(Cursor::new(script.as_bytes().to_vec())))
    }

    #[test]
    fn blank_line_is_found() {
        assert_eq!(find_blank_line(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_blank_line(b"partial\r\n"), None);
    }

    #[test]
    fn http11_defaults_to_keep_alive_and_close_header_overrides() {
        let mut c = conn("GET /a HTTP/1.1\r\nHost: t\r\n\r\n");
        match c.read_next() {
            Next::Request(r) => {
                assert_eq!((r.method.as_str(), r.path.as_str()), ("GET", "/a"));
                assert!(r.keep_alive, "HTTP/1.1 persists by default");
            }
            _ => panic!("expected a request"),
        }
        let mut c = conn("GET /a HTTP/1.1\r\nConnection: close\r\n\r\n");
        match c.read_next() {
            Next::Request(r) => assert!(!r.keep_alive),
            _ => panic!("expected a request"),
        }
    }

    #[test]
    fn http10_defaults_to_close_and_keep_alive_header_overrides() {
        let mut c = conn("GET /a HTTP/1.0\r\n\r\n");
        match c.read_next() {
            Next::Request(r) => assert!(!r.keep_alive),
            _ => panic!("expected a request"),
        }
        let mut c = conn("GET /a HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        match c.read_next() {
            Next::Request(r) => assert!(r.keep_alive),
            _ => panic!("expected a request"),
        }
    }

    #[test]
    fn pipelined_requests_are_served_in_order() {
        let mut c = conn(
            "POST /jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdGET /metrics HTTP/1.1\r\n\r\n",
        );
        match c.read_next() {
            Next::Request(r) => {
                assert_eq!(r.body, "abcd");
                assert_eq!(r.path, "/jobs");
            }
            _ => panic!("expected first request"),
        }
        match c.read_next() {
            Next::Request(r) => {
                assert_eq!(r.path, "/metrics");
                assert!(r.body.is_empty());
            }
            _ => panic!("expected pipelined second request"),
        }
        assert!(matches!(c.read_next(), Next::Closed));
    }

    #[test]
    fn oversized_body_is_drained_and_reported_without_closing() {
        let body = "x".repeat(MAX_BODY_BYTES + 1);
        let script = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}GET /healthz HTTP/1.1\r\n\r\n",
            body.len()
        );
        let mut c = conn(&script);
        match c.read_next() {
            Next::Error {
                status, keep_alive, ..
            } => {
                assert_eq!(status, 413);
                assert!(keep_alive, "drained body keeps the connection usable");
            }
            _ => panic!("expected a 413"),
        }
        match c.read_next() {
            Next::Request(r) => assert_eq!(r.path, "/healthz"),
            _ => panic!("connection must survive the 413"),
        }
    }

    #[test]
    fn oversized_body_drain_does_not_accumulate_the_body() {
        let body = "y".repeat(MAX_BODY_BYTES + 1);
        let script = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}GET /healthz HTTP/1.1\r\n\r\n",
            body.len()
        );
        let mut c = conn(&script);
        match c.read_next() {
            Next::Error { status, .. } => assert_eq!(status, 413),
            _ => panic!("expected a 413"),
        }
        // Only the pipelined follow-up request may remain buffered — the
        // drained body itself must never have been retained.
        assert!(
            c.buf.len() < 4096,
            "drained body must not be buffered, {} bytes retained",
            c.buf.len()
        );
        match c.read_next() {
            Next::Request(r) => assert_eq!(r.path, "/healthz"),
            _ => panic!("connection must survive the 413"),
        }
    }

    #[test]
    fn garbled_request_line_is_fatal() {
        let mut c = conn("NONSENSE\r\n\r\n");
        match c.read_next() {
            Next::Error {
                status, keep_alive, ..
            } => {
                assert_eq!(status, 400);
                assert!(!keep_alive, "framing is unknown, must close");
            }
            _ => panic!("expected a fatal 400"),
        }
    }

    /// A fake duplex stream that records what the server writes.
    struct Duplex {
        input: Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Read for Duplex {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Duplex {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn request_id_header_is_captured() {
        let mut c = conn("GET /a HTTP/1.1\r\nX-Request-Id: abc-123\r\n\r\n");
        match c.read_next() {
            Next::Request(r) => assert_eq!(r.request_id.as_deref(), Some("abc-123")),
            _ => panic!("expected a request"),
        }
        let mut c = conn("GET /a HTTP/1.1\r\nHost: t\r\n\r\n");
        match c.read_next() {
            Next::Request(r) => assert_eq!(r.request_id, None),
            _ => panic!("expected a request"),
        }
    }

    #[test]
    fn responses_echo_the_request_id_when_known() {
        let mut out = Vec::new();
        respond_with_id(&mut out, 200, "application/json", "{}", true, Some("req-7"));
        let text = String::from_utf8(out).expect("ASCII response");
        assert!(text.contains("X-Request-Id: req-7\r\n"), "{text}");
        let mut out = Vec::new();
        respond(&mut out, 200, "application/json", "{}", true);
        let text = String::from_utf8(out).expect("ASCII response");
        assert!(!text.contains("X-Request-Id"), "{text}");
    }

    #[test]
    fn chunked_stream_frames_each_chunk_and_terminates() {
        let mut c = Conn::new(Duplex {
            input: Cursor::new(Vec::new()),
            output: Vec::new(),
        });
        assert!(c.start_stream(200, "application/x-ndjson", true, "req-1"));
        assert!(c.write_chunk("hello\n"));
        assert!(c.write_chunk(""), "empty chunks are skipped, not fatal");
        assert!(c.write_chunk("{\"a\":1}\n"));
        assert!(c.end_stream());
        let text = String::from_utf8(c.stream.output).expect("ASCII response");
        let (head, body) = text.split_once("\r\n\r\n").expect("header block");
        assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
        assert!(head.contains("Connection: keep-alive"), "{head}");
        assert!(head.contains("X-Request-Id: req-1"), "{head}");
        assert!(
            !head.contains("Content-Length"),
            "chunked responses carry no length: {head}"
        );
        assert_eq!(body, "6\r\nhello\n\r\n8\r\n{\"a\":1}\n\r\n0\r\n\r\n");
    }

    #[test]
    fn responses_carry_the_negotiated_connection_header() {
        let mut out = Vec::new();
        respond(&mut out, 200, "application/json", "{}", true);
        let text = String::from_utf8(out).expect("ASCII response");
        assert!(text.contains("Connection: keep-alive"), "{text}");
        let mut out = Vec::new();
        respond(&mut out, 503, "application/json", "{}", false);
        let text = String::from_utf8(out).expect("ASCII response");
        assert!(text.contains("Connection: close"), "{text}");
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
    }
}
