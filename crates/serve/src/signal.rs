//! SIGTERM / ctrl-c handling without a libc dependency.
//!
//! The workspace has no crates.io access, so instead of the usual `signal
//! hook` crates this module declares the few POSIX functions it needs. The
//! handler does the only async-signal-safe things a handler may do here:
//! one relaxed atomic store into a process-wide flag, plus one `write(2)`
//! of a single byte into a self-pipe. [`wait_for_shutdown`] parks on the
//! read end of that pipe, so the serve loop wakes the moment a signal
//! arrives instead of polling the flag on a timer.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; waited on by [`crate::Server::run_until`].
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::{AtomicI32, Ordering};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Self-pipe ends, created once by [`install`]. `-1` until then (or if
    /// `pipe(2)` failed), in which case waiters fall back to polling.
    static PIPE_READ: AtomicI32 = AtomicI32::new(-1);
    static PIPE_WRITE: AtomicI32 = AtomicI32::new(-1);

    type Handler = extern "C" fn(i32);

    extern "C" {
        /// POSIX `signal(2)`. The return value (the previous handler) is a
        /// function pointer we never need; `usize` keeps the declaration
        /// free of pointer types.
        fn signal(signum: i32, handler: Handler) -> usize;
        /// POSIX `pipe(2)`: fills `fds[0]` (read end) and `fds[1]` (write
        /// end).
        fn pipe(fds: *mut i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::Relaxed);
        // Wake any thread parked on the pipe. Both the load and the write
        // are async-signal-safe; a full pipe (impossible here — one byte
        // per signal against a multi-kilobyte kernel buffer) would only
        // mean the wakeup already happened.
        let fd = PIPE_WRITE.load(Ordering::Relaxed);
        if fd >= 0 {
            let byte = 1u8;
            // SAFETY: plain write(2) on a pipe fd owned by this module.
            unsafe {
                let _ = write(fd, &byte, 1);
            }
        }
    }

    pub(super) fn install() {
        let mut fds = [-1i32; 2];
        // SAFETY: `pipe` only writes the two fds into the provided array.
        if unsafe { pipe(fds.as_mut_ptr()) } == 0 {
            PIPE_READ.store(fds[0], Ordering::Relaxed);
            PIPE_WRITE.store(fds[1], Ordering::Relaxed);
        }
        // SAFETY: `signal` is the C library's own entry point; the handler
        // installed performs only async-signal-safe operations (see
        // `on_signal`).
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// Parks until the handler writes its wake byte (or, with no pipe,
    /// sleeps one poll interval). Returns on any wakeup — including
    /// `EINTR` — so the caller re-checks its flag in a loop.
    pub(super) fn wait() {
        let fd = PIPE_READ.load(Ordering::Relaxed);
        if fd < 0 {
            super::poll_fallback();
            return;
        }
        let mut byte = 0u8;
        // SAFETY: plain read(2) on the pipe fd owned by this module; the
        // buffer outlives the call. The byte itself is meaningless — the
        // return (success or EINTR) is the wakeup.
        unsafe {
            let _ = read(fd, &mut byte, 1);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal wiring off Unix; the flag is still usable (e.g. tests can
    /// set it) but nothing flips it on ctrl-c.
    pub(super) fn install() {}

    /// Without a self-pipe the only wake source is the flag itself.
    pub(super) fn wait() {
        super::poll_fallback();
    }
}

/// One coarse poll interval, for configurations without a working
/// self-pipe (non-Unix, or `pipe(2)` failure at install time).
fn poll_fallback() {
    std::thread::sleep(std::time::Duration::from_millis(50));
}

/// Blocks until `stop` may have become true, then returns so the caller
/// can re-check it. When `stop` is the flag owned by this module (the
/// documented [`install_shutdown_handler`] usage), this parks on the
/// handler's self-pipe and wakes immediately on SIGINT/SIGTERM; a foreign
/// flag has no wake channel, so the wait degrades to a 50 ms poll.
pub(crate) fn wait_for_shutdown(stop: &AtomicBool) {
    if std::ptr::eq(stop, &SHUTDOWN) {
        imp::wait();
    } else {
        poll_fallback();
    }
}

/// Installs handlers for SIGINT and SIGTERM (on Unix) and returns the flag
/// they set. Call once at startup; pass the flag to
/// [`Server::run_until`](crate::Server::run_until).
pub fn install_shutdown_handler() -> &'static AtomicBool {
    imp::install();
    &SHUTDOWN
}

/// Whether a shutdown signal has arrived (or the flag was set manually).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}
