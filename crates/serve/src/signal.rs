//! SIGTERM / ctrl-c handling without a libc dependency.
//!
//! The workspace has no crates.io access, so instead of the usual `signal
//! hook` crates this module declares the one POSIX function it needs. The
//! handler does the only async-signal-safe thing a handler may do here:
//! one relaxed atomic store into a process-wide flag, which the serve
//! loop polls to begin its graceful drain.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; polled by [`crate::Server::run_until`].
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    type Handler = extern "C" fn(i32);

    extern "C" {
        /// POSIX `signal(2)`. The return value (the previous handler) is a
        /// function pointer we never need; `usize` keeps the declaration
        /// free of pointer types.
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::Relaxed);
    }

    pub(super) fn install() {
        // SAFETY: `signal` is the C library's own entry point; installing a
        // handler that only performs an atomic store is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal wiring off Unix; the flag is still usable (e.g. tests can
    /// set it) but nothing flips it on ctrl-c.
    pub(super) fn install() {}
}

/// Installs handlers for SIGINT and SIGTERM (on Unix) and returns the flag
/// they set. Call once at startup; pass the flag to
/// [`Server::run_until`](crate::Server::run_until).
pub fn install_shutdown_handler() -> &'static AtomicBool {
    imp::install();
    &SHUTDOWN
}

/// Whether a shutdown signal has arrived (or the flag was set manually).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}
