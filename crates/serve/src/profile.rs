//! On-demand sampling profiles for `GET /debug/profile`.
//!
//! Parameter parsing and the single-flight gate live here so they can be
//! unit-tested without a socket; the chunked-response plumbing stays in
//! the crate root next to the other handlers.
//!
//! Concurrency contract: at most one capture runs at a time. A second
//! request arriving mid-capture with the *same* `seconds` and `hz` joins
//! the in-flight run and receives the same profile; different parameters
//! are refused with `409 Conflict` so a capture cannot be extended or
//! restarted out from under its driver.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use recopack_core::{Profile, Sampler, SAMPLER_DEFAULT_HZ};

/// Hard cap on a single profiling window, in seconds.
pub(crate) const MAX_PROFILE_SECONDS: u64 = 30;
/// Hard cap on the requested sampling rate, in Hz.
pub(crate) const MAX_PROFILE_HZ: u64 = 1000;
/// Default capture length when `seconds` is omitted.
const DEFAULT_SECONDS: u64 = 2;

/// Parsed and validated `/debug/profile` query parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ProfileParams {
    /// Capture length, `1..=MAX_PROFILE_SECONDS`.
    pub seconds: u64,
    /// Sampling rate, `1..=MAX_PROFILE_HZ`.
    pub hz: u64,
    /// `format=json` requests the summary instead of folded stacks.
    pub json: bool,
}

impl ProfileParams {
    /// Parses a raw query string (the part after `?`, possibly empty).
    pub fn parse(query: &str) -> Result<Self, String> {
        let mut params = ProfileParams {
            seconds: DEFAULT_SECONDS,
            hz: SAMPLER_DEFAULT_HZ,
            json: false,
        };
        for pair in query.split('&').filter(|p| !p.is_empty()) {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            match key {
                "seconds" => {
                    params.seconds = value
                        .parse()
                        .map_err(|_| format!("seconds expects an integer, got {value:?}"))?;
                }
                "hz" => {
                    params.hz = value
                        .parse()
                        .map_err(|_| format!("hz expects an integer, got {value:?}"))?;
                }
                "format" => match value {
                    "folded" => params.json = false,
                    "json" => params.json = true,
                    other => return Err(format!("format expects folded or json, got {other:?}")),
                },
                other => {
                    return Err(format!(
                        "unknown parameter {other:?} (expected seconds, hz, format)"
                    ))
                }
            }
        }
        if params.seconds == 0 || params.seconds > MAX_PROFILE_SECONDS {
            return Err(format!(
                "seconds must be between 1 and {MAX_PROFILE_SECONDS}"
            ));
        }
        if params.hz == 0 || params.hz > MAX_PROFILE_HZ {
            return Err(format!("hz must be between 1 and {MAX_PROFILE_HZ}"));
        }
        Ok(params)
    }
}

/// How a `/debug/profile` request resolved.
pub(crate) enum ProfileOutcome {
    /// This request installed the gate and drove the capture.
    Captured(Arc<Profile>),
    /// This request joined a concurrent capture with identical parameters.
    Joined(Arc<Profile>),
    /// A capture with different parameters is already running.
    Busy {
        /// The in-flight capture's window length.
        seconds: u64,
        /// The in-flight capture's sampling rate.
        hz: u64,
    },
    /// The joined capture's driver never published a result.
    TimedOut,
}

/// The single-flight coordination gate for on-demand captures.
#[derive(Debug, Default)]
pub(crate) struct ProfilerGate {
    active: Mutex<Option<Arc<ActiveRun>>>,
}

#[derive(Debug)]
struct ActiveRun {
    seconds: u64,
    hz: u64,
    result: Mutex<Option<Arc<Profile>>>,
    done: Condvar,
}

impl ProfilerGate {
    /// Runs (or joins) a capture with the given parameters, blocking for up
    /// to `params.seconds` of wall clock (plus a small grace when joining).
    pub fn run(&self, params: ProfileParams) -> ProfileOutcome {
        let run = {
            let mut active = self.active.lock().expect("profiler gate poisoned");
            match &*active {
                Some(run) if run.seconds == params.seconds && run.hz == params.hz => {
                    let run = Arc::clone(run);
                    drop(active);
                    return Self::join(&run, params.seconds);
                }
                Some(run) => {
                    return ProfileOutcome::Busy {
                        seconds: run.seconds,
                        hz: run.hz,
                    }
                }
                None => {
                    let run = Arc::new(ActiveRun {
                        seconds: params.seconds,
                        hz: params.hz,
                        result: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    *active = Some(Arc::clone(&run));
                    run
                }
            }
        };
        let sampler = Sampler::start(params.hz);
        std::thread::sleep(Duration::from_secs(params.seconds));
        let profile = Arc::new(sampler.stop());
        *run.result.lock().expect("profiler result poisoned") = Some(Arc::clone(&profile));
        run.done.notify_all();
        // Clear the gate only after publishing so joiners never observe an
        // empty slot for a run they were promised.
        *self.active.lock().expect("profiler gate poisoned") = None;
        ProfileOutcome::Captured(profile)
    }

    fn join(run: &ActiveRun, seconds: u64) -> ProfileOutcome {
        // The driver sleeps `seconds`; give it headroom for sampler teardown
        // before declaring the join dead.
        let deadline = Duration::from_secs(seconds.saturating_add(5));
        let guard = run.result.lock().expect("profiler result poisoned");
        let (guard, _timeout) = run
            .done
            .wait_timeout_while(guard, deadline, |result| result.is_none())
            .expect("profiler result poisoned");
        match &*guard {
            Some(profile) => ProfileOutcome::Joined(Arc::clone(profile)),
            None => ProfileOutcome::TimedOut,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_default_and_parse_each_key() {
        let p = ProfileParams::parse("").expect("empty query is valid");
        assert_eq!(p.seconds, DEFAULT_SECONDS);
        assert_eq!(p.hz, SAMPLER_DEFAULT_HZ);
        assert!(!p.json);

        let p = ProfileParams::parse("seconds=5&hz=200&format=json").expect("valid");
        assert_eq!(p.seconds, 5);
        assert_eq!(p.hz, 200);
        assert!(p.json);

        let p = ProfileParams::parse("format=folded").expect("valid");
        assert!(!p.json);
    }

    #[test]
    fn params_reject_out_of_range_and_unknown() {
        assert!(ProfileParams::parse("seconds=0").is_err());
        assert!(ProfileParams::parse("seconds=31").is_err());
        assert!(ProfileParams::parse("seconds=soon").is_err());
        assert!(ProfileParams::parse("hz=0").is_err());
        assert!(ProfileParams::parse("hz=100000").is_err());
        assert!(ProfileParams::parse("format=flame").is_err());
        assert!(ProfileParams::parse("depth=3").is_err());
    }

    #[test]
    fn gate_joins_identical_params_and_rejects_different() {
        let gate = Arc::new(ProfilerGate::default());
        let params = ProfileParams {
            seconds: 1,
            hz: 50,
            json: false,
        };
        let driver = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.run(params))
        };
        // Wait until the driver has installed the gate.
        loop {
            if gate.active.lock().expect("gate").is_some() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let other = ProfileParams {
            seconds: 2,
            hz: 50,
            json: false,
        };
        match gate.run(other) {
            ProfileOutcome::Busy { seconds, hz } => {
                assert_eq!((seconds, hz), (1, 50));
            }
            _ => panic!("mismatched params must be refused"),
        }
        let joined = match gate.run(params) {
            ProfileOutcome::Joined(profile) => profile,
            _ => panic!("identical params must join the in-flight run"),
        };
        let captured = match driver.join().expect("driver thread") {
            ProfileOutcome::Captured(profile) => profile,
            _ => panic!("driver must capture"),
        };
        assert!(Arc::ptr_eq(&joined, &captured), "joiner shares the result");
        assert_eq!(joined.hz, 50);
        assert!(
            gate.active.lock().expect("gate").is_none(),
            "gate clears after the run"
        );
    }
}
