//! The canonicalized-instance solution cache.
//!
//! Reconfiguration workloads resubmit structurally identical instances
//! constantly (the defragmentation and arrival-driven placement traces of
//! PAPERS.md re-place the same module mix over and over), so the service
//! memoizes finished [`SolveReport`]s keyed by a *canonical form* of the
//! instance: a serialization that is invariant under task renaming and
//! reordering. Two submissions that describe the same placement problem —
//! even with different task names or a permuted task list — map to the same
//! key and share one cached solution.
//!
//! # Soundness
//!
//! The key is a complete serialization of the instance (chip, horizon,
//! every task extent, every precedence arc) plus the result-affecting
//! solver knobs, never a lossy hash. Equal keys therefore imply equal
//! problems: an imperfect canonical ordering can only cost a cache *miss*,
//! never return the answer to a different instance.
//!
//! # Canonical form
//!
//! [`canonical_instance_text`] runs Weisfeiler–Leman color refinement over
//! the precedence DAG (initial colors from the task attribute tuples,
//! refined by the sorted predecessor/successor color multisets) and, where
//! refinement leaves symmetric classes, individualization-refinement
//! branching that keeps the lexicographically minimal serialization.
//! Genuinely interchangeable *twin* classes (identical attributes and
//! identical neighbor sets, no internal arcs) are branched once instead of
//! factorially — that covers the "n identical modules" instances common in
//! FPGA workloads. A work budget bounds pathological cases; on exhaustion
//! the input-order serialization is used, which is still sound (see above),
//! merely order-sensitive.
//!
//! [`SolveReport`]: recopack_core::SolveReport

use std::collections::{HashMap, VecDeque};

use recopack_core::SolverConfig;
use recopack_model::Instance;

/// Refinement-iteration budget for one canonicalization. Each unit is one
/// refinement sweep over the whole DAG; instances whose symmetry forces
/// more work than this fall back to the input-order serialization.
const REFINE_BUDGET: u32 = 4096;

/// A finished, deterministic solve result worth replaying for identical
/// submissions.
#[derive(Debug, Clone)]
pub struct CachedSolution {
    /// Terminal status word (always `done` for cached entries).
    pub status: &'static str,
    /// Outcome label, e.g. `feasible` or `side 4`.
    pub outcome: String,
    /// The schema-2 `SolveReport` JSON, byte-identical to the run that
    /// produced it.
    pub report: Option<String>,
    /// Box origins `[x, y, t]` indexed by *canonical position*, when the
    /// solve produced a placement. Name-free on purpose: the cache key is
    /// invariant under task relabeling, so a hit may come from a
    /// submission with entirely different task names — each job renders
    /// its own `place` lines from these via its canonical permutation.
    pub placement: Option<Vec<[u64; 3]>>,
}

/// Builds the full cache key for a submission: the problem kind, the
/// result-affecting solver knobs, and the canonical instance text.
///
/// Only knobs a submission can set are keyed (`threads`, bounds and
/// heuristic toggles, node/time budgets); the propagation-rule flags are
/// fixed server-side. `threads` is included even though verdicts are
/// thread-count invariant, because reported statistics are not merged
/// identically across counts and cached reports must be byte-identical to
/// what the same submission would compute.
pub fn cache_key(kind: &str, canonical_text: &str, config: &SolverConfig) -> String {
    let mut key = String::with_capacity(64 + canonical_text.len());
    key.push_str(kind);
    key.push('|');
    key.push_str(&format!(
        "t{};b{};h{};n{};l{}|",
        config.threads,
        u8::from(config.use_bounds),
        u8::from(config.use_heuristics),
        config
            .node_limit
            .map_or_else(|| "-".to_string(), |n| n.to_string()),
        config
            .time_limit
            .map_or_else(|| "-".to_string(), |d| d.as_millis().to_string()),
    ));
    key.push_str(canonical_text);
    key
}

/// The canonical serialization of an instance plus the permutation that
/// produced it — everything a submission needs to share name-free cached
/// placements with isomorphic submissions.
pub struct CanonicalInstance {
    /// The name-free serialization (see [`canonical_instance_text`]).
    pub text: String,
    /// `rank[v]` is the canonical position of task `v`: the index of its
    /// attribute tuple in `text`, and the slot its box origin occupies in
    /// [`CachedSolution::placement`].
    pub rank: Vec<u32>,
}

/// Canonicalizes `instance`: the serialized text is invariant under task
/// relabeling and reordering (up to the documented budget fallback), and
/// the returned permutation always matches the returned text, so a
/// placement stored in canonical positions can be rendered back with this
/// submission's task names.
pub fn canonical_form(instance: &Instance) -> CanonicalInstance {
    let mut canon = Canonicalizer::new(instance);
    let mut colors = canon.initial_colors();
    if canon.refine(&mut colors).is_ok() {
        if let Ok((text, rank)) = canon.search(&colors) {
            return CanonicalInstance { text, rank };
        }
    }
    // Budget exhausted: fall back to the input-order serialization. Still a
    // complete description of the instance, so never unsound — identical
    // resubmissions keep hitting, only *reordered* ones may miss.
    let rank: Vec<u32> = (0..instance.task_count() as u32).collect();
    let text = canon.serialize(&rank);
    CanonicalInstance { text, rank }
}

/// Serializes `instance` into a name-free text that is invariant under task
/// relabeling and reordering (up to the documented budget fallback).
pub fn canonical_instance_text(instance: &Instance) -> String {
    canonical_form(instance).text
}

/// Shared state of one canonicalization run.
struct Canonicalizer<'a> {
    instance: &'a Instance,
    budget: u32,
}

impl<'a> Canonicalizer<'a> {
    fn new(instance: &'a Instance) -> Self {
        Self {
            instance,
            budget: REFINE_BUDGET,
        }
    }

    /// Initial colors: the rank of each task's attribute tuple among the
    /// sorted distinct tuples — invariant under task order and names.
    fn initial_colors(&self) -> Vec<u32> {
        let tuples: Vec<[u64; 4]> = self
            .instance
            .tasks()
            .iter()
            .map(|t| [t.width(), t.height(), t.duration(), t.reconfiguration()])
            .collect();
        let mut sorted = tuples.clone();
        sorted.sort_unstable();
        sorted.dedup();
        tuples
            .iter()
            .map(|t| sorted.binary_search(t).expect("tuple present") as u32)
            .collect()
    }

    /// One round of Weisfeiler–Leman refinement to a fixed point: each
    /// task's color becomes the rank of `(color, sorted predecessor colors,
    /// sorted successor colors)`. Signatures embed the old color, so
    /// classes only ever split; the fixed point is reached when the
    /// assignment stops changing.
    fn refine(&mut self, colors: &mut Vec<u32>) -> Result<(), BudgetExhausted> {
        let n = colors.len();
        let dag = self.instance.precedence();
        loop {
            if self.budget == 0 {
                return Err(BudgetExhausted);
            }
            self.budget -= 1;
            let mut signatures: Vec<(u32, Vec<u32>, Vec<u32>)> = (0..n)
                .map(|v| {
                    let mut preds: Vec<u32> =
                        dag.predecessors(v).iter().map(|u| colors[u]).collect();
                    let mut succs: Vec<u32> = dag.successors(v).iter().map(|u| colors[u]).collect();
                    preds.sort_unstable();
                    succs.sort_unstable();
                    (colors[v], preds, succs)
                })
                .collect();
            let mut sorted = signatures.clone();
            sorted.sort_unstable();
            sorted.dedup();
            let next: Vec<u32> = signatures
                .drain(..)
                .map(|sig| sorted.binary_search(&sig).expect("signature present") as u32)
                .collect();
            if next == *colors {
                return Ok(());
            }
            *colors = next;
        }
    }

    /// Individualization-refinement over a stable coloring: if it is
    /// discrete, serialize; otherwise split the first ambiguous class and
    /// keep the lexicographically smallest serialization over the
    /// branches. Returns the winning text together with the permutation
    /// (task index → canonical position) that produced it.
    fn search(&mut self, colors: &[u32]) -> Result<(String, Vec<u32>), BudgetExhausted> {
        let n = colors.len();
        let Some(class_color) = first_ambiguous_class(colors) else {
            return Ok((self.serialize(colors), colors.to_vec()));
        };
        let members: Vec<usize> = (0..n).filter(|&v| colors[v] == class_color).collect();
        // Twin classes — identical attributes (same color), identical
        // predecessor/successor *sets*, no arcs inside the class — are
        // genuinely interchangeable: swapping two members is an instance
        // automorphism, so every branch serializes identically and one
        // branch suffices. This keeps "n identical modules" linear instead
        // of factorial.
        let branch_once = self.is_twin_class(&members);
        let mut best: Option<(String, Vec<u32>)> = None;
        for &pick in &members {
            let mut child: Vec<u32> = colors
                .iter()
                .map(|&c| if c > class_color { c + 1 } else { c })
                .collect();
            for &v in &members {
                if v != pick {
                    child[v] = class_color + 1;
                }
            }
            self.refine(&mut child)?;
            let candidate = self.search(&child)?;
            if best.as_ref().is_none_or(|(b, _)| candidate.0 < *b) {
                best = Some(candidate);
            }
            if branch_once {
                break;
            }
        }
        Ok(best.expect("ambiguous class has members"))
    }

    /// Whether every member of a (same-color) class has identical
    /// predecessor and successor sets and no arc touches two members.
    fn is_twin_class(&self, members: &[usize]) -> bool {
        let dag = self.instance.precedence();
        let first = members[0];
        let preds = dag.predecessors(first);
        let succs = dag.successors(first);
        if members
            .iter()
            .any(|&m| preds.contains(m) || succs.contains(m))
        {
            return false;
        }
        members
            .iter()
            .skip(1)
            .all(|&m| dag.predecessors(m) == preds && dag.successors(m) == succs)
    }

    /// Serializes the instance with task `v` at position `rank[v]` and all
    /// names dropped. `rank` must be a permutation of `0..n`.
    fn serialize(&self, rank: &[u32]) -> String {
        use std::fmt::Write as _;
        let instance = self.instance;
        let chip = instance.chip();
        let mut order: Vec<usize> = (0..rank.len()).collect();
        order.sort_unstable_by_key(|&v| rank[v]);
        let mut text = format!(
            "c{}x{}h{}|",
            chip.width(),
            chip.height(),
            instance.horizon()
        );
        for &v in &order {
            let t = &instance.tasks()[v];
            let _ = write!(
                text,
                "{},{},{},{};",
                t.width(),
                t.height(),
                t.duration(),
                t.reconfiguration()
            );
        }
        text.push('|');
        let mut arcs: Vec<(u32, u32)> = instance
            .precedence()
            .arcs()
            .map(|(u, v)| (rank[u], rank[v]))
            .collect();
        arcs.sort_unstable();
        for (u, v) in arcs {
            let _ = write!(text, "{u}>{v};");
        }
        text
    }
}

/// Marker error: the canonicalization work budget ran out.
struct BudgetExhausted;

/// The smallest color shared by at least two tasks, if any.
fn first_ambiguous_class(colors: &[u32]) -> Option<u32> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &c in colors {
        *counts.entry(c).or_insert(0) += 1;
    }
    colors.iter().copied().filter(|c| counts[c] >= 2).min()
}

/// A bounded least-recently-used map from cache keys to finished solutions.
///
/// Recency is tracked with generation tags and a lazily compacted queue, so
/// `get` and `insert` are O(1) amortized; eviction pops stale queue entries
/// until it finds the live least-recently-used key.
pub struct SolutionCache {
    capacity: usize,
    entries: HashMap<String, Slot>,
    /// Access order, oldest first. Stale pairs (whose generation no longer
    /// matches the live slot) are skipped during eviction and trimmed when
    /// the queue grows past a small multiple of the capacity.
    order: VecDeque<(u64, String)>,
    clock: u64,
}

struct Slot {
    generation: u64,
    value: CachedSolution,
}

impl SolutionCache {
    /// An empty cache holding at most `capacity` solutions (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            order: VecDeque::new(),
            clock: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &str) -> Option<CachedSolution> {
        let generation = self.tick();
        let slot = self.entries.get_mut(key)?;
        slot.generation = generation;
        let value = slot.value.clone();
        self.order.push_back((generation, key.to_string()));
        self.trim();
        Some(value)
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entries beyond the capacity.
    pub fn insert(&mut self, key: String, value: CachedSolution) {
        let generation = self.tick();
        self.order.push_back((generation, key.clone()));
        self.entries.insert(key, Slot { generation, value });
        while self.entries.len() > self.capacity {
            let Some((generation, key)) = self.order.pop_front() else {
                break;
            };
            if self
                .entries
                .get(&key)
                .is_some_and(|slot| slot.generation == generation)
            {
                self.entries.remove(&key);
            }
        }
        self.trim();
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Drops stale queue entries once they outnumber live ones enough to
    /// matter, keeping the queue O(capacity).
    fn trim(&mut self) {
        if self.order.len() > self.entries.len().max(self.capacity) * 4 + 16 {
            let entries = &self.entries;
            self.order.retain(|(generation, key)| {
                entries
                    .get(key)
                    .is_some_and(|slot| slot.generation == *generation)
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recopack_model::{format, Chip, Instance, Task};

    fn canon(text: &str) -> String {
        let instance = format::parse_instance(text).expect("instance parses");
        canonical_instance_text(&instance)
    }

    #[test]
    fn relabeling_and_reordering_do_not_change_the_canonical_text() {
        let a = "chip 4 4\nhorizon 6\ntask a 1 2 3\ntask b 2 2 1\ntask c 3 1 2\narc a b\narc b c\n";
        let b = "chip 4 4\nhorizon 6\ntask z 3 1 2\ntask y 2 2 1\ntask x 1 2 3\narc x y\narc y z\n";
        assert_eq!(canon(a), canon(b));
    }

    #[test]
    fn different_instances_get_different_keys() {
        let a = "chip 4 4\nhorizon 6\ntask a 1 2 3\ntask b 2 2 1\narc a b\n";
        let without_arc = "chip 4 4\nhorizon 6\ntask a 1 2 3\ntask b 2 2 1\n";
        let other_horizon = "chip 4 4\nhorizon 7\ntask a 1 2 3\ntask b 2 2 1\narc a b\n";
        assert_ne!(canon(a), canon(without_arc));
        assert_ne!(canon(a), canon(other_horizon));
    }

    /// The classic trap for naive tie-breaking: `a,b` identical, `c,d`
    /// identical, arcs `a->c` and `b->d`. Refinement can never separate `a`
    /// from `b` (the instance really is symmetric), so a tie-break by
    /// original index would serialize the two input orders differently.
    #[test]
    fn automorphic_instances_canonicalize_order_independently() {
        let ab = "chip 4 4\nhorizon 8\ntask a 1 1 1\ntask b 1 1 1\ntask c 2 2 2\ntask d 2 2 2\n\
                  arc a c\narc b d\n";
        let ba = "chip 4 4\nhorizon 8\ntask b 1 1 1\ntask a 1 1 1\ntask d 2 2 2\ntask c 2 2 2\n\
                  arc b d\narc a c\n";
        assert_eq!(canon(ab), canon(ba));
    }

    /// Many identical unrelated modules — the shape that makes naive
    /// individualization factorial — resolves via the twin-class shortcut.
    #[test]
    fn identical_module_stacks_canonicalize_quickly() {
        let mut forward = Instance::builder().chip(Chip::new(6, 6)).horizon(2);
        let mut renamed = Instance::builder().chip(Chip::new(6, 6)).horizon(2);
        for i in 0..12 {
            forward = forward.task(Task::new(format!("t{i}"), 2, 2, 2));
            renamed = renamed.task(Task::new(format!("m{}", 11 - i), 2, 2, 2));
        }
        let forward = forward.build().expect("valid");
        let renamed = renamed.build().expect("valid");
        assert_eq!(
            canonical_instance_text(&forward),
            canonical_instance_text(&renamed)
        );
    }

    #[test]
    fn key_distinguishes_kind_and_solver_knobs() {
        let instance =
            format::parse_instance("chip 2 2\nhorizon 4\ntask a 2 2 2\n").expect("instance parses");
        let canon = canonical_instance_text(&instance);
        let base = SolverConfig::default();
        let hard = SolverConfig {
            use_heuristics: false,
            ..SolverConfig::default()
        };
        assert_ne!(
            cache_key("opp", &canon, &base),
            cache_key("bmp", &canon, &base)
        );
        assert_ne!(
            cache_key("opp", &canon, &base),
            cache_key("opp", &canon, &hard)
        );
    }

    /// The returned permutation must describe the returned text: placing
    /// task `v` at position `rank[v]` reserializes to exactly the
    /// canonical text, whichever search branch (or the budget fallback)
    /// produced it. Cached placements are stored by canonical position, so
    /// any mismatch here would rename boxes onto the wrong tasks.
    #[test]
    fn canonical_rank_reproduces_the_canonical_text() {
        for text in [
            "chip 4 4\nhorizon 6\ntask a 1 2 3\ntask b 2 2 1\ntask c 3 1 2\narc a b\narc b c\n",
            "chip 4 4\nhorizon 8\ntask a 1 1 1\ntask b 1 1 1\ntask c 2 2 2\ntask d 2 2 2\n\
             arc a c\narc b d\n",
            "chip 6 6\nhorizon 2\ntask a 2 2 2\ntask b 2 2 2\ntask c 2 2 2\n",
        ] {
            let instance = format::parse_instance(text).expect("instance parses");
            let form = canonical_form(&instance);
            let mut sorted: Vec<u32> = form.rank.clone();
            sorted.sort_unstable();
            let identity: Vec<u32> = (0..instance.task_count() as u32).collect();
            assert_eq!(sorted, identity, "rank must be a permutation");
            assert_eq!(
                Canonicalizer::new(&instance).serialize(&form.rank),
                form.text,
                "rank and text must agree for {text:?}"
            );
        }
    }

    fn entry(tag: &str) -> CachedSolution {
        CachedSolution {
            status: "done",
            outcome: tag.to_string(),
            report: None,
            placement: None,
        }
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut cache = SolutionCache::new(2);
        cache.insert("a".into(), entry("a"));
        cache.insert("b".into(), entry("b"));
        assert!(cache.get("a").is_some(), "refresh a");
        cache.insert("c".into(), entry("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b").is_none(), "b was least recently used");
        assert!(cache.get("a").is_some() && cache.get("c").is_some());
    }

    #[test]
    fn lru_queue_stays_bounded_under_repeated_hits() {
        let mut cache = SolutionCache::new(2);
        cache.insert("a".into(), entry("a"));
        cache.insert("b".into(), entry("b"));
        for _ in 0..10_000 {
            assert!(cache.get("a").is_some());
        }
        assert!(
            cache.order.len() <= 2 * 4 + 17,
            "recency queue must stay O(capacity), got {}",
            cache.order.len()
        );
    }
}
