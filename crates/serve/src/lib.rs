//! `recopack serve`: the long-running solver service.
//!
//! Turns the one-shot solvers of `recopack-core` into an online system in
//! the shape real reconfigurable-device managers take (van der Veen et al.,
//! Angermeier et al.): a daemon that accepts solve jobs over HTTP, runs
//! them on a bounded worker pool, and exposes its internals through
//! standard observability endpoints.
//!
//! | Endpoint           | Method | Purpose                                      |
//! |--------------------|--------|----------------------------------------------|
//! | `/jobs`            | POST   | submit an Opp/Bmp/Spp/Pareto instance        |
//! | `/jobs:batch`      | POST   | submit an array of instances in one request  |
//! | `/jobs`            | GET    | list all known jobs                          |
//! | `/jobs/{id}`       | GET    | job status + [`SolveReport`] on completion   |
//! | `/jobs/{id}`       | DELETE | cancel (cooperative, via [`CancelToken`])    |
//! | `/healthz`         | GET    | liveness + readiness (queue not saturated)   |
//! | `/metrics`         | GET    | Prometheus text exposition v0.0.4            |
//!
//! Jobs are submitted as JSON (bodies are parsed with `recopack-json`, the
//! workspace's dependency-free reader):
//!
//! ```json
//! {"kind": "opp", "instance": "chip 4 4\nhorizon 2\ntask a 2 2 2\n",
//!  "node_limit": 1000000, "time_limit_ms": 5000, "threads": 2}
//! ```
//!
//! Connections are persistent HTTP/1.1 with pipelining: a per-connection
//! request loop honors `Connection:` headers, idles out after
//! [`ServeConfig::idle_timeout`], and the acceptor bounds the number of
//! simultaneously open connections (see [`ServeConfig::max_connections`]).
//!
//! Finished deterministic results are memoized in a canonicalized-instance
//! solution cache (see [`cache`]): resubmitting a structurally identical
//! instance — even with renamed or reordered tasks — answers from the
//! cache with the byte-identical report and a placement rendered with the
//! *resubmission's* task names, and identical submissions that are
//! already *in flight* attach to the running solve instead of starting a
//! second one. Terminal jobs stay queryable until 4096 newer ones retire
//! (older ids answer `404`), keeping the job table bounded under
//! sustained traffic.
//!
//! The server logs one NDJSON object per request and per job transition to
//! stderr, and drains gracefully on SIGTERM/ctrl-c: in-flight and queued
//! jobs finish, new submissions are refused with 503, and the final metric
//! values are flushed to the log before exit.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod http;
mod signal;
mod sink;

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime};

use recopack_core::telemetry::push_json_str;
use recopack_core::{
    pareto_front_with_stats, per_second, Bmp, CancelToken, LimitKind, Opp, SolveOutcome,
    SolveReport, SolverConfig, SolverStats, Spp, Telemetry,
};
use recopack_json::Json;
use recopack_metrics::{Counter, Gauge, Histogram, Registry};
use recopack_model::{format, Instance, Placement};

use cache::{CachedSolution, SolutionCache};
pub use signal::{install_shutdown_handler, shutdown_requested};
pub use sink::MetricsSink;

/// Configuration of one [`Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878`. Port `0` binds an ephemeral
    /// port (see [`Server::local_addr`]).
    pub addr: String,
    /// Solver worker threads draining the job queue. `0` uses the hardware
    /// parallelism.
    pub workers: usize,
    /// Capacity of the bounded job queue; submissions beyond it are
    /// rejected with `503` and counted in `recopack_jobs_rejected_total`.
    pub queue_depth: usize,
    /// Maximum simultaneously open HTTP connections; further connects are
    /// answered `503` and closed (counted in
    /// `recopack_http_connections_rejected_total`).
    pub max_connections: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Capacity of the canonicalized-instance solution cache (entries).
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            workers: 2,
            queue_depth: 16,
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
            cache_capacity: 256,
        }
    }
}

/// The problem family a job asks to solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobKind {
    Opp,
    Bmp,
    Spp,
    Pareto,
}

impl JobKind {
    const ALL: [JobKind; 4] = [JobKind::Opp, JobKind::Bmp, JobKind::Spp, JobKind::Pareto];

    fn name(self) -> &'static str {
        match self {
            JobKind::Opp => "opp",
            JobKind::Bmp => "bmp",
            JobKind::Spp => "spp",
            JobKind::Pareto => "pareto",
        }
    }

    fn index(self) -> usize {
        match self {
            JobKind::Opp => 0,
            JobKind::Bmp => 1,
            JobKind::Spp => 2,
            JobKind::Pareto => 3,
        }
    }

    fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Label values of `recopack_jobs_rejected_total`: the four job kinds plus
/// `unknown` for requests refused before a kind could be determined. A
/// closed set — see the cardinality policy in `recopack-metrics`.
const REJECT_KINDS: [&str; 5] = ["opp", "bmp", "spp", "pareto", "unknown"];

/// Index of the `unknown` slot in [`REJECT_KINDS`].
const REJECT_UNKNOWN: usize = 4;

/// Everything the worker needs to run a job.
struct JobSpec {
    instance: Instance,
    config: SolverConfig,
    /// Canonical permutation of `instance` — kept with the spec (not the
    /// job) because an heir with a different task order can inherit it:
    /// the produced placement is indexed by *this* instance's task order
    /// and must be re-indexed with *this* permutation.
    rank: Vec<u32>,
}

/// Lifecycle of a submitted job.
enum JobState {
    Queued,
    Running,
    Finished {
        /// `done`, `cancelled`, or `failed`.
        status: &'static str,
        outcome: String,
        /// The schema-2 [`SolveReport`] JSON, when the solver produced
        /// statistics.
        report: Option<String>,
        /// The placement in the text format of `recopack_model::format`,
        /// for feasible decision problems and optimization optima.
        placement: Option<String>,
    },
}

struct Job {
    kind: JobKind,
    name: String,
    state: JobState,
    /// Taken by the worker when the job starts. Only the dedup group's
    /// *driver* holds a spec; joined members share the driver's run.
    spec: Option<JobSpec>,
    /// The canonicalized cache key — the identity of this job's dedup
    /// group (see [`cache`]).
    key: String,
    /// This submission's task names, in task-index order. Shared and
    /// cached placements are stored name-free by canonical position; each
    /// job renders its own `place` lines from them with these names.
    task_names: Vec<String>,
    /// `rank[v]` is the canonical position of this submission's task `v`
    /// in the cache key (see [`cache::CanonicalInstance`]).
    rank: Vec<u32>,
}

/// One deduplicated solver run: every job id subscribed to it, plus the
/// cancellation token wired into the driver's [`SolverConfig`]. The token
/// fires only when the *last* member unsubscribes.
struct InFlight {
    members: Vec<u64>,
    cancel: CancelToken,
    /// Unique id of this group. When the last member of a *running* group
    /// cancels, the entry is retired immediately so identical submissions
    /// start fresh instead of joining a cancelled run; the finishing
    /// worker compares this id and leaves any successor entry that has
    /// since claimed the same key untouched.
    group: u64,
}

/// Upper bound on terminal jobs kept queryable in the job table. Under
/// sustained cache-hit traffic every submission finishes at line rate, so
/// without eviction the table would grow without bound; evicted job ids
/// answer `404` like unknown ones.
const FINISHED_RETENTION: usize = 4096;

/// Job table, queue, and in-flight dedup groups, guarded by one mutex so
/// queue membership, group membership, and job state can never disagree.
#[derive(Default)]
struct State {
    jobs: HashMap<u64, Job>,
    queue: VecDeque<u64>,
    inflight: HashMap<String, InFlight>,
    /// Terminal job ids in retirement order, oldest first; the tail of the
    /// bounded retention window (see [`FINISHED_RETENTION`]).
    finished: VecDeque<u64>,
    draining: bool,
}

/// Records that job `id` reached a terminal state and evicts the oldest
/// finished jobs beyond [`FINISHED_RETENTION`]. Every transition into
/// [`JobState::Finished`] must pass through here exactly once.
fn retire_job(st: &mut State, id: u64) {
    st.finished.push_back(id);
    while st.finished.len() > FINISHED_RETENTION {
        if let Some(old) = st.finished.pop_front() {
            st.jobs.remove(&old);
        }
    }
}

/// Every metric family the service exposes. Names are fixed at startup;
/// labels come from the closed [`JobKind`]/[`REJECT_KINDS`] enumerations.
struct ServerMetrics {
    registry: Registry,
    accepted: [Counter; 4],
    completed: [Counter; 4],
    cancelled: [Counter; 4],
    failed: [Counter; 4],
    rejected: [Counter; 5],
    queue_depth: Gauge,
    in_flight: Gauge,
    latency: Histogram,
    nodes: Histogram,
    cache_hits: Counter,
    cache_misses: Counter,
    dedup_joins: Counter,
    cache_entries: Gauge,
    connections_open: Gauge,
    connections_total: Counter,
    connections_rejected: Counter,
    request_seconds: Histogram,
}

impl ServerMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        let per_kind = |name: &str, help: &str| {
            JobKind::ALL.map(|k| registry.counter_with(name, &[("kind", k.name())], help))
        };
        let accepted = per_kind(
            "recopack_jobs_accepted_total",
            "Jobs admitted to the queue, by kind.",
        );
        let completed = per_kind(
            "recopack_jobs_completed_total",
            "Jobs that ran to a verdict (including budget exhaustion), by kind.",
        );
        let cancelled = per_kind(
            "recopack_jobs_cancelled_total",
            "Jobs cancelled via DELETE /jobs/{id}, by kind.",
        );
        let failed = per_kind(
            "recopack_jobs_failed_total",
            "Jobs whose optimization goal was unreachable, by kind.",
        );
        let rejected = REJECT_KINDS.map(|k| {
            registry.counter_with(
                "recopack_jobs_rejected_total",
                &[("kind", k)],
                "Submissions refused (malformed, queue full, draining), by kind.",
            )
        });
        Self {
            accepted,
            completed,
            cancelled,
            failed,
            rejected,
            queue_depth: registry
                .gauge("recopack_queue_depth", "Jobs waiting in the bounded queue."),
            in_flight: registry.gauge(
                "recopack_jobs_in_flight",
                "Jobs currently being solved by the worker pool.",
            ),
            latency: registry.histogram(
                "recopack_job_duration_seconds",
                &[0.001, 0.005, 0.025, 0.1, 0.5, 2.0, 10.0, 30.0, 120.0],
                "Wall-clock duration of completed jobs in seconds.",
            ),
            nodes: registry.histogram(
                "recopack_job_nodes",
                &[
                    10.0,
                    100.0,
                    1_000.0,
                    10_000.0,
                    100_000.0,
                    1_000_000.0,
                    10_000_000.0,
                ],
                "Search nodes explored per job.",
            ),
            cache_hits: registry.counter(
                "recopack_cache_hits_total",
                "Submissions answered from the canonicalized solution cache.",
            ),
            cache_misses: registry.counter(
                "recopack_cache_misses_total",
                "Submissions that started a fresh solver run.",
            ),
            dedup_joins: registry.counter(
                "recopack_jobs_deduplicated_total",
                "Submissions that attached to an identical in-flight run.",
            ),
            cache_entries: registry.gauge(
                "recopack_cache_entries",
                "Solutions currently held by the bounded LRU cache.",
            ),
            connections_open: registry.gauge(
                "recopack_http_connections_open",
                "HTTP connections currently being served.",
            ),
            connections_total: registry.counter(
                "recopack_http_connections_total",
                "HTTP connections accepted since startup.",
            ),
            connections_rejected: registry.counter(
                "recopack_http_connections_rejected_total",
                "Connections refused at the configured connection limit.",
            ),
            request_seconds: registry.histogram(
                "recopack_http_request_duration_seconds",
                &[0.0005, 0.002, 0.01, 0.05, 0.25, 1.0, 5.0],
                "HTTP request handling latency in seconds.",
            ),
            registry,
        }
    }
}

struct Inner {
    state: Mutex<State>,
    work_available: Condvar,
    queue_capacity: usize,
    max_connections: usize,
    idle_timeout: Duration,
    cache: Mutex<SolutionCache>,
    metrics: ServerMetrics,
    sink: Arc<MetricsSink>,
    next_id: AtomicU64,
    next_group: AtomicU64,
    accept_stop: AtomicBool,
}

/// One NDJSON log line on stderr: `{"t_ms":...,"event":...,...}`.
struct LogLine {
    buf: String,
}

impl LogLine {
    fn new(event: &str) -> Self {
        let t_ms = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let mut buf = format!("{{\"t_ms\":{t_ms},\"event\":");
        push_json_str(&mut buf, event);
        Self { buf }
    }

    fn str(mut self, key: &str, value: &str) -> Self {
        self.buf.push(',');
        push_json_str(&mut self.buf, key);
        self.buf.push(':');
        push_json_str(&mut self.buf, value);
        self
    }

    fn num(mut self, key: &str, value: u64) -> Self {
        self.buf.push(',');
        push_json_str(&mut self.buf, key);
        use std::fmt::Write as _;
        let _ = write!(self.buf, ":{value}");
        self
    }

    fn ms(mut self, key: &str, value: f64) -> Self {
        self.buf.push(',');
        push_json_str(&mut self.buf, key);
        use std::fmt::Write as _;
        let _ = write!(self.buf, ":{value:.3}");
        self
    }

    fn emit(mut self) {
        self.buf.push('}');
        eprintln!("{}", self.buf);
    }
}

/// A running solver service: an HTTP acceptor plus a pool of solver
/// workers over one bounded job queue.
///
/// Lifecycle: [`bind`](Server::bind) starts everything,
/// [`shutdown`](Server::shutdown) begins the graceful drain (accepted jobs
/// finish, new submissions are refused), [`join`](Server::join) waits for
/// the drain and stops the acceptor. [`run_until`](Server::run_until)
/// bundles the three for the CLI.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    workers: Vec<std::thread::JoinHandle<()>>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts the worker pool and the acceptor.
    pub fn bind(config: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = ServerMetrics::new();
        let sink = Arc::new(MetricsSink::register(&metrics.registry));
        let inner = Arc::new(Inner {
            state: Mutex::new(State::default()),
            work_available: Condvar::new(),
            queue_capacity: config.queue_depth.max(1),
            max_connections: config.max_connections.max(1),
            idle_timeout: config.idle_timeout.max(Duration::from_millis(10)),
            cache: Mutex::new(SolutionCache::new(config.cache_capacity.max(1))),
            metrics,
            sink,
            next_id: AtomicU64::new(1),
            next_group: AtomicU64::new(1),
            accept_stop: AtomicBool::new(false),
        });
        let worker_count = match config.workers {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        };
        let workers = (0..worker_count)
            .map(|_| {
                let inner = inner.clone();
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        let acceptor = {
            let inner = inner.clone();
            std::thread::spawn(move || accept_loop(&inner, listener))
        };
        LogLine::new("listening")
            .str("addr", &addr.to_string())
            .num("workers", worker_count as u64)
            .num("queue_depth", inner.queue_capacity as u64)
            .emit();
        Ok(Server {
            inner,
            addr,
            workers,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (relevant when the config asked for port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins the graceful drain: queued and running jobs finish, new
    /// submissions are refused with `503`, `/healthz` reports draining.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock().expect("state lock");
            if st.draining {
                return;
            }
            st.draining = true;
        }
        self.inner.work_available.notify_all();
        LogLine::new("shutdown").str("phase", "drain").emit();
    }

    /// Waits for the workers to drain the queue, then stops the acceptor
    /// and flushes the final metric values to the log. Call
    /// [`shutdown`](Server::shutdown) first, or this blocks until someone
    /// does.
    pub fn join(mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.inner.accept_stop.store(true, Ordering::Relaxed);
        if let Some(acceptor) = self.acceptor.take() {
            // The acceptor blocks in `accept` (no polling), so wake it
            // with one throwaway local connection; it re-checks
            // `accept_stop` on every wakeup. If the wake cannot connect
            // (exotic network config), the handle is dropped instead of
            // joined — a leaked parked thread beats a deadlocked drain.
            let mut wake = self.addr;
            if wake.ip().is_unspecified() {
                wake.set_ip(match wake.ip() {
                    std::net::IpAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                    std::net::IpAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
                });
            }
            if TcpStream::connect_timeout(&wake, Duration::from_secs(1)).is_ok() {
                let _ = acceptor.join();
            }
        }
        let exposition = self.inner.metrics.registry.render();
        LogLine::new("metrics_flushed")
            .num("bytes", exposition.len() as u64)
            .emit();
        eprint!("{exposition}");
    }

    /// Serves until `stop` becomes true (typically the flag returned by
    /// [`install_shutdown_handler`]), then drains and exits. With the
    /// signal flag this parks on the handler's self-pipe and wakes the
    /// instant a signal arrives; a foreign flag falls back to a coarse
    /// poll (see `signal::wait_for_shutdown`).
    pub fn run_until(self, stop: &AtomicBool) {
        while !stop.load(Ordering::Relaxed) {
            signal::wait_for_shutdown(stop);
        }
        self.shutdown();
        self.join();
    }
}

/// One solver worker: pop a job, run it, record the outcome — until the
/// queue is empty *and* the server is draining.
fn worker_loop(inner: &Inner) {
    loop {
        let mut st = inner.state.lock().expect("state lock");
        let id = loop {
            if let Some(id) = st.queue.pop_front() {
                break id;
            }
            if st.draining {
                return;
            }
            st = inner.work_available.wait(st).expect("state lock");
        };
        inner.metrics.queue_depth.dec();
        let job = st.jobs.get_mut(&id).expect("queued job exists");
        if !matches!(job.state, JobState::Queued) {
            // Cancelled while queued; its terminal state is already set.
            continue;
        }
        job.state = JobState::Running;
        let kind = job.kind;
        let name = job.name.clone();
        let spec = job.spec.take().expect("queued job has a spec");
        let key = job.key.clone();
        // Every member of the dedup group is now running this solve. The
        // group id identifies *this* group at publish time: if the run is
        // cancelled mid-flight the entry is retired early and a fresh
        // group may reuse the key.
        let (members, group) = st
            .inflight
            .get(&key)
            .map(|group| (group.members.clone(), group.group))
            .unwrap_or((vec![id], 0));
        for &member in &members {
            if let Some(job) = st.jobs.get_mut(&member) {
                job.state = JobState::Running;
            }
        }
        drop(st);

        inner.metrics.in_flight.inc();
        LogLine::new("job_started")
            .num("job", id)
            .str("kind", kind.name())
            .num("subscribers", members.len().max(1) as u64)
            .emit();
        let started = Instant::now();
        let finished = run_job(kind, &name, &spec);
        let wall = started.elapsed();
        inner.metrics.in_flight.dec();
        inner.metrics.latency.observe(wall.as_secs_f64());
        inner.metrics.nodes.observe(finished.nodes as f64);
        LogLine::new("job_finished")
            .num("job", id)
            .str("kind", kind.name())
            .str("status", finished.status)
            .str("outcome", &finished.outcome)
            .ms("wall_ms", wall.as_secs_f64() * 1000.0)
            .num("nodes", finished.nodes)
            .emit();

        // Re-index the placement from the driver's task order into
        // canonical positions: subscribers (and future cache hits) carry
        // their own task names and render their own `place` lines.
        let canon_placement = finished.placement.as_ref().map(|origins| {
            let mut canon = vec![[0u64; 3]; origins.len()];
            for (v, origin) in origins.iter().enumerate() {
                canon[spec.rank[v] as usize] = *origin;
            }
            canon
        });

        // Fill the cache *before* publishing the finished state: any
        // client that observes the job as done is then guaranteed that an
        // identical resubmission hits.
        if finished.cacheable {
            let mut cache = inner.cache.lock().expect("cache lock");
            cache.insert(
                key.clone(),
                CachedSolution {
                    status: finished.status,
                    outcome: finished.outcome.clone(),
                    report: finished.report.clone(),
                    placement: canon_placement.clone(),
                },
            );
            inner.metrics.cache_entries.set(cache.len() as i64);
        }

        let mut st = inner.state.lock().expect("state lock");
        // Retire the in-flight entry only if it is still *our* group: a
        // cancel of the last member mid-run removes it early, and an
        // identical submission may have installed a successor group under
        // the same key since — that one must keep running undisturbed.
        let members = if st.inflight.get(&key).is_some_and(|g| g.group == group) {
            st.inflight.remove(&key).expect("checked above").members
        } else {
            members
        };
        for &member in &members {
            let Some(job) = st.jobs.get_mut(&member) else {
                continue;
            };
            if matches!(job.state, JobState::Finished { .. }) {
                continue;
            }
            job.state = JobState::Finished {
                status: finished.status,
                outcome: finished.outcome.clone(),
                report: finished.report.clone(),
                placement: canon_placement
                    .as_ref()
                    .map(|origins| render_placement(origins, &job.task_names, &job.rank)),
            };
            retire_job(&mut st, member);
            match finished.status {
                "cancelled" => inner.metrics.cancelled[kind.index()].inc(),
                "failed" => inner.metrics.failed[kind.index()].inc(),
                _ => inner.metrics.completed[kind.index()].inc(),
            }
        }
    }
}

/// Renders the `place` lines of a name-free canonical placement with one
/// job's own task names: task `v` gets the box at canonical position
/// `rank[v]`. Byte-identical to `format::format_placement` for the
/// submission whose solve produced the placement.
fn render_placement(origins: &[[u64; 3]], task_names: &[String], rank: &[u32]) -> String {
    let mut out = String::new();
    for (v, name) in task_names.iter().enumerate() {
        let [x, y, t] = origins[rank[v] as usize];
        use std::fmt::Write as _;
        let _ = writeln!(out, "place {name} {x} {y} {t}");
    }
    out
}

/// Terminal result of one executed job.
struct FinishedJob {
    status: &'static str,
    outcome: String,
    report: Option<String>,
    /// Box origins in the task-index order of the solved instance; the
    /// worker re-indexes them into canonical positions before caching or
    /// publishing, so every subscriber renders its own task names.
    placement: Option<Vec<[u64; 3]>>,
    nodes: u64,
    /// Whether the result is deterministic and complete — a real verdict,
    /// not a budget exhaustion or cancellation — and thus safe to memoize
    /// for identical future submissions.
    cacheable: bool,
}

/// Runs one job to completion on the calling worker thread.
fn run_job(kind: JobKind, name: &str, spec: &JobSpec) -> FinishedJob {
    let started = Instant::now();
    let threads = spec.config.threads;
    let report_for = |outcome: &str, decisions: u32, stats: &SolverStats| {
        let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
        let per_sec = |count: u64| per_second(count, wall_ms);
        SolveReport {
            command: kind.name().to_string(),
            instance: name.to_string(),
            outcome: outcome.to_string(),
            threads,
            decisions,
            wall_ms,
            nodes_per_sec: per_sec(stats.nodes),
            propagation_events_per_sec: per_sec(stats.propagation_events),
            stats: stats.clone(),
            events: None,
            journal_dropped: None,
        }
        .to_json()
    };
    match kind {
        JobKind::Opp => {
            let (outcome, stats) = Opp::new(&spec.instance)
                .with_config(spec.config.clone())
                .solve_with_stats();
            let label = match &outcome {
                SolveOutcome::Feasible(_) => "feasible".to_string(),
                SolveOutcome::Infeasible(_) => "infeasible".to_string(),
                SolveOutcome::ResourceLimit(LimitKind::Cancelled) => "cancelled".to_string(),
                SolveOutcome::ResourceLimit(limit) => format!("{limit} reached"),
            };
            let status = match &outcome {
                SolveOutcome::ResourceLimit(LimitKind::Cancelled) => "cancelled",
                _ => "done",
            };
            let placement = outcome.placement().map(placement_origins);
            let cacheable = matches!(
                outcome,
                SolveOutcome::Feasible(_) | SolveOutcome::Infeasible(_)
            );
            FinishedJob {
                status,
                report: Some(report_for(&label, 1, &stats)),
                outcome: label,
                placement,
                nodes: stats.nodes,
                cacheable,
            }
        }
        JobKind::Bmp => match Bmp::new(&spec.instance)
            .with_config(spec.config.clone())
            .solve()
        {
            Some(result) => {
                let label = format!("side {}", result.side);
                FinishedJob {
                    status: "done",
                    report: Some(report_for(&label, result.decisions, &result.stats)),
                    outcome: label,
                    placement: Some(placement_origins(&result.placement)),
                    nodes: result.stats.nodes,
                    cacheable: true,
                }
            }
            None => unresolved(
                &spec.config.cancel,
                "no chip admits the deadline or a budget ran out",
            ),
        },
        JobKind::Spp => match Spp::new(&spec.instance)
            .with_config(spec.config.clone())
            .solve()
        {
            Some(result) => {
                let label = format!("makespan {}", result.makespan);
                FinishedJob {
                    status: "done",
                    report: Some(report_for(&label, result.decisions, &result.stats)),
                    outcome: label,
                    placement: Some(placement_origins(&result.placement)),
                    nodes: result.stats.nodes,
                    cacheable: true,
                }
            }
            None => unresolved(
                &spec.config.cancel,
                "no horizon fits the chip spatially or a budget ran out",
            ),
        },
        JobKind::Pareto => match pareto_front_with_stats(&spec.instance, &spec.config) {
            Some((front, stats, decisions)) => {
                let label = format!("{} pareto points", front.len());
                FinishedJob {
                    status: "done",
                    report: Some(report_for(&label, decisions, &stats)),
                    outcome: label,
                    placement: None,
                    nodes: stats.nodes,
                    cacheable: true,
                }
            }
            None => unresolved(&spec.config.cancel, "a budget ran out during the sweep"),
        },
    }
}

/// The box origins of a placement, in the task-index order of the solved
/// instance.
fn placement_origins(placement: &Placement) -> Vec<[u64; 3]> {
    placement.boxes().iter().map(|b| b.origin).collect()
}

/// An optimization solver returned no result: either our cancellation hook
/// fired, or the goal is unreachable within the budgets.
fn unresolved(cancel: &CancelToken, message: &str) -> FinishedJob {
    if cancel.is_cancelled() {
        FinishedJob {
            status: "cancelled",
            outcome: "cancelled".to_string(),
            report: None,
            placement: None,
            nodes: 0,
            cacheable: false,
        }
    } else {
        FinishedJob {
            status: "failed",
            outcome: message.to_string(),
            report: None,
            placement: None,
            nodes: 0,
            cacheable: false,
        }
    }
}

/// Accepts connections until told to stop; each connection is handled on
/// its own thread so a slow client cannot stall the health or metrics
/// endpoints. The accept is *blocking* — an idle server sleeps in the
/// kernel and a new connection is dispatched immediately, instead of the
/// old nonblocking poll that added up to 20 ms of latency per request.
/// [`Server::join`] unblocks a parked accept with a wake connection.
fn accept_loop(inner: &Arc<Inner>, listener: TcpListener) {
    loop {
        if inner.accept_stop.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                if inner.accept_stop.load(Ordering::Relaxed) {
                    // The wake connection from `join`; drop it and exit.
                    return;
                }
                if inner.metrics.connections_open.get() >= inner.max_connections as i64 {
                    // Over the connection budget: answer once and close,
                    // briefly, on the acceptor thread itself.
                    inner.metrics.connections_rejected.inc();
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    http::respond(
                        &mut stream,
                        503,
                        "application/json",
                        &error_body("connection limit reached"),
                        false,
                    );
                    continue;
                }
                inner.metrics.connections_total.inc();
                inner.metrics.connections_open.inc();
                let inner = inner.clone();
                std::thread::spawn(move || {
                    handle_connection(&inner, stream);
                    inner.metrics.connections_open.dec();
                });
            }
            // Transient accept failures (connection reset in the backlog,
            // fd exhaustion): back off briefly instead of spinning.
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Serves one connection: a keep-alive request loop that ends when the
/// peer closes, the negotiated semantics say close, the idle timeout
/// expires, or a protocol error leaves the stream unframed.
fn handle_connection(inner: &Inner, stream: TcpStream) {
    const JSON: &str = "application/json";
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(inner.idle_timeout));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut conn = http::Conn::new(stream);
    loop {
        match conn.read_next() {
            http::Next::Closed => return,
            http::Next::Error {
                status,
                message,
                keep_alive,
            } => {
                conn.respond(status, JSON, &error_body(&message), keep_alive);
                LogLine::new("request_error")
                    .num("status", u64::from(status))
                    .str("error", &message)
                    .emit();
                if !keep_alive {
                    return;
                }
            }
            http::Next::Request(request) => {
                let started = Instant::now();
                let (status, content_type, body) = route(inner, &request);
                conn.respond(status, content_type, &body, request.keep_alive);
                inner
                    .metrics
                    .request_seconds
                    .observe(started.elapsed().as_secs_f64());
                LogLine::new("request")
                    .str("method", &request.method)
                    .str("path", &request.path)
                    .num("status", u64::from(status))
                    .emit();
                if !request.keep_alive {
                    return;
                }
            }
        }
    }
}

fn error_body(message: &str) -> String {
    let mut body = String::from("{\"error\":");
    push_json_str(&mut body, message);
    body.push('}');
    body
}

fn route(inner: &Inner, request: &http::Request) -> (u16, &'static str, String) {
    const JSON: &str = "application/json";
    const PROMETHEUS: &str = "text/plain; version=0.0.4; charset=utf-8";
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let (status, body) = healthz(inner);
            (status, JSON, body)
        }
        ("GET", "/metrics") => (200, PROMETHEUS, inner.metrics.registry.render()),
        ("POST", "/jobs") => {
            let (status, body) = submit(inner, &request.body);
            (status, JSON, body)
        }
        ("POST", "/jobs:batch") => {
            let (status, body) = submit_batch(inner, &request.body);
            (status, JSON, body)
        }
        ("GET", "/jobs") => (200, JSON, list_jobs(inner)),
        (method, path) => match path.strip_prefix("/jobs/").map(str::parse::<u64>) {
            Some(Ok(id)) => match method {
                "GET" => {
                    let (status, body) = job_status(inner, id);
                    (status, JSON, body)
                }
                "DELETE" => {
                    let (status, body) = cancel_job(inner, id);
                    (status, JSON, body)
                }
                _ => (405, JSON, error_body("method not allowed")),
            },
            Some(Err(_)) => (404, JSON, error_body("job ids are integers")),
            None => (404, JSON, error_body("not found")),
        },
    }
}

fn healthz(inner: &Inner) -> (u16, String) {
    let (depth, draining) = {
        let st = inner.state.lock().expect("state lock");
        (st.queue.len(), st.draining)
    };
    let capacity = inner.queue_capacity;
    let in_flight = inner.metrics.in_flight.get();
    let status_word = if draining {
        "draining"
    } else if depth >= capacity {
        "saturated"
    } else {
        "ok"
    };
    let code = if status_word == "ok" { 200 } else { 503 };
    let body = format!(
        "{{\"status\":\"{status_word}\",\"queue_depth\":{depth},\
         \"queue_capacity\":{capacity},\"in_flight\":{in_flight}}}"
    );
    (code, body)
}

/// Records a refused submission in metrics and the log, and returns the
/// HTTP status plus a plain reason for the caller to package.
fn reject(inner: &Inner, kind_index: usize, status: u16, reason: &str) -> (u16, String) {
    inner.metrics.rejected[kind_index].inc();
    LogLine::new("job_rejected")
        .str("kind", REJECT_KINDS[kind_index])
        .str("reason", reason)
        .emit();
    (status, reason.to_string())
}

/// Handles `POST /jobs`: validate, admission-control, enqueue.
fn submit(inner: &Inner, body: &str) -> (u16, String) {
    let doc = match Json::parse(body) {
        Ok(doc) => doc,
        Err(e) => {
            let (status, reason) = reject(
                inner,
                REJECT_UNKNOWN,
                400,
                &format!("malformed JSON body: {e}"),
            );
            return (status, error_body(&reason));
        }
    };
    match submit_doc(inner, &doc) {
        Ok((id, status_word)) => (202, format!("{{\"id\":{id},\"status\":\"{status_word}\"}}")),
        Err((status, reason)) => (status, error_body(&reason)),
    }
}

/// Largest accepted `POST /jobs:batch` array.
const MAX_BATCH_ITEMS: usize = 64;

/// Handles `POST /jobs:batch`: an array of job objects (bare, or under a
/// `jobs` key), admitted independently. The response carries one entry per
/// item, in order — an `{"id":..,"status":..}` on admission or a
/// `{"status":"rejected","code":..,"error":..}` on refusal — so one bad or
/// over-quota item never poisons the rest of the batch.
fn submit_batch(inner: &Inner, body: &str) -> (u16, String) {
    let doc = match Json::parse(body) {
        Ok(doc) => doc,
        Err(e) => {
            let (status, reason) = reject(
                inner,
                REJECT_UNKNOWN,
                400,
                &format!("malformed JSON body: {e}"),
            );
            return (status, error_body(&reason));
        }
    };
    let items = match doc
        .as_array()
        .or_else(|| doc.get("jobs").and_then(Json::as_array))
    {
        Some(items) if !items.is_empty() => items,
        _ => {
            let (status, reason) = reject(
                inner,
                REJECT_UNKNOWN,
                400,
                "batch body must be a non-empty JSON array of job objects (or {\"jobs\":[...]})",
            );
            return (status, error_body(&reason));
        }
    };
    if items.len() > MAX_BATCH_ITEMS {
        let (status, reason) = reject(
            inner,
            REJECT_UNKNOWN,
            400,
            &format!(
                "batch of {} exceeds the limit of {MAX_BATCH_ITEMS}",
                items.len()
            ),
        );
        return (status, error_body(&reason));
    }
    let mut body = String::from("{\"jobs\":[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        match submit_doc(inner, item) {
            Ok((id, status_word)) => {
                use std::fmt::Write as _;
                let _ = write!(body, "{{\"id\":{id},\"status\":\"{status_word}\"}}");
            }
            Err((code, reason)) => {
                use std::fmt::Write as _;
                let _ = write!(body, "{{\"status\":\"rejected\",\"code\":{code},\"error\":");
                push_json_str(&mut body, &reason);
                body.push('}');
            }
        }
    }
    body.push_str("]}");
    (200, body)
}

/// Admits one job document: validate, consult the solution cache, attach
/// to an identical in-flight run, or enqueue a fresh solve. Returns the
/// job id and its initial status word (`queued`, or `done` on a cache
/// hit), or the refusal status and reason.
fn submit_doc(inner: &Inner, doc: &Json) -> Result<(u64, &'static str), (u16, String)> {
    let Some(kind_name) = doc.get("kind").and_then(Json::as_str) else {
        return Err(reject(
            inner,
            REJECT_UNKNOWN,
            400,
            "missing \"kind\" (opp|bmp|spp|pareto)",
        ));
    };
    let Some(kind) = JobKind::parse(kind_name) else {
        return Err(reject(
            inner,
            REJECT_UNKNOWN,
            400,
            &format!("unknown kind {kind_name:?}"),
        ));
    };
    let Some(instance_text) = doc.get("instance").and_then(Json::as_str) else {
        return Err(reject(
            inner,
            kind.index(),
            400,
            "missing \"instance\" text",
        ));
    };
    let instance = match format::parse_instance(instance_text) {
        Ok(instance) => instance,
        Err(e) => {
            return Err(reject(
                inner,
                kind.index(),
                400,
                &format!("bad instance: {e}"),
            ));
        }
    };
    let instance = if doc
        .get("no_precedence")
        .and_then(Json::as_bool)
        .unwrap_or(false)
    {
        instance.without_precedence()
    } else {
        instance.with_transitive_closure()
    };
    let cancel = CancelToken::new();
    let config = SolverConfig {
        threads: doc.get("threads").and_then(Json::as_u64).unwrap_or(1) as usize,
        use_bounds: doc
            .get("use_bounds")
            .and_then(Json::as_bool)
            .unwrap_or(true),
        use_heuristics: doc
            .get("use_heuristics")
            .and_then(Json::as_bool)
            .unwrap_or(true),
        node_limit: doc.get("node_limit").and_then(Json::as_u64),
        time_limit: doc
            .get("time_limit_ms")
            .and_then(Json::as_u64)
            .map(Duration::from_millis),
        telemetry: Telemetry::to(inner.sink.clone()),
        cancel: cancel.clone(),
        ..SolverConfig::default()
    };
    let canon = cache::canonical_form(&instance);
    let key = cache::cache_key(kind.name(), &canon.text, &config);
    let task_names: Vec<String> = instance
        .tasks()
        .iter()
        .map(|t| t.name().to_string())
        .collect();
    let name_for = |id: u64| {
        doc.get("name")
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| format!("job-{id}"))
    };

    // 1. Replay a memoized solution: the job is born finished, carrying
    //    the byte-identical report of the original run and the cached
    //    placement rendered with *this* submission's task names (the key
    //    is relabeling-invariant, so the original names may differ).
    let hit = inner.cache.lock().expect("cache lock").get(&key);
    if let Some(hit) = hit {
        let mut st = inner.state.lock().expect("state lock");
        if st.draining {
            return Err(reject(inner, kind.index(), 503, "server is draining"));
        }
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let name = name_for(id);
        let placement = hit
            .placement
            .as_ref()
            .map(|origins| render_placement(origins, &task_names, &canon.rank));
        st.jobs.insert(
            id,
            Job {
                kind,
                name: name.clone(),
                state: JobState::Finished {
                    status: hit.status,
                    outcome: hit.outcome,
                    report: hit.report,
                    placement,
                },
                spec: None,
                key,
                task_names,
                rank: canon.rank,
            },
        );
        retire_job(&mut st, id);
        drop(st);
        inner.metrics.cache_hits.inc();
        inner.metrics.accepted[kind.index()].inc();
        inner.metrics.completed[kind.index()].inc();
        LogLine::new("job_cached")
            .num("job", id)
            .str("kind", kind.name())
            .str("name", &name)
            .emit();
        return Ok((id, "done"));
    }

    let mut st = inner.state.lock().expect("state lock");
    if st.draining {
        return Err(reject(inner, kind.index(), 503, "server is draining"));
    }

    // 2. Attach to an identical run already in flight: no queue slot, no
    //    second solver run — the driver publishes to every subscriber.
    if st.inflight.contains_key(&key) {
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let name = name_for(id);
        let driver = st.inflight[&key].members[0];
        let state = if matches!(
            st.jobs.get(&driver).map(|j| &j.state),
            Some(JobState::Running)
        ) {
            JobState::Running
        } else {
            JobState::Queued
        };
        st.inflight
            .get_mut(&key)
            .expect("group checked above")
            .members
            .push(id);
        st.jobs.insert(
            id,
            Job {
                kind,
                name: name.clone(),
                state,
                spec: None,
                key,
                task_names,
                rank: canon.rank,
            },
        );
        drop(st);
        inner.metrics.dedup_joins.inc();
        inner.metrics.accepted[kind.index()].inc();
        LogLine::new("job_joined")
            .num("job", id)
            .str("kind", kind.name())
            .str("name", &name)
            .emit();
        return Ok((id, "queued"));
    }

    // 3. Fresh work: admission-control against the bounded queue.
    if st.queue.len() >= inner.queue_capacity {
        return Err(reject(inner, kind.index(), 503, "queue full"));
    }
    let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
    let name = name_for(id);
    st.jobs.insert(
        id,
        Job {
            kind,
            name: name.clone(),
            state: JobState::Queued,
            spec: Some(JobSpec {
                instance,
                config,
                rank: canon.rank.clone(),
            }),
            key: key.clone(),
            task_names,
            rank: canon.rank,
        },
    );
    st.inflight.insert(
        key,
        InFlight {
            members: vec![id],
            cancel,
            group: inner.next_group.fetch_add(1, Ordering::Relaxed),
        },
    );
    st.queue.push_back(id);
    drop(st);
    inner.metrics.queue_depth.inc();
    inner.metrics.cache_misses.inc();
    inner.metrics.accepted[kind.index()].inc();
    inner.work_available.notify_one();
    LogLine::new("job_accepted")
        .num("job", id)
        .str("kind", kind.name())
        .str("name", &name)
        .emit();
    Ok((id, "queued"))
}

fn job_json(id: u64, job: &Job) -> String {
    let mut body = format!("{{\"id\":{id},\"kind\":");
    push_json_str(&mut body, job.kind.name());
    body.push_str(",\"name\":");
    push_json_str(&mut body, &job.name);
    body.push_str(",\"status\":");
    match &job.state {
        JobState::Queued => body.push_str("\"queued\"}"),
        JobState::Running => body.push_str("\"running\"}"),
        JobState::Finished {
            status,
            outcome,
            report,
            placement,
        } => {
            push_json_str(&mut body, status);
            body.push_str(",\"outcome\":");
            push_json_str(&mut body, outcome);
            body.push_str(",\"report\":");
            match report {
                Some(report) => body.push_str(report),
                None => body.push_str("null"),
            }
            body.push_str(",\"placement\":");
            match placement {
                Some(placement) => push_json_str(&mut body, placement),
                None => body.push_str("null"),
            }
            body.push('}');
        }
    }
    body
}

fn job_status(inner: &Inner, id: u64) -> (u16, String) {
    let st = inner.state.lock().expect("state lock");
    match st.jobs.get(&id) {
        Some(job) => (200, job_json(id, job)),
        None => (404, error_body("no such job")),
    }
}

fn list_jobs(inner: &Inner) -> String {
    let st = inner.state.lock().expect("state lock");
    let mut ids: Vec<u64> = st.jobs.keys().copied().collect();
    ids.sort_unstable();
    let mut body = String::from("{\"jobs\":[");
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&job_json(*id, &st.jobs[id]));
    }
    body.push_str("]}");
    body
}

fn cancel_job(inner: &Inner, id: u64) -> (u16, String) {
    enum Snapshot {
        NotFound,
        Queued(JobKind),
        Running(JobKind),
        Finished(&'static str),
    }
    let mut st = inner.state.lock().expect("state lock");
    let snapshot = match st.jobs.get(&id) {
        None => Snapshot::NotFound,
        Some(job) => match &job.state {
            JobState::Queued => Snapshot::Queued(job.kind),
            JobState::Running => Snapshot::Running(job.kind),
            JobState::Finished { status, .. } => Snapshot::Finished(status),
        },
    };
    let (kind, was_queued) = match snapshot {
        Snapshot::NotFound => return (404, error_body("no such job")),
        Snapshot::Finished(status) => {
            return (
                409,
                format!(
                    "{{\"id\":{id},\"status\":\"{status}\",\"error\":\"job already finished\"}}"
                ),
            );
        }
        Snapshot::Queued(kind) => (kind, true),
        Snapshot::Running(kind) => (kind, false),
    };

    let key = st.jobs.get(&id).expect("job exists").key.clone();
    // The membership check matters: after a running job's group is retired
    // by a previous DELETE, an identical submission may install a
    // *successor* group under the same key — that one must not be touched
    // on behalf of this job.
    let Some(group) = st
        .inflight
        .get_mut(&key)
        .filter(|group| group.members.contains(&id))
    else {
        // Already detached: an earlier DELETE fired the token and retired
        // the group; the worker publishes the terminal state shortly.
        drop(st);
        return (202, format!("{{\"id\":{id},\"status\":\"cancelling\"}}"));
    };

    if group.members.len() > 1 {
        // Unsubscribe one member of a shared run: the solve itself keeps
        // going for the remaining subscribers. If the departing job was
        // the driver (holds the spec / the queue slot), promote an heir.
        group.members.retain(|&member| member != id);
        let heir = group.members[0];
        if let Some(spec) = st.jobs.get_mut(&id).and_then(|job| job.spec.take()) {
            st.jobs.get_mut(&heir).expect("heir exists").spec = Some(spec);
            for slot in st.queue.iter_mut() {
                if *slot == id {
                    *slot = heir;
                }
            }
        }
        let job = st.jobs.get_mut(&id).expect("job exists");
        job.state = JobState::Finished {
            status: "cancelled",
            outcome: "unsubscribed from shared run".to_string(),
            report: None,
            placement: None,
        };
        retire_job(&mut st, id);
        drop(st);
        inner.metrics.cancelled[kind.index()].inc();
        LogLine::new("job_cancelled")
            .num("job", id)
            .str("while", "shared")
            .emit();
        return (200, format!("{{\"id\":{id},\"status\":\"cancelled\"}}"));
    }

    // Last subscriber: actually stop the solve.
    if was_queued {
        group.cancel.cancel();
        st.inflight.remove(&key);
        st.queue.retain(|&queued| queued != id);
        let job = st.jobs.get_mut(&id).expect("job exists");
        job.state = JobState::Finished {
            status: "cancelled",
            outcome: "cancelled while queued".to_string(),
            report: None,
            placement: None,
        };
        retire_job(&mut st, id);
        drop(st);
        inner.metrics.queue_depth.dec();
        inner.metrics.cancelled[kind.index()].inc();
        LogLine::new("job_cancelled")
            .num("job", id)
            .str("while", "queued")
            .emit();
        (200, format!("{{\"id\":{id},\"status\":\"cancelled\"}}"))
    } else {
        // The worker observes the token at its next budget checkpoint and
        // records the terminal state. Retire the group *now*: an identical
        // submission arriving while the solver unwinds must start a fresh
        // run, not join (and inherit the fate of) a cancelled one. The
        // worker matches on the group id, so a successor entry under this
        // key is safe from the finishing run.
        group.cancel.cancel();
        st.inflight.remove(&key);
        drop(st);
        LogLine::new("job_cancelled")
            .num("job", id)
            .str("while", "running")
            .emit();
        (202, format!("{{\"id\":{id},\"status\":\"cancelling\"}}"))
    }
}
