//! `recopack serve`: the long-running solver service.
//!
//! Turns the one-shot solvers of `recopack-core` into an online system in
//! the shape real reconfigurable-device managers take (van der Veen et al.,
//! Angermeier et al.): a daemon that accepts solve jobs over HTTP, runs
//! them on a bounded worker pool, and exposes its internals through
//! standard observability endpoints.
//!
//! | Endpoint              | Method | Purpose                                      |
//! |-----------------------|--------|----------------------------------------------|
//! | `/jobs`               | POST   | submit an Opp/Bmp/Spp/Pareto instance        |
//! | `/jobs:batch`         | POST   | submit an array of instances in one request  |
//! | `/jobs`               | GET    | list all known jobs                          |
//! | `/jobs/{id}`          | GET    | job status + [`SolveReport`] on completion   |
//! | `/jobs/{id}`          | DELETE | cancel (cooperative, via [`CancelToken`])    |
//! | `/jobs/{id}/progress` | GET    | live progress snapshot (nodes, phases, rate) |
//! | `/jobs/{id}/events`   | GET    | chunked NDJSON search-event stream (opt-in)  |
//! | `/debug/jobs`         | GET    | flight recorder: recent + slow job summaries |
//! | `/debug/profile`      | GET    | on-demand sampling profile of the worker pool |
//! | `/healthz`            | GET    | liveness + readiness (queue not saturated)   |
//! | `/metrics`            | GET    | Prometheus text exposition v0.0.4            |
//!
//! Jobs are submitted as JSON (bodies are parsed with `recopack-json`, the
//! workspace's dependency-free reader):
//!
//! ```json
//! {"kind": "opp", "instance": "chip 4 4\nhorizon 2\ntask a 2 2 2\n",
//!  "node_limit": 1000000, "time_limit_ms": 5000, "threads": 2}
//! ```
//!
//! Connections are persistent HTTP/1.1 with pipelining: a per-connection
//! request loop honors `Connection:` headers, idles out after
//! [`ServeConfig::idle_timeout`], and the acceptor bounds the number of
//! simultaneously open connections (see [`ServeConfig::max_connections`]).
//!
//! Finished deterministic results are memoized in a canonicalized-instance
//! solution cache (see [`cache`]): resubmitting a structurally identical
//! instance — even with renamed or reordered tasks — answers from the
//! cache with the byte-identical report and a placement rendered with the
//! *resubmission's* task names, and identical submissions that are
//! already *in flight* attach to the running solve instead of starting a
//! second one. Terminal jobs stay queryable until 4096 newer ones retire
//! (older ids answer `404`), keeping the job table bounded under
//! sustained traffic.
//!
//! The server logs one NDJSON object per request and per job transition to
//! stderr, and drains gracefully on SIGTERM/ctrl-c: in-flight and queued
//! jobs finish, new submissions are refused with 503, and the final metric
//! values are flushed to the log before exit.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod http;
mod profile;
mod progress;
mod recorder;
mod signal;
mod sink;

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime};

use recopack_core::beacon::{self, Phase as BeaconPhase, ProfileBuilder};
use recopack_core::telemetry::push_json_str;
use recopack_core::{
    pareto_front_with_stats, per_second, Bmp, CancelToken, Fanout, LimitKind, Opp,
    ProgressCounters, SolveOutcome, SolveReport, SolverConfig, SolverStats, Spp, Telemetry,
    TelemetrySink,
};
use recopack_json::Json;
use recopack_metrics::{Counter, Gauge, Histogram, Registry};
use recopack_model::{format, Instance, Placement};

use cache::{CachedSolution, SolutionCache};
use progress::{EventStream, JobProgress};
use recorder::{FlightRecorder, JobSummary};
pub use signal::{install_shutdown_handler, shutdown_requested};
pub use sink::MetricsSink;

/// Configuration of one [`Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878`. Port `0` binds an ephemeral
    /// port (see [`Server::local_addr`]).
    pub addr: String,
    /// Solver worker threads draining the job queue. `0` uses the hardware
    /// parallelism.
    pub workers: usize,
    /// Capacity of the bounded job queue; submissions beyond it are
    /// rejected with `503` and counted in `recopack_jobs_rejected_total`.
    pub queue_depth: usize,
    /// Maximum simultaneously open HTTP connections; further connects are
    /// answered `503` and closed (counted in
    /// `recopack_http_connections_rejected_total`).
    pub max_connections: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Capacity of the canonicalized-instance solution cache (entries).
    pub cache_capacity: usize,
    /// Jobs whose solve wall time reaches this many milliseconds are kept
    /// in the flight recorder's slow-job log and emit a `job_slow` log
    /// line. `0` disables slow-job tracking.
    pub slow_job_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            workers: 2,
            queue_depth: 16,
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
            cache_capacity: 256,
            slow_job_ms: 1000,
        }
    }
}

/// The problem family a job asks to solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobKind {
    Opp,
    Bmp,
    Spp,
    Pareto,
}

impl JobKind {
    const ALL: [JobKind; 4] = [JobKind::Opp, JobKind::Bmp, JobKind::Spp, JobKind::Pareto];

    fn name(self) -> &'static str {
        match self {
            JobKind::Opp => "opp",
            JobKind::Bmp => "bmp",
            JobKind::Spp => "spp",
            JobKind::Pareto => "pareto",
        }
    }

    fn index(self) -> usize {
        match self {
            JobKind::Opp => 0,
            JobKind::Bmp => 1,
            JobKind::Spp => 2,
            JobKind::Pareto => 3,
        }
    }

    fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Label values of `recopack_jobs_rejected_total`: the four job kinds plus
/// `unknown` for requests refused before a kind could be determined. A
/// closed set — see the cardinality policy in `recopack-metrics`.
const REJECT_KINDS: [&str; 5] = ["opp", "bmp", "spp", "pareto", "unknown"];

/// Index of the `unknown` slot in [`REJECT_KINDS`].
const REJECT_UNKNOWN: usize = 4;

/// Everything the worker needs to run a job.
struct JobSpec {
    instance: Instance,
    config: SolverConfig,
    /// Canonical permutation of `instance` — kept with the spec (not the
    /// job) because an heir with a different task order can inherit it:
    /// the produced placement is indexed by *this* instance's task order
    /// and must be re-indexed with *this* permutation.
    rank: Vec<u32>,
}

/// Lifecycle of a submitted job.
enum JobState {
    Queued,
    Running,
    Finished {
        /// `done`, `cancelled`, or `failed`.
        status: &'static str,
        outcome: String,
        /// The schema-2 [`SolveReport`] JSON, when the solver produced
        /// statistics.
        report: Option<String>,
        /// The placement in the text format of `recopack_model::format`,
        /// for feasible decision problems and optimization optima.
        placement: Option<String>,
    },
}

struct Job {
    kind: JobKind,
    name: String,
    state: JobState,
    /// Taken by the worker when the job starts. Only the dedup group's
    /// *driver* holds a spec; joined members share the driver's run.
    spec: Option<JobSpec>,
    /// The canonicalized cache key — the identity of this job's dedup
    /// group (see [`cache`]).
    key: String,
    /// This submission's task names, in task-index order. Shared and
    /// cached placements are stored name-free by canonical position; each
    /// job renders its own `place` lines from them with these names.
    task_names: Vec<String>,
    /// `rank[v]` is the canonical position of this submission's task `v`
    /// in the cache key (see [`cache::CanonicalInstance`]).
    rank: Vec<u32>,
    /// Correlation id of the HTTP request that submitted this job; echoed
    /// in the job document and every job-transition log line.
    request_id: String,
    /// Live progress of this job: the shared solver counters of its dedup
    /// group plus this submission's own queue/solve phase timing.
    progress: Arc<JobProgress>,
    /// Search-event broadcast for `GET /jobs/{id}/events`; `Some` only for
    /// jobs submitted with `"trace": true` (members of a traced dedup
    /// group share the driver's stream).
    trace: Option<Arc<EventStream>>,
}

/// One deduplicated solver run: every job id subscribed to it, plus the
/// cancellation token wired into the driver's [`SolverConfig`]. The token
/// fires only when the *last* member unsubscribes.
struct InFlight {
    members: Vec<u64>,
    cancel: CancelToken,
    /// Unique id of this group. When the last member of a *running* group
    /// cancels, the entry is retired immediately so identical submissions
    /// start fresh instead of joining a cancelled run; the finishing
    /// worker compares this id and leaves any successor entry that has
    /// since claimed the same key untouched.
    group: u64,
}

/// Upper bound on terminal jobs kept queryable in the job table. Under
/// sustained cache-hit traffic every submission finishes at line rate, so
/// without eviction the table would grow without bound; evicted job ids
/// answer `404` like unknown ones.
const FINISHED_RETENTION: usize = 4096;

/// Job table, queue, and in-flight dedup groups, guarded by one mutex so
/// queue membership, group membership, and job state can never disagree.
#[derive(Default)]
struct State {
    jobs: HashMap<u64, Job>,
    queue: VecDeque<u64>,
    inflight: HashMap<String, InFlight>,
    /// Terminal job ids in retirement order, oldest first; the tail of the
    /// bounded retention window (see [`FINISHED_RETENTION`]).
    finished: VecDeque<u64>,
    draining: bool,
}

/// Records that job `id` reached a terminal state and evicts the oldest
/// finished jobs beyond [`FINISHED_RETENTION`]. Every transition into
/// [`JobState::Finished`] must pass through here exactly once.
fn retire_job(st: &mut State, id: u64) {
    st.finished.push_back(id);
    while st.finished.len() > FINISHED_RETENTION {
        if let Some(old) = st.finished.pop_front() {
            st.jobs.remove(&old);
        }
    }
}

/// Every metric family the service exposes. Names are fixed at startup;
/// labels come from the closed [`JobKind`]/[`REJECT_KINDS`] enumerations.
struct ServerMetrics {
    registry: Registry,
    accepted: [Counter; 4],
    completed: [Counter; 4],
    cancelled: [Counter; 4],
    failed: [Counter; 4],
    rejected: [Counter; 5],
    queue_depth: Gauge,
    in_flight: Gauge,
    queue_wait: Histogram,
    solve: Histogram,
    canon_seconds: Histogram,
    nodes: Histogram,
    cache_hits: Counter,
    cache_misses: Counter,
    dedup_joins: Counter,
    cache_entries: Gauge,
    connections_open: Gauge,
    connections_total: Counter,
    connections_rejected: Counter,
    request_seconds: Histogram,
    phase_occupancy: [Gauge; 6],
    workers_stalled: Gauge,
    uptime: Gauge,
}

impl ServerMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        // Info-style gauge: the value is always 1, the payload is the labels.
        registry
            .gauge_with(
                "recopack_build_info",
                &[
                    ("version", env!("CARGO_PKG_VERSION")),
                    ("rustc", env!("RECOPACK_RUSTC")),
                    (
                        "profile",
                        if cfg!(debug_assertions) {
                            "debug"
                        } else {
                            "release"
                        },
                    ),
                ],
                "Build metadata carried as labels; the value is always 1.",
            )
            .set(1);
        let per_kind = |name: &str, help: &str| {
            JobKind::ALL.map(|k| registry.counter_with(name, &[("kind", k.name())], help))
        };
        let accepted = per_kind(
            "recopack_jobs_accepted_total",
            "Jobs admitted to the queue, by kind.",
        );
        let completed = per_kind(
            "recopack_jobs_completed_total",
            "Jobs that ran to a verdict (including budget exhaustion), by kind.",
        );
        let cancelled = per_kind(
            "recopack_jobs_cancelled_total",
            "Jobs cancelled via DELETE /jobs/{id}, by kind.",
        );
        let failed = per_kind(
            "recopack_jobs_failed_total",
            "Jobs whose optimization goal was unreachable, by kind.",
        );
        let rejected = REJECT_KINDS.map(|k| {
            registry.counter_with(
                "recopack_jobs_rejected_total",
                &[("kind", k)],
                "Submissions refused (malformed, queue full, draining), by kind.",
            )
        });
        Self {
            accepted,
            completed,
            cancelled,
            failed,
            rejected,
            queue_depth: registry
                .gauge("recopack_queue_depth", "Jobs waiting in the bounded queue."),
            in_flight: registry.gauge(
                "recopack_jobs_in_flight",
                "Jobs currently being solved by the worker pool.",
            ),
            queue_wait: registry.histogram(
                "recopack_job_queue_wait_seconds",
                &[0.0005, 0.002, 0.01, 0.05, 0.25, 1.0, 5.0, 30.0],
                "Time jobs waited in the queue before their solve started, in seconds.",
            ),
            solve: registry.histogram(
                "recopack_job_solve_seconds",
                &[0.001, 0.005, 0.025, 0.1, 0.5, 2.0, 10.0, 30.0, 120.0],
                "Wall-clock solver duration of completed jobs in seconds.",
            ),
            canon_seconds: registry.histogram(
                "recopack_cache_canonicalization_seconds",
                &[0.00001, 0.0001, 0.001, 0.01, 0.1, 1.0],
                "Time spent canonicalizing a submitted instance for its cache key, in seconds.",
            ),
            nodes: registry.histogram(
                "recopack_job_nodes",
                &[
                    10.0,
                    100.0,
                    1_000.0,
                    10_000.0,
                    100_000.0,
                    1_000_000.0,
                    10_000_000.0,
                ],
                "Search nodes explored per job.",
            ),
            cache_hits: registry.counter(
                "recopack_cache_hits_total",
                "Submissions answered from the canonicalized solution cache.",
            ),
            cache_misses: registry.counter(
                "recopack_cache_misses_total",
                "Submissions that started a fresh solver run.",
            ),
            dedup_joins: registry.counter(
                "recopack_jobs_deduplicated_total",
                "Submissions that attached to an identical in-flight run.",
            ),
            cache_entries: registry.gauge(
                "recopack_cache_entries",
                "Solutions currently held by the bounded LRU cache.",
            ),
            connections_open: registry.gauge(
                "recopack_http_connections_open",
                "HTTP connections currently being served.",
            ),
            connections_total: registry.counter(
                "recopack_http_connections_total",
                "HTTP connections accepted since startup.",
            ),
            connections_rejected: registry.counter(
                "recopack_http_connections_rejected_total",
                "Connections refused at the configured connection limit.",
            ),
            request_seconds: registry.histogram(
                "recopack_http_request_duration_seconds",
                &[0.0005, 0.002, 0.01, 0.05, 0.25, 1.0, 5.0],
                "HTTP request handling latency in seconds.",
            ),
            phase_occupancy: BeaconPhase::ALL.map(|phase| {
                registry.gauge_with(
                    "recopack_worker_phase_occupancy",
                    &[("phase", phase.name())],
                    "Share of sampled worker time spent in each solver phase over \
                     the last sampling window, in percent.",
                )
            }),
            workers_stalled: registry.gauge(
                "recopack_workers_stalled",
                "Workers whose activity beacon did not change for the stall \
                 threshold during the last sampling window.",
            ),
            uptime: registry.gauge(
                "recopack_uptime_seconds",
                "Seconds since the server process started.",
            ),
            registry,
        }
    }
}

struct Inner {
    state: Mutex<State>,
    work_available: Condvar,
    queue_capacity: usize,
    max_connections: usize,
    idle_timeout: Duration,
    cache: Mutex<SolutionCache>,
    metrics: ServerMetrics,
    sink: Arc<MetricsSink>,
    recorder: FlightRecorder,
    next_id: AtomicU64,
    next_group: AtomicU64,
    /// Source of generated `X-Request-Id` values for requests that did
    /// not supply a usable one.
    next_request: AtomicU64,
    accept_stop: AtomicBool,
    /// When the server was bound; drives `recopack_uptime_seconds`.
    started: Instant,
    /// Single-flight gate for `GET /debug/profile` captures.
    profiler: profile::ProfilerGate,
}

/// One NDJSON log line on stderr: `{"t_ms":...,"event":...,...}`.
struct LogLine {
    buf: String,
}

impl LogLine {
    fn new(event: &str) -> Self {
        let t_ms = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let mut buf = format!("{{\"t_ms\":{t_ms},\"event\":");
        push_json_str(&mut buf, event);
        Self { buf }
    }

    fn str(mut self, key: &str, value: &str) -> Self {
        self.buf.push(',');
        push_json_str(&mut self.buf, key);
        self.buf.push(':');
        push_json_str(&mut self.buf, value);
        self
    }

    fn num(mut self, key: &str, value: u64) -> Self {
        self.buf.push(',');
        push_json_str(&mut self.buf, key);
        use std::fmt::Write as _;
        let _ = write!(self.buf, ":{value}");
        self
    }

    fn ms(mut self, key: &str, value: f64) -> Self {
        self.buf.push(',');
        push_json_str(&mut self.buf, key);
        use std::fmt::Write as _;
        let _ = write!(self.buf, ":{value:.3}");
        self
    }

    fn emit(mut self) {
        self.buf.push('}');
        eprintln!("{}", self.buf);
    }
}

/// A running solver service: an HTTP acceptor plus a pool of solver
/// workers over one bounded job queue.
///
/// Lifecycle: [`bind`](Server::bind) starts everything,
/// [`shutdown`](Server::shutdown) begins the graceful drain (accepted jobs
/// finish, new submissions are refused), [`join`](Server::join) waits for
/// the drain and stops the acceptor. [`run_until`](Server::run_until)
/// bundles the three for the CLI.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    workers: Vec<std::thread::JoinHandle<()>>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts the worker pool and the acceptor.
    pub fn bind(config: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = ServerMetrics::new();
        let sink = Arc::new(MetricsSink::register(&metrics.registry));
        let inner = Arc::new(Inner {
            state: Mutex::new(State::default()),
            work_available: Condvar::new(),
            queue_capacity: config.queue_depth.max(1),
            max_connections: config.max_connections.max(1),
            idle_timeout: config.idle_timeout.max(Duration::from_millis(10)),
            cache: Mutex::new(SolutionCache::new(config.cache_capacity.max(1))),
            metrics,
            sink,
            recorder: FlightRecorder::new(Duration::from_millis(config.slow_job_ms)),
            next_id: AtomicU64::new(1),
            next_group: AtomicU64::new(1),
            next_request: AtomicU64::new(1),
            accept_stop: AtomicBool::new(false),
            started: Instant::now(),
            profiler: profile::ProfilerGate::default(),
        });
        let worker_count = match config.workers {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        };
        let workers = (0..worker_count)
            .map(|_| {
                let inner = inner.clone();
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        let acceptor = {
            let inner = inner.clone();
            std::thread::spawn(move || accept_loop(&inner, listener))
        };
        // Low-rate beacon sampler feeding the phase-occupancy and stall
        // gauges. Holds only a Weak so it cannot outlive the drain; the
        // thread is detached and exits within one window of the last drop.
        {
            let weak = Arc::downgrade(&inner);
            let _ = std::thread::Builder::new()
                .name("recopack-occupancy".to_string())
                .spawn(move || occupancy_sampler_loop(&weak));
        }
        LogLine::new("listening")
            .str("addr", &addr.to_string())
            .num("workers", worker_count as u64)
            .num("queue_depth", inner.queue_capacity as u64)
            .emit();
        Ok(Server {
            inner,
            addr,
            workers,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (relevant when the config asked for port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins the graceful drain: queued and running jobs finish, new
    /// submissions are refused with `503`, `/healthz` reports draining.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock().expect("state lock");
            if st.draining {
                return;
            }
            st.draining = true;
        }
        self.inner.work_available.notify_all();
        LogLine::new("shutdown").str("phase", "drain").emit();
    }

    /// Waits for the workers to drain the queue, then stops the acceptor
    /// and flushes the final metric values to the log. Call
    /// [`shutdown`](Server::shutdown) first, or this blocks until someone
    /// does.
    pub fn join(mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.inner.accept_stop.store(true, Ordering::Relaxed);
        if let Some(acceptor) = self.acceptor.take() {
            // The acceptor blocks in `accept` (no polling), so wake it
            // with one throwaway local connection; it re-checks
            // `accept_stop` on every wakeup. If the wake cannot connect
            // (exotic network config), the handle is dropped instead of
            // joined — a leaked parked thread beats a deadlocked drain.
            let mut wake = self.addr;
            if wake.ip().is_unspecified() {
                wake.set_ip(match wake.ip() {
                    std::net::IpAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                    std::net::IpAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
                });
            }
            if TcpStream::connect_timeout(&wake, Duration::from_secs(1)).is_ok() {
                let _ = acceptor.join();
            }
        }
        let exposition = self.inner.metrics.registry.render();
        LogLine::new("metrics_flushed")
            .num("bytes", exposition.len() as u64)
            .emit();
        eprint!("{exposition}");
    }

    /// Serves until `stop` becomes true (typically the flag returned by
    /// [`install_shutdown_handler`]), then drains and exits. With the
    /// signal flag this parks on the handler's self-pipe and wakes the
    /// instant a signal arrives; a foreign flag falls back to a coarse
    /// poll (see `signal::wait_for_shutdown`).
    pub fn run_until(self, stop: &AtomicBool) {
        while !stop.load(Ordering::Relaxed) {
            signal::wait_for_shutdown(stop);
        }
        self.shutdown();
        self.join();
    }
}

/// One solver worker: pop a job, run it, record the outcome — until the
/// queue is empty *and* the server is draining.
fn worker_loop(inner: &Inner) {
    loop {
        let mut st = inner.state.lock().expect("state lock");
        let id = loop {
            if let Some(id) = st.queue.pop_front() {
                break id;
            }
            if st.draining {
                return;
            }
            st = inner.work_available.wait(st).expect("state lock");
        };
        inner.metrics.queue_depth.dec();
        let job = st.jobs.get_mut(&id).expect("queued job exists");
        if !matches!(job.state, JobState::Queued) {
            // Cancelled while queued; its terminal state is already set.
            continue;
        }
        job.state = JobState::Running;
        let kind = job.kind;
        let name = job.name.clone();
        let spec = job.spec.take().expect("queued job has a spec");
        let key = job.key.clone();
        // Every member of the dedup group is now running this solve. The
        // group id identifies *this* group at publish time: if the run is
        // cancelled mid-flight the entry is retired early and a fresh
        // group may reuse the key.
        let (members, group) = st
            .inflight
            .get(&key)
            .map(|group| (group.members.clone(), group.group))
            .unwrap_or((vec![id], 0));
        let mut progresses = Vec::with_capacity(members.len());
        for &member in &members {
            if let Some(job) = st.jobs.get_mut(&member) {
                job.state = JobState::Running;
                progresses.push(job.progress.clone());
            }
        }
        let trace = st.jobs.get(&id).and_then(|job| job.trace.clone());
        let request_id = st
            .jobs
            .get(&id)
            .map(|job| job.request_id.clone())
            .unwrap_or_default();
        drop(st);

        for progress in &progresses {
            progress.mark_started();
        }
        // One queue-wait sample per solver run (the driver's); joined
        // members waited on the same slot.
        if let Some(driver) = progresses.first() {
            inner.metrics.queue_wait.observe(driver.split().0);
        }
        inner.metrics.in_flight.inc();
        LogLine::new("job_started")
            .num("job", id)
            .str("kind", kind.name())
            .str("request_id", &request_id)
            .num("subscribers", members.len().max(1) as u64)
            .emit();
        let started = Instant::now();
        let finished = run_job(kind, &name, &spec);
        let wall = started.elapsed();
        inner.metrics.in_flight.dec();
        inner.metrics.solve.observe(wall.as_secs_f64());
        inner.metrics.nodes.observe(finished.nodes as f64);
        LogLine::new("job_finished")
            .num("job", id)
            .str("kind", kind.name())
            .str("request_id", &request_id)
            .str("status", finished.status)
            .str("outcome", &finished.outcome)
            .ms("wall_ms", wall.as_secs_f64() * 1000.0)
            .num("nodes", finished.nodes)
            .emit();

        // Re-index the placement from the driver's task order into
        // canonical positions: subscribers (and future cache hits) carry
        // their own task names and render their own `place` lines.
        let canon_placement = finished.placement.as_ref().map(|origins| {
            let mut canon = vec![[0u64; 3]; origins.len()];
            for (v, origin) in origins.iter().enumerate() {
                canon[spec.rank[v] as usize] = *origin;
            }
            canon
        });

        // Fill the cache *before* publishing the finished state: any
        // client that observes the job as done is then guaranteed that an
        // identical resubmission hits.
        if finished.cacheable {
            let mut cache = inner.cache.lock().expect("cache lock");
            cache.insert(
                key.clone(),
                CachedSolution {
                    status: finished.status,
                    outcome: finished.outcome.clone(),
                    report: finished.report.clone(),
                    placement: canon_placement.clone(),
                },
            );
            inner.metrics.cache_entries.set(cache.len() as i64);
        }

        let mut st = inner.state.lock().expect("state lock");
        // Retire the in-flight entry only if it is still *our* group: a
        // cancel of the last member mid-run removes it early, and an
        // identical submission may have installed a successor group under
        // the same key since — that one must keep running undisturbed.
        let members = if st.inflight.get(&key).is_some_and(|g| g.group == group) {
            st.inflight.remove(&key).expect("checked above").members
        } else {
            members
        };
        let mut published = Vec::with_capacity(members.len());
        for &member in &members {
            let Some(job) = st.jobs.get_mut(&member) else {
                continue;
            };
            if matches!(job.state, JobState::Finished { .. }) {
                continue;
            }
            job.state = JobState::Finished {
                status: finished.status,
                outcome: finished.outcome.clone(),
                report: finished.report.clone(),
                placement: canon_placement
                    .as_ref()
                    .map(|origins| render_placement(origins, &job.task_names, &job.rank)),
            };
            published.push((
                member,
                job.name.clone(),
                job.request_id.clone(),
                job.progress.clone(),
            ));
            retire_job(&mut st, member);
            match finished.status {
                "cancelled" => inner.metrics.cancelled[kind.index()].inc(),
                "failed" => inner.metrics.failed[kind.index()].inc(),
                _ => inner.metrics.completed[kind.index()].inc(),
            }
        }
        drop(st);

        for (member, member_name, member_request, progress) in published {
            progress.mark_finished();
            let (queue_wait, solve) = progress.split();
            let slow = inner.recorder.record(JobSummary {
                id: member,
                kind: kind.name(),
                name: member_name,
                status: finished.status,
                outcome: finished.outcome.clone(),
                via: if member == id { "run" } else { "shared" },
                request_id: member_request.clone(),
                queue_wait_ms: queue_wait * 1000.0,
                solve_ms: solve * 1000.0,
                nodes: finished.nodes,
            });
            if slow {
                LogLine::new("job_slow")
                    .num("job", member)
                    .str("kind", kind.name())
                    .str("request_id", &member_request)
                    .ms("solve_ms", solve * 1000.0)
                    .num("nodes", finished.nodes)
                    .emit();
            }
        }
        // Close the event stream only after the terminal state is
        // published: subscriber loops drain once more after observing a
        // terminal status, so every recorded event is delivered.
        if let Some(trace) = trace {
            trace.close();
        }
    }
}

/// Renders the `place` lines of a name-free canonical placement with one
/// job's own task names: task `v` gets the box at canonical position
/// `rank[v]`. Byte-identical to `format::format_placement` for the
/// submission whose solve produced the placement.
fn render_placement(origins: &[[u64; 3]], task_names: &[String], rank: &[u32]) -> String {
    let mut out = String::new();
    for (v, name) in task_names.iter().enumerate() {
        let [x, y, t] = origins[rank[v] as usize];
        use std::fmt::Write as _;
        let _ = writeln!(out, "place {name} {x} {y} {t}");
    }
    out
}

/// Terminal result of one executed job.
struct FinishedJob {
    status: &'static str,
    outcome: String,
    report: Option<String>,
    /// Box origins in the task-index order of the solved instance; the
    /// worker re-indexes them into canonical positions before caching or
    /// publishing, so every subscriber renders its own task names.
    placement: Option<Vec<[u64; 3]>>,
    nodes: u64,
    /// Whether the result is deterministic and complete — a real verdict,
    /// not a budget exhaustion or cancellation — and thus safe to memoize
    /// for identical future submissions.
    cacheable: bool,
}

/// Runs one job to completion on the calling worker thread.
fn run_job(kind: JobKind, name: &str, spec: &JobSpec) -> FinishedJob {
    let started = Instant::now();
    let threads = spec.config.threads;
    let report_for = |outcome: &str, decisions: u32, stats: &SolverStats| {
        let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
        let per_sec = |count: u64| per_second(count, wall_ms);
        SolveReport {
            command: kind.name().to_string(),
            instance: name.to_string(),
            outcome: outcome.to_string(),
            threads,
            decisions,
            wall_ms,
            nodes_per_sec: per_sec(stats.nodes),
            propagation_events_per_sec: per_sec(stats.propagation_events),
            stats: stats.clone(),
            events: None,
            journal_dropped: None,
        }
        .to_json()
    };
    match kind {
        JobKind::Opp => {
            let (outcome, stats) = Opp::new(&spec.instance)
                .with_config(spec.config.clone())
                .solve_with_stats();
            let label = match &outcome {
                SolveOutcome::Feasible(_) => "feasible".to_string(),
                SolveOutcome::Infeasible(_) => "infeasible".to_string(),
                SolveOutcome::ResourceLimit(LimitKind::Cancelled) => "cancelled".to_string(),
                SolveOutcome::ResourceLimit(limit) => format!("{limit} reached"),
            };
            let status = match &outcome {
                SolveOutcome::ResourceLimit(LimitKind::Cancelled) => "cancelled",
                _ => "done",
            };
            let placement = outcome.placement().map(placement_origins);
            let cacheable = matches!(
                outcome,
                SolveOutcome::Feasible(_) | SolveOutcome::Infeasible(_)
            );
            FinishedJob {
                status,
                report: Some(report_for(&label, 1, &stats)),
                outcome: label,
                placement,
                nodes: stats.nodes,
                cacheable,
            }
        }
        JobKind::Bmp => match Bmp::new(&spec.instance)
            .with_config(spec.config.clone())
            .solve()
        {
            Some(result) => {
                let label = format!("side {}", result.side);
                FinishedJob {
                    status: "done",
                    report: Some(report_for(&label, result.decisions, &result.stats)),
                    outcome: label,
                    placement: Some(placement_origins(&result.placement)),
                    nodes: result.stats.nodes,
                    cacheable: true,
                }
            }
            None => unresolved(
                &spec.config.cancel,
                "no chip admits the deadline or a budget ran out",
            ),
        },
        JobKind::Spp => match Spp::new(&spec.instance)
            .with_config(spec.config.clone())
            .solve()
        {
            Some(result) => {
                let label = format!("makespan {}", result.makespan);
                FinishedJob {
                    status: "done",
                    report: Some(report_for(&label, result.decisions, &result.stats)),
                    outcome: label,
                    placement: Some(placement_origins(&result.placement)),
                    nodes: result.stats.nodes,
                    cacheable: true,
                }
            }
            None => unresolved(
                &spec.config.cancel,
                "no horizon fits the chip spatially or a budget ran out",
            ),
        },
        JobKind::Pareto => match pareto_front_with_stats(&spec.instance, &spec.config) {
            Some((front, stats, decisions)) => {
                let label = format!("{} pareto points", front.len());
                FinishedJob {
                    status: "done",
                    report: Some(report_for(&label, decisions, &stats)),
                    outcome: label,
                    placement: None,
                    nodes: stats.nodes,
                    cacheable: true,
                }
            }
            None => unresolved(&spec.config.cancel, "a budget ran out during the sweep"),
        },
    }
}

/// The box origins of a placement, in the task-index order of the solved
/// instance.
fn placement_origins(placement: &Placement) -> Vec<[u64; 3]> {
    placement.boxes().iter().map(|b| b.origin).collect()
}

/// An optimization solver returned no result: either our cancellation hook
/// fired, or the goal is unreachable within the budgets.
fn unresolved(cancel: &CancelToken, message: &str) -> FinishedJob {
    if cancel.is_cancelled() {
        FinishedJob {
            status: "cancelled",
            outcome: "cancelled".to_string(),
            report: None,
            placement: None,
            nodes: 0,
            cacheable: false,
        }
    } else {
        FinishedJob {
            status: "failed",
            outcome: message.to_string(),
            report: None,
            placement: None,
            nodes: 0,
            cacheable: false,
        }
    }
}

/// Accepts connections until told to stop; each connection is handled on
/// its own thread so a slow client cannot stall the health or metrics
/// endpoints. The accept is *blocking* — an idle server sleeps in the
/// kernel and a new connection is dispatched immediately, instead of the
/// old nonblocking poll that added up to 20 ms of latency per request.
/// [`Server::join`] unblocks a parked accept with a wake connection.
fn accept_loop(inner: &Arc<Inner>, listener: TcpListener) {
    loop {
        if inner.accept_stop.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                if inner.accept_stop.load(Ordering::Relaxed) {
                    // The wake connection from `join`; drop it and exit.
                    return;
                }
                if inner.metrics.connections_open.get() >= inner.max_connections as i64 {
                    // Over the connection budget: answer once and close,
                    // briefly, on the acceptor thread itself.
                    inner.metrics.connections_rejected.inc();
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    http::respond(
                        &mut stream,
                        503,
                        "application/json",
                        &error_body("connection limit reached"),
                        false,
                    );
                    continue;
                }
                inner.metrics.connections_total.inc();
                inner.metrics.connections_open.inc();
                let inner = inner.clone();
                std::thread::spawn(move || {
                    handle_connection(&inner, stream);
                    inner.metrics.connections_open.dec();
                });
            }
            // Transient accept failures (connection reset in the backlog,
            // fd exhaustion): back off briefly instead of spinning.
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Serves one connection: a keep-alive request loop that ends when the
/// peer closes, the negotiated semantics say close, the idle timeout
/// expires, or a protocol error leaves the stream unframed.
fn handle_connection(inner: &Inner, stream: TcpStream) {
    const JSON: &str = "application/json";
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(inner.idle_timeout));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut conn = http::Conn::new(stream);
    loop {
        match conn.read_next() {
            http::Next::Closed => return,
            http::Next::Error {
                status,
                message,
                keep_alive,
            } => {
                conn.respond(status, JSON, &error_body(&message), keep_alive, None);
                LogLine::new("request_error")
                    .num("status", u64::from(status))
                    .str("error", &message)
                    .emit();
                if !keep_alive {
                    return;
                }
            }
            http::Next::Request(request) => {
                let started = Instant::now();
                let request_id = request_id_for(inner, request.request_id.as_deref());
                // `GET /jobs/{id}/events` streams a chunked response and
                // owns the connection until the job is terminal; all other
                // routes produce one framed body.
                let events_target = (request.method == "GET")
                    .then(|| {
                        request
                            .path
                            .strip_prefix("/jobs/")
                            .and_then(|rest| rest.strip_suffix("/events"))
                            .and_then(|id| id.parse::<u64>().ok())
                    })
                    .flatten();
                let status = match events_target {
                    Some(job_id) => {
                        stream_job_events(inner, &mut conn, job_id, request.keep_alive, &request_id)
                    }
                    // `/debug/profile` also owns the connection (the capture
                    // takes seconds; the result streams as chunks), and it
                    // carries a query string, which the exact-match router
                    // does not parse.
                    None if request.method == "GET" && is_profile_path(&request.path) => {
                        serve_profile(
                            inner,
                            &mut conn,
                            &request.path,
                            request.keep_alive,
                            &request_id,
                        )
                    }
                    None => {
                        let (status, content_type, body) = route(inner, &request, &request_id);
                        conn.respond(
                            status,
                            content_type,
                            &body,
                            request.keep_alive,
                            Some(&request_id),
                        );
                        status
                    }
                };
                inner
                    .metrics
                    .request_seconds
                    .observe(started.elapsed().as_secs_f64());
                LogLine::new("request")
                    .str("method", &request.method)
                    .str("path", &request.path)
                    .str("request_id", &request_id)
                    .num("status", u64::from(status))
                    .emit();
                if !request.keep_alive {
                    return;
                }
            }
        }
    }
}

/// The correlation id for one request: the client's `X-Request-Id` when it
/// is well-formed (1–64 characters from `[A-Za-z0-9._:-]`), otherwise a
/// generated `req-{n}`. The id is echoed on the response, attached to the
/// job record, and stamped on every related log line.
fn request_id_for(inner: &Inner, supplied: Option<&str>) -> String {
    match supplied {
        Some(id)
            if !id.is_empty()
                && id.len() <= 64
                && id.bytes().all(|b| {
                    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b':')
                }) =>
        {
            id.to_string()
        }
        _ => format!("req-{}", inner.next_request.fetch_add(1, Ordering::Relaxed)),
    }
}

/// Serves `GET /jobs/{id}/events`: subscribes to the job's event stream
/// and writes NDJSON chunks until the job reaches a terminal state, then
/// appends one `{"event":"end",...}` record (carrying the subscriber's
/// `dropped` count) and terminates the chunked body — the keep-alive
/// connection survives for the next request. Returns the response status
/// for the access log.
fn stream_job_events(
    inner: &Inner,
    conn: &mut http::Conn<TcpStream>,
    id: u64,
    keep_alive: bool,
    request_id: &str,
) -> u16 {
    const JSON: &str = "application/json";
    let stream = {
        let st = inner.state.lock().expect("state lock");
        match st.jobs.get(&id) {
            None => Err((404, error_body("no such job"))),
            Some(job) => match &job.trace {
                Some(stream) => Ok(stream.clone()),
                None => Err((
                    409,
                    error_body("job was not submitted with \"trace\": true"),
                )),
            },
        }
    };
    let stream = match stream {
        Ok(stream) => stream,
        Err((status, body)) => {
            conn.respond(status, JSON, &body, keep_alive, Some(request_id));
            return status;
        }
    };
    let subscriber = stream.subscribe();
    if !conn.start_stream(200, "application/x-ndjson", keep_alive, request_id) {
        stream.unsubscribe(&subscriber);
        return 200;
    }
    loop {
        let lines = subscriber.drain(Duration::from_millis(25));
        if !lines.is_empty() {
            let mut chunk = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
            for line in &lines {
                chunk.push_str(line);
                chunk.push('\n');
            }
            if !conn.write_chunk(&chunk) {
                break;
            }
        }
        let terminal = {
            let st = inner.state.lock().expect("state lock");
            match st.jobs.get(&id) {
                None => Some("evicted"),
                Some(job) => match &job.state {
                    JobState::Finished { status, .. } => Some(*status),
                    _ => None,
                },
            }
        };
        if let Some(status) = terminal {
            // Events are recorded strictly before the terminal state is
            // published, so one final drain delivers everything.
            let mut tail = String::new();
            for line in subscriber.drain(Duration::ZERO) {
                tail.push_str(&line);
                tail.push('\n');
            }
            use std::fmt::Write as _;
            let _ = writeln!(
                tail,
                "{{\"event\":\"end\",\"job\":{id},\"status\":\"{status}\",\"dropped\":{}}}",
                subscriber.dropped()
            );
            let _ = conn.write_chunk(&tail);
            let _ = conn.end_stream();
            break;
        }
    }
    stream.unsubscribe(&subscriber);
    200
}

fn error_body(message: &str) -> String {
    let mut body = String::from("{\"error\":");
    push_json_str(&mut body, message);
    body.push('}');
    body
}

/// Whether a raw request path (query string included) addresses the
/// on-demand profiler endpoint.
fn is_profile_path(path: &str) -> bool {
    path == "/debug/profile" || path.starts_with("/debug/profile?")
}

/// Serves `GET /debug/profile[?seconds=N&hz=H&format=folded|json]`: runs —
/// or joins — an on-demand sampling capture of every live solver worker's
/// activity beacon, then streams folded stacks (default) or a JSON summary
/// over the chunked machinery. The capture blocks this connection for
/// `seconds` of wall clock (capped at [`profile::MAX_PROFILE_SECONDS`]);
/// a concurrent request with different parameters receives `409`. Returns
/// the response status for the access log.
fn serve_profile(
    inner: &Inner,
    conn: &mut http::Conn<TcpStream>,
    path: &str,
    keep_alive: bool,
    request_id: &str,
) -> u16 {
    const JSON: &str = "application/json";
    let query = path.split_once('?').map(|(_, q)| q).unwrap_or("");
    let params = match profile::ProfileParams::parse(query) {
        Ok(params) => params,
        Err(message) => {
            conn.respond(
                400,
                JSON,
                &error_body(&message),
                keep_alive,
                Some(request_id),
            );
            return 400;
        }
    };
    let (joined, captured) = match inner.profiler.run(params) {
        profile::ProfileOutcome::Captured(p) => (false, p),
        profile::ProfileOutcome::Joined(p) => (true, p),
        profile::ProfileOutcome::Busy { seconds, hz } => {
            let message = format!(
                "a profile capture with different parameters is in flight \
                 (seconds={seconds}, hz={hz}); join it with matching \
                 parameters or retry after it finishes"
            );
            conn.respond(
                409,
                JSON,
                &error_body(&message),
                keep_alive,
                Some(request_id),
            );
            return 409;
        }
        profile::ProfileOutcome::TimedOut => {
            let message = "joined capture never published a result";
            conn.respond(
                503,
                JSON,
                &error_body(message),
                keep_alive,
                Some(request_id),
            );
            return 503;
        }
    };
    let (content_type, body) = if params.json {
        (JSON, captured.to_json())
    } else {
        ("text/plain; charset=utf-8", captured.to_folded())
    };
    if conn.start_stream(200, content_type, keep_alive, request_id) {
        let _ = conn.write_chunk(&body);
        let _ = conn.end_stream();
    }
    LogLine::new("profile_captured")
        .str("request_id", request_id)
        .num("seconds", params.seconds)
        .num("hz", params.hz)
        .num("samples", captured.samples)
        .num("stacks", captured.stacks.len() as u64)
        .num("joined", u64::from(joined))
        .emit();
    200
}

/// The always-on low-rate sampler behind the phase-occupancy gauges: reads
/// every worker beacon ~13 times a second (77 ms — deliberately off the
/// 97 Hz on-demand profiler cadence), folds each ~2 s window into a
/// [`Profile`](recopack_core::Profile), and refreshes
/// `recopack_worker_phase_occupancy`, `recopack_workers_stalled`, and
/// `recopack_uptime_seconds`. Holds only a `Weak<Inner>` and exits within
/// one window of the server being dropped.
fn occupancy_sampler_loop(inner: &std::sync::Weak<Inner>) {
    const TICK: Duration = Duration::from_millis(77);
    const WINDOW_TICKS: u32 = 26;
    // ~1 s of unchanged beacon while non-idle counts as stalled.
    const STALL_SAMPLES: u32 = 13;
    let mut snapshot = Vec::new();
    loop {
        let mut builder = ProfileBuilder::new(13).with_stall_threshold(STALL_SAMPLES);
        for _ in 0..WINDOW_TICKS {
            std::thread::sleep(TICK);
            beacon::global_registry().snapshot(&mut snapshot);
            builder.observe(&snapshot);
        }
        let Some(inner) = inner.upgrade() else { return };
        let window = builder.finish();
        for (phase, gauge) in BeaconPhase::ALL.iter().zip(&inner.metrics.phase_occupancy) {
            gauge.set((window.occupancy(*phase) * 100.0).round() as i64);
        }
        inner
            .metrics
            .workers_stalled
            .set(window.stalled_workers.len() as i64);
        inner
            .metrics
            .uptime
            .set(inner.started.elapsed().as_secs() as i64);
    }
}

fn route(inner: &Inner, request: &http::Request, request_id: &str) -> (u16, &'static str, String) {
    const JSON: &str = "application/json";
    const PROMETHEUS: &str = "text/plain; version=0.0.4; charset=utf-8";
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let (status, body) = healthz(inner);
            (status, JSON, body)
        }
        ("GET", "/metrics") => {
            inner
                .metrics
                .uptime
                .set(inner.started.elapsed().as_secs() as i64);
            (200, PROMETHEUS, inner.metrics.registry.render())
        }
        ("GET", "/debug/jobs") => (200, JSON, inner.recorder.to_json()),
        // GETs on `/debug/profile` never reach the router (they stream from
        // `handle_connection`); anything else on the path is a method error.
        (_, path) if is_profile_path(path) => (405, JSON, error_body("method not allowed")),
        ("POST", "/jobs") => {
            let (status, body) = submit(inner, &request.body, request_id);
            (status, JSON, body)
        }
        ("POST", "/jobs:batch") => {
            let (status, body) = submit_batch(inner, &request.body, request_id);
            (status, JSON, body)
        }
        ("GET", "/jobs") => (200, JSON, list_jobs(inner)),
        (method, path) => match path.strip_prefix("/jobs/") {
            Some(rest) => {
                // Sub-resources first: `{id}/progress` here, `{id}/events`
                // in `handle_connection` (it needs the raw connection).
                if let Some(id_text) = rest.strip_suffix("/progress") {
                    match id_text.parse::<u64>() {
                        Ok(id) if method == "GET" => {
                            let (status, body) = job_progress(inner, id);
                            (status, JSON, body)
                        }
                        Ok(_) => (405, JSON, error_body("method not allowed")),
                        Err(_) => (404, JSON, error_body("job ids are integers")),
                    }
                } else if rest
                    .strip_suffix("/events")
                    .is_some_and(|id| id.parse::<u64>().is_ok())
                {
                    // A non-GET on an events sub-resource (GETs never
                    // reach the router).
                    (405, JSON, error_body("method not allowed"))
                } else {
                    match rest.parse::<u64>() {
                        Ok(id) => match method {
                            "GET" => {
                                let (status, body) = job_status(inner, id);
                                (status, JSON, body)
                            }
                            "DELETE" => {
                                let (status, body) = cancel_job(inner, id);
                                (status, JSON, body)
                            }
                            _ => (405, JSON, error_body("method not allowed")),
                        },
                        Err(_) => (404, JSON, error_body("job ids are integers")),
                    }
                }
            }
            None => (404, JSON, error_body("not found")),
        },
    }
}

/// Serves `GET /jobs/{id}/progress`: the live snapshot of one job's
/// solver counters and phase timings, at any lifecycle stage.
fn job_progress(inner: &Inner, id: u64) -> (u16, String) {
    let st = inner.state.lock().expect("state lock");
    match st.jobs.get(&id) {
        Some(job) => {
            let status = match &job.state {
                JobState::Queued => "queued",
                JobState::Running => "running",
                JobState::Finished { status, .. } => status,
            };
            (
                200,
                job.progress
                    .to_json(id, status, &job.request_id, job.trace.as_deref()),
            )
        }
        None => (404, error_body("no such job")),
    }
}

fn healthz(inner: &Inner) -> (u16, String) {
    let (depth, draining) = {
        let st = inner.state.lock().expect("state lock");
        (st.queue.len(), st.draining)
    };
    let capacity = inner.queue_capacity;
    let in_flight = inner.metrics.in_flight.get();
    let status_word = if draining {
        "draining"
    } else if depth >= capacity {
        "saturated"
    } else {
        "ok"
    };
    let code = if status_word == "ok" { 200 } else { 503 };
    let version = env!("CARGO_PKG_VERSION");
    let body = format!(
        "{{\"status\":\"{status_word}\",\"version\":\"{version}\",\
         \"queue_depth\":{depth},\
         \"queue_capacity\":{capacity},\"in_flight\":{in_flight}}}"
    );
    (code, body)
}

/// Records a refused submission in metrics and the log, and returns the
/// HTTP status plus a plain reason for the caller to package.
fn reject(inner: &Inner, kind_index: usize, status: u16, reason: &str) -> (u16, String) {
    inner.metrics.rejected[kind_index].inc();
    LogLine::new("job_rejected")
        .str("kind", REJECT_KINDS[kind_index])
        .str("reason", reason)
        .emit();
    (status, reason.to_string())
}

/// Handles `POST /jobs`: validate, admission-control, enqueue.
fn submit(inner: &Inner, body: &str, request_id: &str) -> (u16, String) {
    let doc = match Json::parse(body) {
        Ok(doc) => doc,
        Err(e) => {
            let (status, reason) = reject(
                inner,
                REJECT_UNKNOWN,
                400,
                &format!("malformed JSON body: {e}"),
            );
            return (status, error_body(&reason));
        }
    };
    match submit_doc(inner, &doc, request_id) {
        Ok((id, status_word)) => (202, format!("{{\"id\":{id},\"status\":\"{status_word}\"}}")),
        Err((status, reason)) => (status, error_body(&reason)),
    }
}

/// Largest accepted `POST /jobs:batch` array.
const MAX_BATCH_ITEMS: usize = 64;

/// Handles `POST /jobs:batch`: an array of job objects (bare, or under a
/// `jobs` key), admitted independently. The response carries one entry per
/// item, in order — an `{"id":..,"status":..}` on admission or a
/// `{"status":"rejected","code":..,"error":..}` on refusal — so one bad or
/// over-quota item never poisons the rest of the batch.
fn submit_batch(inner: &Inner, body: &str, request_id: &str) -> (u16, String) {
    let doc = match Json::parse(body) {
        Ok(doc) => doc,
        Err(e) => {
            let (status, reason) = reject(
                inner,
                REJECT_UNKNOWN,
                400,
                &format!("malformed JSON body: {e}"),
            );
            return (status, error_body(&reason));
        }
    };
    let items = match doc
        .as_array()
        .or_else(|| doc.get("jobs").and_then(Json::as_array))
    {
        Some(items) if !items.is_empty() => items,
        _ => {
            let (status, reason) = reject(
                inner,
                REJECT_UNKNOWN,
                400,
                "batch body must be a non-empty JSON array of job objects (or {\"jobs\":[...]})",
            );
            return (status, error_body(&reason));
        }
    };
    if items.len() > MAX_BATCH_ITEMS {
        let (status, reason) = reject(
            inner,
            REJECT_UNKNOWN,
            400,
            &format!(
                "batch of {} exceeds the limit of {MAX_BATCH_ITEMS}",
                items.len()
            ),
        );
        return (status, error_body(&reason));
    }
    let mut body = String::from("{\"jobs\":[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        match submit_doc(inner, item, request_id) {
            Ok((id, status_word)) => {
                use std::fmt::Write as _;
                let _ = write!(body, "{{\"id\":{id},\"status\":\"{status_word}\"}}");
            }
            Err((code, reason)) => {
                use std::fmt::Write as _;
                let _ = write!(body, "{{\"status\":\"rejected\",\"code\":{code},\"error\":");
                push_json_str(&mut body, &reason);
                body.push('}');
            }
        }
    }
    body.push_str("]}");
    (200, body)
}

/// Admits one job document: validate, consult the solution cache, attach
/// to an identical in-flight run, or enqueue a fresh solve. Returns the
/// job id and its initial status word (`queued`, or `done` on a cache
/// hit), or the refusal status and reason.
fn submit_doc(
    inner: &Inner,
    doc: &Json,
    request_id: &str,
) -> Result<(u64, &'static str), (u16, String)> {
    let Some(kind_name) = doc.get("kind").and_then(Json::as_str) else {
        return Err(reject(
            inner,
            REJECT_UNKNOWN,
            400,
            "missing \"kind\" (opp|bmp|spp|pareto)",
        ));
    };
    let Some(kind) = JobKind::parse(kind_name) else {
        return Err(reject(
            inner,
            REJECT_UNKNOWN,
            400,
            &format!("unknown kind {kind_name:?}"),
        ));
    };
    let Some(instance_text) = doc.get("instance").and_then(Json::as_str) else {
        return Err(reject(
            inner,
            kind.index(),
            400,
            "missing \"instance\" text",
        ));
    };
    let instance = match format::parse_instance(instance_text) {
        Ok(instance) => instance,
        Err(e) => {
            return Err(reject(
                inner,
                kind.index(),
                400,
                &format!("bad instance: {e}"),
            ));
        }
    };
    let instance = if doc
        .get("no_precedence")
        .and_then(Json::as_bool)
        .unwrap_or(false)
    {
        instance.without_precedence()
    } else {
        instance.with_transitive_closure()
    };
    let cancel = CancelToken::new();
    // Every run reports live progress; the raw event stream is opt-in so
    // untraced jobs never serialize an event (pay-for-what-you-use).
    let traced = doc.get("trace").and_then(Json::as_bool).unwrap_or(false);
    let counters = Arc::new(ProgressCounters::new());
    let stream = traced.then(|| Arc::new(EventStream::new()));
    let mut sinks: Vec<Arc<dyn TelemetrySink>> = vec![inner.sink.clone(), counters.clone()];
    if let Some(stream) = &stream {
        sinks.push(stream.clone());
    }
    let config = SolverConfig {
        threads: doc.get("threads").and_then(Json::as_u64).unwrap_or(1) as usize,
        use_bounds: doc
            .get("use_bounds")
            .and_then(Json::as_bool)
            .unwrap_or(true),
        use_heuristics: doc
            .get("use_heuristics")
            .and_then(Json::as_bool)
            .unwrap_or(true),
        node_limit: doc.get("node_limit").and_then(Json::as_u64),
        time_limit: doc
            .get("time_limit_ms")
            .and_then(Json::as_u64)
            .map(Duration::from_millis),
        telemetry: Telemetry::to(Arc::new(Fanout::new(sinks))),
        cancel: cancel.clone(),
        ..SolverConfig::default()
    };
    let canon_started = Instant::now();
    let canon = cache::canonical_form(&instance);
    inner
        .metrics
        .canon_seconds
        .observe(canon_started.elapsed().as_secs_f64());
    let mut key = cache::cache_key(kind.name(), &canon.text, &config);
    if traced {
        // Traced and untraced runs must not share a cache/dedup identity:
        // a traced submission joining an untraced run would have no stream
        // to serve.
        key.push_str("|traced");
    }
    let task_names: Vec<String> = instance
        .tasks()
        .iter()
        .map(|t| t.name().to_string())
        .collect();
    let name_for = |id: u64| {
        doc.get("name")
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| format!("job-{id}"))
    };

    // 1. Replay a memoized solution: the job is born finished, carrying
    //    the byte-identical report of the original run and the cached
    //    placement rendered with *this* submission's task names (the key
    //    is relabeling-invariant, so the original names may differ).
    let hit = inner.cache.lock().expect("cache lock").get(&key);
    if let Some(hit) = hit {
        let mut st = inner.state.lock().expect("state lock");
        if st.draining {
            return Err(reject(inner, kind.index(), 503, "server is draining"));
        }
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let name = name_for(id);
        let placement = hit
            .placement
            .as_ref()
            .map(|origins| render_placement(origins, &task_names, &canon.rank));
        let progress = Arc::new(JobProgress::new(counters));
        progress.mark_finished();
        if let Some(stream) = &stream {
            // Born finished: a subscriber gets an immediate end record.
            stream.close();
        }
        let outcome = hit.outcome.clone();
        st.jobs.insert(
            id,
            Job {
                kind,
                name: name.clone(),
                state: JobState::Finished {
                    status: hit.status,
                    outcome: hit.outcome,
                    report: hit.report,
                    placement,
                },
                spec: None,
                key,
                task_names,
                rank: canon.rank,
                request_id: request_id.to_string(),
                progress: progress.clone(),
                trace: stream,
            },
        );
        retire_job(&mut st, id);
        drop(st);
        let (queue_wait, solve) = progress.split();
        inner.recorder.record(JobSummary {
            id,
            kind: kind.name(),
            name: name.clone(),
            status: hit.status,
            outcome,
            via: "cache",
            request_id: request_id.to_string(),
            queue_wait_ms: queue_wait * 1000.0,
            solve_ms: solve * 1000.0,
            nodes: 0,
        });
        inner.metrics.cache_hits.inc();
        inner.metrics.accepted[kind.index()].inc();
        inner.metrics.completed[kind.index()].inc();
        LogLine::new("job_cached")
            .num("job", id)
            .str("kind", kind.name())
            .str("name", &name)
            .str("request_id", request_id)
            .emit();
        return Ok((id, "done"));
    }

    let mut st = inner.state.lock().expect("state lock");
    if st.draining {
        return Err(reject(inner, kind.index(), 503, "server is draining"));
    }

    // 2. Attach to an identical run already in flight: no queue slot, no
    //    second solver run — the driver publishes to every subscriber.
    //    Never join a group whose cancel token has already fired: the
    //    joiner would inherit a `cancelled` verdict for a run it never
    //    asked to cancel. Every cancel path retires the entry in the same
    //    critical section that fires the token, so a stale entry here is a
    //    defect — drop it and start fresh.
    if st
        .inflight
        .get(&key)
        .is_some_and(|group| group.cancel.is_cancelled())
    {
        st.inflight.remove(&key);
    }
    if st.inflight.contains_key(&key) {
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let name = name_for(id);
        let driver = st.inflight[&key].members[0];
        let (state, driver_progress, driver_trace) = match st.jobs.get(&driver) {
            Some(job) => (
                if matches!(job.state, JobState::Running) {
                    JobState::Running
                } else {
                    JobState::Queued
                },
                Some(job.progress.clone()),
                job.trace.clone(),
            ),
            None => (JobState::Queued, None, None),
        };
        // A joiner reads the shared run's live counters but keeps its own
        // lifecycle timing: it waited in no queue of its own, and a join
        // onto a running group starts its solve phase immediately.
        let progress = Arc::new(JobProgress::new(
            driver_progress
                .map(|p| p.counters().clone())
                .unwrap_or_else(|| Arc::new(ProgressCounters::new())),
        ));
        if matches!(state, JobState::Running) {
            progress.mark_started();
        }
        st.inflight
            .get_mut(&key)
            .expect("group checked above")
            .members
            .push(id);
        st.jobs.insert(
            id,
            Job {
                kind,
                name: name.clone(),
                state,
                spec: None,
                key,
                task_names,
                rank: canon.rank,
                request_id: request_id.to_string(),
                progress,
                trace: driver_trace,
            },
        );
        drop(st);
        inner.metrics.dedup_joins.inc();
        inner.metrics.accepted[kind.index()].inc();
        LogLine::new("job_joined")
            .num("job", id)
            .str("kind", kind.name())
            .str("name", &name)
            .str("request_id", request_id)
            .emit();
        return Ok((id, "queued"));
    }

    // 3. Fresh work: admission-control against the bounded queue.
    if st.queue.len() >= inner.queue_capacity {
        return Err(reject(inner, kind.index(), 503, "queue full"));
    }
    let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
    let name = name_for(id);
    st.jobs.insert(
        id,
        Job {
            kind,
            name: name.clone(),
            state: JobState::Queued,
            spec: Some(JobSpec {
                instance,
                config,
                rank: canon.rank.clone(),
            }),
            key: key.clone(),
            task_names,
            rank: canon.rank,
            request_id: request_id.to_string(),
            progress: Arc::new(JobProgress::new(counters)),
            trace: stream,
        },
    );
    st.inflight.insert(
        key,
        InFlight {
            members: vec![id],
            cancel,
            group: inner.next_group.fetch_add(1, Ordering::Relaxed),
        },
    );
    st.queue.push_back(id);
    drop(st);
    inner.metrics.queue_depth.inc();
    inner.metrics.cache_misses.inc();
    inner.metrics.accepted[kind.index()].inc();
    inner.work_available.notify_one();
    LogLine::new("job_accepted")
        .num("job", id)
        .str("kind", kind.name())
        .str("name", &name)
        .str("request_id", request_id)
        .emit();
    Ok((id, "queued"))
}

fn job_json(id: u64, job: &Job) -> String {
    let mut body = format!("{{\"id\":{id},\"kind\":");
    push_json_str(&mut body, job.kind.name());
    body.push_str(",\"name\":");
    push_json_str(&mut body, &job.name);
    body.push_str(",\"request_id\":");
    push_json_str(&mut body, &job.request_id);
    body.push_str(",\"status\":");
    match &job.state {
        JobState::Queued => body.push_str("\"queued\"}"),
        JobState::Running => body.push_str("\"running\"}"),
        JobState::Finished {
            status,
            outcome,
            report,
            placement,
        } => {
            push_json_str(&mut body, status);
            body.push_str(",\"outcome\":");
            push_json_str(&mut body, outcome);
            body.push_str(",\"report\":");
            match report {
                Some(report) => body.push_str(report),
                None => body.push_str("null"),
            }
            body.push_str(",\"placement\":");
            match placement {
                Some(placement) => push_json_str(&mut body, placement),
                None => body.push_str("null"),
            }
            body.push('}');
        }
    }
    body
}

fn job_status(inner: &Inner, id: u64) -> (u16, String) {
    let st = inner.state.lock().expect("state lock");
    match st.jobs.get(&id) {
        Some(job) => (200, job_json(id, job)),
        None => (404, error_body("no such job")),
    }
}

fn list_jobs(inner: &Inner) -> String {
    let st = inner.state.lock().expect("state lock");
    let mut ids: Vec<u64> = st.jobs.keys().copied().collect();
    ids.sort_unstable();
    let mut body = String::from("{\"jobs\":[");
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&job_json(*id, &st.jobs[id]));
    }
    body.push_str("]}");
    body
}

fn cancel_job(inner: &Inner, id: u64) -> (u16, String) {
    enum Snapshot {
        NotFound,
        Queued(JobKind),
        Running(JobKind),
        Finished(&'static str),
    }
    let mut st = inner.state.lock().expect("state lock");
    let snapshot = match st.jobs.get(&id) {
        None => Snapshot::NotFound,
        Some(job) => match &job.state {
            JobState::Queued => Snapshot::Queued(job.kind),
            JobState::Running => Snapshot::Running(job.kind),
            JobState::Finished { status, .. } => Snapshot::Finished(status),
        },
    };
    let (kind, was_queued) = match snapshot {
        Snapshot::NotFound => return (404, error_body("no such job")),
        Snapshot::Finished(status) => {
            return (
                409,
                format!(
                    "{{\"id\":{id},\"status\":\"{status}\",\"error\":\"job already finished\"}}"
                ),
            );
        }
        Snapshot::Queued(kind) => (kind, true),
        Snapshot::Running(kind) => (kind, false),
    };

    let (key, job_name, job_request, job_progress) = {
        let job = st.jobs.get(&id).expect("job exists");
        (
            job.key.clone(),
            job.name.clone(),
            job.request_id.clone(),
            job.progress.clone(),
        )
    };
    // The membership check matters: after a running job's group is retired
    // by a previous DELETE, an identical submission may install a
    // *successor* group under the same key — that one must not be touched
    // on behalf of this job.
    let Some(group) = st
        .inflight
        .get_mut(&key)
        .filter(|group| group.members.contains(&id))
    else {
        // Already detached: an earlier DELETE fired the token and retired
        // the group; the worker publishes the terminal state shortly.
        drop(st);
        return (202, format!("{{\"id\":{id},\"status\":\"cancelling\"}}"));
    };

    if group.members.len() > 1 {
        // Unsubscribe one member of a shared run: the solve itself keeps
        // going for the remaining subscribers. If the departing job was
        // the driver (holds the spec / the queue slot), promote an heir.
        group.members.retain(|&member| member != id);
        let heir = group.members[0];
        if let Some(spec) = st.jobs.get_mut(&id).and_then(|job| job.spec.take()) {
            st.jobs.get_mut(&heir).expect("heir exists").spec = Some(spec);
            for slot in st.queue.iter_mut() {
                if *slot == id {
                    *slot = heir;
                }
            }
        }
        let job = st.jobs.get_mut(&id).expect("job exists");
        job.state = JobState::Finished {
            status: "cancelled",
            outcome: "unsubscribed from shared run".to_string(),
            report: None,
            placement: None,
        };
        retire_job(&mut st, id);
        drop(st);
        // The shared run (and its event stream) lives on for the
        // remaining members; only this job's own lifecycle closes.
        job_progress.mark_finished();
        let (queue_wait, solve) = job_progress.split();
        inner.recorder.record(JobSummary {
            id,
            kind: kind.name(),
            name: job_name,
            status: "cancelled",
            outcome: "unsubscribed from shared run".to_string(),
            via: "shared",
            request_id: job_request.clone(),
            queue_wait_ms: queue_wait * 1000.0,
            solve_ms: solve * 1000.0,
            nodes: 0,
        });
        inner.metrics.cancelled[kind.index()].inc();
        LogLine::new("job_cancelled")
            .num("job", id)
            .str("while", "shared")
            .str("request_id", &job_request)
            .emit();
        return (200, format!("{{\"id\":{id},\"status\":\"cancelled\"}}"));
    }

    // Last subscriber: actually stop the solve.
    if was_queued {
        group.cancel.cancel();
        st.inflight.remove(&key);
        st.queue.retain(|&queued| queued != id);
        let job = st.jobs.get_mut(&id).expect("job exists");
        job.state = JobState::Finished {
            status: "cancelled",
            outcome: "cancelled while queued".to_string(),
            report: None,
            placement: None,
        };
        let trace = job.trace.clone();
        retire_job(&mut st, id);
        drop(st);
        job_progress.mark_finished();
        if let Some(trace) = trace {
            // The run never starts; release any stream subscribers.
            trace.close();
        }
        let (queue_wait, solve) = job_progress.split();
        inner.recorder.record(JobSummary {
            id,
            kind: kind.name(),
            name: job_name,
            status: "cancelled",
            outcome: "cancelled while queued".to_string(),
            via: "run",
            request_id: job_request.clone(),
            queue_wait_ms: queue_wait * 1000.0,
            solve_ms: solve * 1000.0,
            nodes: 0,
        });
        inner.metrics.queue_depth.dec();
        inner.metrics.cancelled[kind.index()].inc();
        LogLine::new("job_cancelled")
            .num("job", id)
            .str("while", "queued")
            .str("request_id", &job_request)
            .emit();
        (200, format!("{{\"id\":{id},\"status\":\"cancelled\"}}"))
    } else {
        // The worker observes the token at its next budget checkpoint and
        // records the terminal state. Retire the group *now*: an identical
        // submission arriving while the solver unwinds must start a fresh
        // run, not join (and inherit the fate of) a cancelled one. The
        // worker matches on the group id, so a successor entry under this
        // key is safe from the finishing run.
        group.cancel.cancel();
        st.inflight.remove(&key);
        drop(st);
        LogLine::new("job_cancelled")
            .num("job", id)
            .str("while", "running")
            .str("request_id", &job_request)
            .emit();
        (202, format!("{{\"id\":{id},\"status\":\"cancelling\"}}"))
    }
}
