//! Per-job observability: live progress snapshots behind
//! `GET /jobs/{id}/progress` and the opt-in search event stream behind
//! `GET /jobs/{id}/events`.
//!
//! Every job owns a [`JobProgress`]: a handle on the
//! [`ProgressCounters`] of the solver run it subscribes to (members of a
//! dedup group share one counter set, each with its own lifecycle
//! timing). Jobs submitted with `"trace": true` additionally carry an
//! [`EventStream`], a broadcast fan-out of raw [`SearchEvent`]s to any
//! number of HTTP subscribers, each with a bounded buffer and an explicit
//! dropped counter — the serve-side sibling of the CLI's `FileJournal`.
//! Untraced jobs never allocate a stream and never serialize an event,
//! per the pay-for-what-you-use telemetry rule.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use recopack_core::{per_second, ProgressCounters, SearchEvent, SolverStats, TelemetrySink};

/// Milestones of one job's lifecycle, relative to its submission instant.
#[derive(Default)]
struct Timing {
    started: Option<Instant>,
    finished: Option<Instant>,
}

/// One job's live progress: shared solver counters plus this job's own
/// queue/solve timing. Cheap to clone out of the job table (`Arc`).
pub(crate) struct JobProgress {
    /// Event totals of the solver run this job subscribes to; one set per
    /// dedup group, shared by every member.
    counters: Arc<ProgressCounters>,
    submitted: Instant,
    timing: Mutex<Timing>,
}

impl JobProgress {
    pub(crate) fn new(counters: Arc<ProgressCounters>) -> Self {
        Self {
            counters,
            submitted: Instant::now(),
            timing: Mutex::new(Timing::default()),
        }
    }

    /// The shared counter set, for joiners attaching to this job's run.
    pub(crate) fn counters(&self) -> &Arc<ProgressCounters> {
        &self.counters
    }

    /// Marks the solve as started; the first caller wins, so a worker
    /// re-marking a member that joined an already-running group is a
    /// no-op.
    pub(crate) fn mark_started(&self) {
        let mut timing = self.timing.lock().expect("timing lock");
        if timing.started.is_none() {
            timing.started = Some(Instant::now());
        }
    }

    /// Marks the job terminal. Jobs that never ran (cancelled while
    /// queued, cache hits) get a zero-length solve phase.
    pub(crate) fn mark_finished(&self) {
        let mut timing = self.timing.lock().expect("timing lock");
        let now = Instant::now();
        if timing.started.is_none() {
            timing.started = Some(now);
        }
        if timing.finished.is_none() {
            timing.finished = Some(now);
        }
    }

    /// The `(queue_wait, solve)` phase split in seconds. Open phases are
    /// measured up to now: a queued job accrues queue-wait, a running job
    /// accrues solve time.
    pub(crate) fn split(&self) -> (f64, f64) {
        let timing = self.timing.lock().expect("timing lock");
        match (timing.started, timing.finished) {
            (None, _) => (self.submitted.elapsed().as_secs_f64(), 0.0),
            (Some(started), None) => (
                started
                    .saturating_duration_since(self.submitted)
                    .as_secs_f64(),
                started.elapsed().as_secs_f64(),
            ),
            (Some(started), Some(finished)) => (
                started
                    .saturating_duration_since(self.submitted)
                    .as_secs_f64(),
                finished.saturating_duration_since(started).as_secs_f64(),
            ),
        }
    }

    /// Seconds since submission (up to the terminal instant once one is
    /// recorded).
    fn elapsed(&self) -> f64 {
        let timing = self.timing.lock().expect("timing lock");
        match timing.finished {
            Some(finished) => finished
                .saturating_duration_since(self.submitted)
                .as_secs_f64(),
            None => self.submitted.elapsed().as_secs_f64(),
        }
    }

    /// The `GET /jobs/{id}/progress` snapshot document.
    pub(crate) fn to_json(
        &self,
        id: u64,
        status: &str,
        request_id: &str,
        trace: Option<&EventStream>,
    ) -> String {
        use std::fmt::Write as _;
        let totals = self.counters.snapshot();
        let (queue_wait, solve) = self.split();
        let solve_ms = solve * 1000.0;
        let mut out =
            format!("{{\"id\":{id},\"status\":\"{status}\",\"request_id\":\"{request_id}\"");
        let _ = write!(
            out,
            ",\"elapsed_ms\":{:.3},\"queue_wait_ms\":{:.3},\"solve_ms\":{:.3}",
            self.elapsed() * 1000.0,
            queue_wait * 1000.0,
            solve_ms
        );
        let _ = write!(
            out,
            ",\"nodes\":{},\"events_total\":{},\"events_per_sec\":",
            totals.branches,
            totals.total()
        );
        match per_second(totals.total(), solve_ms) {
            Some(rate) => {
                let _ = write!(out, "{rate:.1}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"searches_finished\":{},\"max_depth\":{},\"depth_profile\":[",
            self.counters.searches_finished(),
            totals.max_depth
        );
        for (i, count) in self.counters.depth_profile().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{count}");
        }
        let _ = write!(out, "],\"events\":{}", totals.to_json());
        match trace {
            Some(stream) => {
                let _ = write!(
                    out,
                    ",\"trace\":{{\"subscribers\":{},\"dropped\":{}}}",
                    stream.subscriber_count(),
                    stream.dropped()
                );
            }
            None => out.push_str(",\"trace\":null"),
        }
        out.push('}');
        out
    }
}

/// Unread lines a `/jobs/{id}/events` subscriber may buffer before the
/// broadcaster starts dropping (and counting) events for it. Bounds the
/// memory a slow or stalled consumer can pin per subscription.
const SUBSCRIBER_BUFFER_LINES: usize = 8192;

/// A broadcast fan-out of one solver run's search events to its HTTP
/// stream subscribers. Installed (via `Fanout`) only for jobs submitted
/// with `"trace": true`.
#[derive(Default)]
pub(crate) struct EventStream {
    subscribers: Mutex<Vec<Arc<Subscriber>>>,
    dropped: AtomicU64,
    closed: AtomicBool,
}

impl EventStream {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Attaches a new subscriber; it receives events recorded from now
    /// on.
    pub(crate) fn subscribe(&self) -> Arc<Subscriber> {
        let subscriber = Arc::new(Subscriber::default());
        self.subscribers
            .lock()
            .expect("subscribers lock")
            .push(subscriber.clone());
        subscriber
    }

    /// Detaches `subscriber`; the broadcaster stops buffering for it.
    pub(crate) fn unsubscribe(&self, subscriber: &Arc<Subscriber>) {
        let mut subscribers = self.subscribers.lock().expect("subscribers lock");
        subscribers.retain(|s| !Arc::ptr_eq(s, subscriber));
    }

    /// Stops accepting events and wakes every waiting subscriber, so
    /// stream loops notice the terminal state promptly.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Relaxed);
        let subscribers = self.subscribers.lock().expect("subscribers lock");
        for subscriber in subscribers.iter() {
            let _lines = subscriber.lines.lock().expect("lines lock");
            subscriber.available.notify_all();
        }
    }

    /// Events dropped across all subscribers (bounded buffers overflowed).
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Currently attached subscribers.
    pub(crate) fn subscriber_count(&self) -> usize {
        self.subscribers.lock().expect("subscribers lock").len()
    }
}

impl TelemetrySink for EventStream {
    fn record(&self, event: &SearchEvent) {
        if self.closed.load(Ordering::Relaxed) {
            return;
        }
        let subscribers = self.subscribers.lock().expect("subscribers lock");
        if subscribers.is_empty() {
            // Traced but nobody watching yet: skip the serialization.
            return;
        }
        let line = event.to_json();
        for subscriber in subscribers.iter() {
            let mut lines = subscriber.lines.lock().expect("lines lock");
            if lines.len() >= SUBSCRIBER_BUFFER_LINES {
                subscriber.dropped.fetch_add(1, Ordering::Relaxed);
                self.dropped.fetch_add(1, Ordering::Relaxed);
            } else {
                lines.push_back(line.clone());
                subscriber.available.notify_one();
            }
        }
    }

    fn search_finished(&self, _stats: &SolverStats) {}
}

/// One `/jobs/{id}/events` consumer: a bounded line buffer drained by the
/// connection thread serving the chunked response.
#[derive(Default)]
pub(crate) struct Subscriber {
    lines: Mutex<VecDeque<String>>,
    available: Condvar,
    dropped: AtomicU64,
}

impl Subscriber {
    /// Takes every buffered line, waiting up to `wait` for the first one
    /// to arrive when the buffer is empty.
    pub(crate) fn drain(&self, wait: Duration) -> Vec<String> {
        let mut lines = self.lines.lock().expect("lines lock");
        if lines.is_empty() && !wait.is_zero() {
            let (guard, _timeout) = self
                .available
                .wait_timeout(lines, wait)
                .expect("lines lock");
            lines = guard;
        }
        lines.drain(..).collect()
    }

    /// Events this subscriber lost to its buffer bound.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recopack_core::EventKind;

    fn event(depth: u32) -> SearchEvent {
        SearchEvent {
            subtree: 0,
            depth,
            t_ns: 0,
            kind: EventKind::Backtrack,
        }
    }

    #[test]
    fn progress_snapshot_reports_phases_and_totals() {
        let progress = JobProgress::new(Arc::new(ProgressCounters::new()));
        let queued = progress.to_json(7, "queued", "req-9", None);
        let doc = recopack_json::Json::parse(&queued).expect("snapshot parses");
        assert_eq!(doc.get("id").and_then(|v| v.as_u64()), Some(7));
        assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("queued"));
        assert_eq!(
            doc.get("request_id").and_then(|v| v.as_str()),
            Some("req-9")
        );
        assert_eq!(doc.get("nodes").and_then(|v| v.as_u64()), Some(0));
        assert_eq!(doc.get("events_per_sec"), Some(&recopack_json::Json::Null));
        assert_eq!(doc.get("trace"), Some(&recopack_json::Json::Null));

        progress.mark_started();
        progress.counters().record(&SearchEvent {
            subtree: 0,
            depth: 1,
            t_ns: 0,
            kind: EventKind::Branch {
                dim: 0,
                pair: 0,
                component: true,
            },
        });
        std::thread::sleep(Duration::from_millis(2));
        progress.mark_finished();
        let (queue_wait, solve) = progress.split();
        assert!(queue_wait >= 0.0);
        assert!(solve > 0.0, "solve phase must have accrued");
        let done = progress.to_json(7, "done", "req-9", None);
        let doc = recopack_json::Json::parse(&done).expect("snapshot parses");
        assert_eq!(doc.get("nodes").and_then(|v| v.as_u64()), Some(1));
        assert!(doc
            .get("events_per_sec")
            .and_then(|v| v.as_f64())
            .is_some_and(|rate| rate > 0.0));
        let profile = doc
            .get("depth_profile")
            .and_then(|v| v.as_array())
            .expect("profile array");
        assert_eq!(profile.len(), 2, "branches at depth 1: [0, 1]");
    }

    #[test]
    fn event_stream_buffers_per_subscriber_and_counts_drops() {
        let stream = EventStream::new();
        // No subscribers: recording is a no-op.
        stream.record(&event(1));
        let subscriber = stream.subscribe();
        assert_eq!(stream.subscriber_count(), 1);
        stream.record(&event(2));
        stream.record(&event(3));
        let lines = subscriber.drain(Duration::ZERO);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"depth\":2"), "{}", lines[0]);

        // Overflow the bounded buffer: the excess is counted, not kept.
        for depth in 0..(SUBSCRIBER_BUFFER_LINES + 5) {
            stream.record(&event(depth as u32));
        }
        assert_eq!(subscriber.dropped(), 5);
        assert_eq!(stream.dropped(), 5);
        assert_eq!(
            subscriber.drain(Duration::ZERO).len(),
            SUBSCRIBER_BUFFER_LINES
        );

        // A closed stream stops recording entirely.
        stream.close();
        stream.record(&event(9));
        assert!(subscriber.drain(Duration::ZERO).is_empty());
        stream.unsubscribe(&subscriber);
        assert_eq!(stream.subscriber_count(), 0);
    }

    #[test]
    fn dropped_counts_isolate_a_slow_subscriber_from_a_draining_one() {
        let stream = EventStream::new();
        let slow = stream.subscribe();
        let fast = stream.subscribe();
        // Two full buffers of events; the fast subscriber drains halfway
        // through, the slow one never does.
        let total = 2 * SUBSCRIBER_BUFFER_LINES;
        let mut fast_received = 0;
        for depth in 0..total {
            stream.record(&event(depth as u32));
            if depth == SUBSCRIBER_BUFFER_LINES - 1 {
                fast_received += fast.drain(Duration::ZERO).len();
            }
        }
        fast_received += fast.drain(Duration::ZERO).len();
        assert_eq!(fast_received, total, "a draining subscriber loses nothing");
        assert_eq!(fast.dropped(), 0);
        // The slow subscriber kept the first buffer-full and dropped the
        // exact remainder.
        assert_eq!(slow.drain(Duration::ZERO).len(), SUBSCRIBER_BUFFER_LINES);
        assert_eq!(slow.dropped(), (total - SUBSCRIBER_BUFFER_LINES) as u64);
        // The stream-wide counter aggregates only real losses, so it
        // matches the slow subscriber alone.
        assert_eq!(stream.dropped(), slow.dropped());
    }

    #[test]
    fn drain_wakes_on_arrival_instead_of_sleeping_out_the_wait() {
        let stream = Arc::new(EventStream::new());
        let subscriber = stream.subscribe();
        let writer = {
            let stream = stream.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                stream.record(&event(4));
            })
        };
        let started = Instant::now();
        let lines = subscriber.drain(Duration::from_secs(10));
        writer.join().expect("writer thread");
        assert_eq!(lines.len(), 1);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "drain must wake on notify, not sleep the full wait"
        );
    }
}
