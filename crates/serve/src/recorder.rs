//! Flight recorder: a bounded ring of recent job summaries behind
//! `GET /debug/jobs`, plus a slow-job log retaining the full summary of
//! any job whose solve wall time exceeded the configured threshold.
//!
//! The recorder answers "what just happened?" without log scraping: it
//! survives job-table eviction (the `FINISHED_RETENTION` bound) and keeps
//! slow outliers pinned even after thousands of fast jobs push them out
//! of the main ring.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

/// Recent-job ring capacity; the oldest summary is evicted first.
const RING_CAPACITY: usize = 256;

/// Slow-job log capacity, kept separately so a burst of fast jobs cannot
/// evict the interesting outliers.
const SLOW_CAPACITY: usize = 64;

/// One finished job, condensed for the recorder.
#[derive(Clone)]
pub(crate) struct JobSummary {
    pub id: u64,
    pub kind: &'static str,
    pub name: String,
    pub status: &'static str,
    pub outcome: String,
    /// How the result was produced: `"run"` (own solver run), `"cache"`
    /// (canonical cache hit), or `"shared"` (dedup-joined another run).
    pub via: &'static str,
    pub request_id: String,
    pub queue_wait_ms: f64,
    pub solve_ms: f64,
    pub nodes: u64,
}

impl JobSummary {
    fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"id\":{},\"kind\":\"{}\",\"name\":",
            self.id, self.kind
        );
        recopack_core::telemetry::push_json_str(&mut out, &self.name);
        let _ = write!(out, ",\"status\":\"{}\",\"outcome\":", self.status);
        recopack_core::telemetry::push_json_str(&mut out, &self.outcome);
        let _ = write!(out, ",\"via\":\"{}\",\"request_id\":", self.via);
        recopack_core::telemetry::push_json_str(&mut out, &self.request_id);
        let _ = write!(
            out,
            ",\"queue_wait_ms\":{:.3},\"solve_ms\":{:.3},\"nodes\":{}}}",
            self.queue_wait_ms, self.solve_ms, self.nodes
        );
        out
    }
}

#[derive(Default)]
struct Log {
    ring: VecDeque<JobSummary>,
    slow: VecDeque<JobSummary>,
    /// Jobs ever recorded (the ring shows only the last `RING_CAPACITY`).
    recorded: u64,
    /// Jobs that ever exceeded the slow threshold.
    slow_seen: u64,
}

/// Bounded in-memory record of recent and slow jobs.
pub(crate) struct FlightRecorder {
    slow_threshold: Duration,
    inner: Mutex<Log>,
}

impl FlightRecorder {
    pub(crate) fn new(slow_threshold: Duration) -> Self {
        Self {
            slow_threshold,
            inner: Mutex::new(Log::default()),
        }
    }

    /// Records a terminal job; returns `true` when its solve wall time
    /// crossed the slow threshold so the caller can emit a `job_slow`
    /// log line.
    pub(crate) fn record(&self, summary: JobSummary) -> bool {
        let slow = !self.slow_threshold.is_zero()
            && summary.solve_ms >= self.slow_threshold.as_secs_f64() * 1000.0;
        let mut log = self.inner.lock().expect("recorder lock");
        log.recorded += 1;
        if log.ring.len() >= RING_CAPACITY {
            log.ring.pop_front();
        }
        log.ring.push_back(summary.clone());
        if slow {
            log.slow_seen += 1;
            if log.slow.len() >= SLOW_CAPACITY {
                log.slow.pop_front();
            }
            log.slow.push_back(summary);
        }
        slow
    }

    /// The `GET /debug/jobs` document: both logs, newest first.
    pub(crate) fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let log = self.inner.lock().expect("recorder lock");
        let mut out = format!(
            "{{\"capacity\":{RING_CAPACITY},\"recorded\":{},\"jobs\":[",
            log.recorded
        );
        for (i, summary) in log.ring.iter().rev().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&summary.to_json());
        }
        let _ = write!(
            out,
            "],\"slow\":{{\"threshold_ms\":{:.3},\"capacity\":{SLOW_CAPACITY},\"recorded\":{},\"jobs\":[",
            self.slow_threshold.as_secs_f64() * 1000.0,
            log.slow_seen
        );
        for (i, summary) in log.slow.iter().rev().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&summary.to_json());
        }
        out.push_str("]}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(id: u64, solve_ms: f64) -> JobSummary {
        JobSummary {
            id,
            kind: "opp",
            name: format!("job-{id}"),
            status: "done",
            outcome: "sat".to_string(),
            via: "run",
            request_id: format!("req-{id}"),
            queue_wait_ms: 0.5,
            solve_ms,
            nodes: 42,
        }
    }

    #[test]
    fn ring_keeps_the_newest_and_slow_log_keeps_outliers() {
        let recorder = FlightRecorder::new(Duration::from_millis(100));
        assert!(!recorder.record(summary(0, 5.0)), "fast job is not slow");
        assert!(recorder.record(summary(1, 250.0)), "slow job flagged");
        for id in 2..(RING_CAPACITY as u64 + 10) {
            recorder.record(summary(id, 1.0));
        }
        let doc = recopack_json::Json::parse(&recorder.to_json()).expect("recorder json parses");
        assert_eq!(
            doc.get("recorded").and_then(|v| v.as_u64()),
            Some(RING_CAPACITY as u64 + 10)
        );
        let jobs = doc.get("jobs").and_then(|v| v.as_array()).expect("jobs");
        assert_eq!(jobs.len(), RING_CAPACITY);
        // Newest first: the last-recorded id leads, and the slow job 1 has
        // been evicted from the ring...
        assert_eq!(
            jobs[0].get("id").and_then(|v| v.as_u64()),
            Some(RING_CAPACITY as u64 + 9)
        );
        assert!(jobs
            .iter()
            .all(|j| j.get("id").and_then(|v| v.as_u64()) != Some(1)));
        // ...but survives in the slow log with its full summary.
        let slow = doc.get("slow").expect("slow section");
        assert_eq!(slow.get("recorded").and_then(|v| v.as_u64()), Some(1));
        let slow_jobs = slow
            .get("jobs")
            .and_then(|v| v.as_array())
            .expect("slow jobs");
        assert_eq!(slow_jobs.len(), 1);
        assert_eq!(slow_jobs[0].get("id").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(
            slow_jobs[0].get("request_id").and_then(|v| v.as_str()),
            Some("req-1")
        );
        assert_eq!(
            slow.get("threshold_ms").and_then(|v| v.as_f64()),
            Some(100.0)
        );
    }

    #[test]
    fn zero_threshold_disables_the_slow_log() {
        let recorder = FlightRecorder::new(Duration::ZERO);
        assert!(!recorder.record(summary(1, 10_000.0)));
        let doc = recopack_json::Json::parse(&recorder.to_json()).expect("recorder json parses");
        let slow = doc.get("slow").expect("slow section");
        assert_eq!(slow.get("recorded").and_then(|v| v.as_u64()), Some(0));
    }
}
