//! The bridge from the solver's telemetry stream to the metrics registry.

use recopack_core::{PruneRule, SearchEvent, SolverStats, TelemetrySink};
use recopack_metrics::{Counter, Registry};

/// A [`TelemetrySink`] that turns search telemetry into cumulative
/// Prometheus counters.
///
/// The hot-path cost is one relaxed atomic increment per search event
/// ([`TelemetrySink::record`]); the [`SolverStats`] aggregates — nodes,
/// per-rule prunes, propagation events — are added once per completed
/// search in [`TelemetrySink::search_finished`], where they are already
/// merged across worker threads. One shared `MetricsSink` is installed
/// into every job's [`SolverConfig`](recopack_core::SolverConfig), so the
/// exposed series are service-lifetime totals.
pub struct MetricsSink {
    events_total: Counter,
    searches_total: Counter,
    nodes_total: Counter,
    propagation_events_total: Counter,
    prunes_total: [Counter; 4],
}

impl MetricsSink {
    /// Registers the solver-telemetry series in `registry` and returns the
    /// sink feeding them.
    pub fn register(registry: &Registry) -> Self {
        let prunes_total = PruneRule::ALL.map(|rule| {
            registry.counter_with(
                "recopack_solver_prunes_total",
                &[("rule", rule.name())],
                "Subtrees refuted, by propagation rule.",
            )
        });
        Self {
            events_total: registry.counter(
                "recopack_search_events_total",
                "Search telemetry events observed (branch, propagate, prune, backtrack, leaf).",
            ),
            searches_total: registry.counter(
                "recopack_searches_total",
                "Completed branch-and-bound searches (one per exact decision).",
            ),
            nodes_total: registry.counter(
                "recopack_solver_nodes_total",
                "Search nodes explored across all jobs.",
            ),
            propagation_events_total: registry.counter(
                "recopack_solver_propagation_events_total",
                "Propagation-queue events processed across all jobs.",
            ),
            prunes_total,
        }
    }
}

impl TelemetrySink for MetricsSink {
    fn record(&self, _event: &SearchEvent) {
        self.events_total.inc();
    }

    fn search_finished(&self, stats: &SolverStats) {
        self.searches_total.inc();
        self.nodes_total.add(stats.nodes);
        self.propagation_events_total.add(stats.propagation_events);
        self.prunes_total[PruneRule::C2.index()].add(stats.c2_conflicts);
        self.prunes_total[PruneRule::C3.index()].add(stats.c3_conflicts);
        self.prunes_total[PruneRule::C4.index()].add(stats.c4_conflicts);
        self.prunes_total[PruneRule::Orientation.index()].add(stats.orientation_conflicts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_accumulates_stats_into_counters() {
        let registry = Registry::new();
        let sink = MetricsSink::register(&registry);
        sink.record(&SearchEvent {
            subtree: 0,
            depth: 1,
            t_ns: 0,
            kind: recopack_core::EventKind::Backtrack,
        });
        let stats = SolverStats {
            nodes: 10,
            propagation_events: 20,
            c2_conflicts: 1,
            c3_conflicts: 2,
            c4_conflicts: 3,
            orientation_conflicts: 4,
            ..SolverStats::default()
        };
        sink.search_finished(&stats);
        sink.search_finished(&stats);
        let text = registry.render();
        assert!(text.contains("recopack_search_events_total 1"), "{text}");
        assert!(text.contains("recopack_searches_total 2"), "{text}");
        assert!(text.contains("recopack_solver_nodes_total 20"), "{text}");
        assert!(
            text.contains("recopack_solver_propagation_events_total 40"),
            "{text}"
        );
        assert!(
            text.contains("recopack_solver_prunes_total{rule=\"c3\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("recopack_solver_prunes_total{rule=\"orientation\"} 8"),
            "{text}"
        );
    }
}
