//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand` 0.8 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`]. The generator is a
//! xoshiro256** seeded through SplitMix64 — deterministic for a given seed,
//! which is all the callers rely on (the exact stream of the real `StdRng`
//! is not reproduced).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform sample in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random bits into the mantissa.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable from `[lo, hi]`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from the inclusive range `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// The predecessor, for translating exclusive upper bounds.
    fn prev(self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // Modulo bias is < 2^-64 for the spans used here.
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
            fn prev(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        lo + rng.next_f64() * (hi - lo)
    }
    fn prev(self) -> Self {
        self
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(self.start, self.end.prev(), rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the stand-in for
    /// `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the real rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice utilities, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1u64..=4);
            assert!((1..=4).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let s = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn range_endpoints_are_reachable() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!((0..100).any(|_| {
            let mut w: Vec<u32> = (0..20).collect();
            w.shuffle(&mut rng);
            w != (0..20).collect::<Vec<_>>()
        }));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
