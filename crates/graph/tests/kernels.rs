//! Differential tests for the wide-word bitset kernels.
//!
//! Every fused kernel in `recopack_graph::BitSet` is checked against a
//! scalar reference built from the primitive set operations, on random sets
//! whose capacities straddle word (64) and block (256) boundaries — the
//! places where the packed layout's tail masking and whole-block loops can
//! go wrong. `DenseGraph`'s packed-row predicates are likewise checked
//! against the old per-edge loops.

use proptest::prelude::*;
use recopack_graph::{BitSet, DenseGraph};

/// Capacities around the word and block boundaries of the packed layout.
const CAPS: &[usize] = &[1, 63, 64, 65, 127, 128, 255, 256, 257, 300, 511, 512, 513];

fn set_from(cap: usize, bits: &[usize]) -> BitSet {
    let mut s = BitSet::new(cap);
    s.extend(bits.iter().map(|&b| b % cap));
    s
}

/// Raw ingredients for four random sets on a shared capacity drawn from
/// [`CAPS`] (the vendored proptest subset has no `prop_map`, so tests
/// assemble the sets from these in their bodies).
fn bits() -> proptest::collection::VecStrategy<std::ops::Range<usize>> {
    proptest::collection::vec(0..1024usize, 0..96)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn intersect_into_matches_clone_and_intersect(ci in 0..CAPS.len(), ab in bits(), bb in bits(), cb in bits(), db in bits()) {
        let cap = CAPS[ci];
        let a = set_from(cap, &ab);
        let b = set_from(cap, &bb);
        let mut fused = BitSet::new(cap);
        fused.intersect_into(&a, &b);
        let mut reference = a.clone();
        reference.intersect_with(&b);
        prop_assert_eq!(&fused, &reference);
    }

    #[test]
    fn intersect_count_matches_materialized(ci in 0..CAPS.len(), ab in bits(), bb in bits(), cb in bits(), db in bits()) {
        let cap = CAPS[ci];
        let a = set_from(cap, &ab);
        let b = set_from(cap, &bb);
        let _ = cap;
        let reference = a.intersection(&b).len();
        prop_assert_eq!(a.intersect_count(&b), reference);
    }

    #[test]
    fn union_count_matches_materialized(ci in 0..CAPS.len(), ab in bits(), bb in bits(), cb in bits(), db in bits()) {
        let cap = CAPS[ci];
        let a = set_from(cap, &ab);
        let b = set_from(cap, &bb);
        let _ = cap;
        let mut u = a.clone();
        u.union_with(&b);
        prop_assert_eq!(a.union_count(&b), u.len());
    }

    #[test]
    fn and_not_cursor_matches_materialized_difference(ci in 0..CAPS.len(), ab in bits(), bb in bits(), cb in bits(), db in bits(), start in 0usize..600) {
        let cap = CAPS[ci];
        let a = set_from(cap, &ab);
        let b = set_from(cap, &bb);
        let mut diff = a.clone();
        diff.difference_with(&b);
        prop_assert_eq!(a.and_not_first(&b), diff.first());
        let start = start % (cap + 1);
        prop_assert_eq!(a.and_not_next(&b, start), diff.next_at_or_after(start));
        // Full cursor sweep enumerates exactly the difference.
        let mut swept = Vec::new();
        let mut from = 0;
        while let Some(x) = a.and_not_next(&b, from) {
            from = x + 1;
            swept.push(x);
        }
        prop_assert_eq!(swept, diff.iter().collect::<Vec<_>>());
    }

    #[test]
    fn majority_matches_pairwise_intersections(ci in 0..CAPS.len(), ab in bits(), bb in bits(), cb in bits(), db in bits()) {
        let cap = CAPS[ci];
        let a = set_from(cap, &ab);
        let b = set_from(cap, &bb);
        let c = set_from(cap, &cb);
        let mut fused = BitSet::new(cap);
        fused.majority_into(&a, &b, &c);
        let mut reference = a.intersection(&b);
        reference.union_with(&a.intersection(&c));
        reference.union_with(&b.intersection(&c));
        prop_assert_eq!(&fused, &reference);
        // Element-wise: in the majority iff in at least two inputs.
        for v in 0..cap {
            let votes = [&a, &b, &c].iter().filter(|s| s.contains(v)).count();
            prop_assert_eq!(fused.contains(v), votes >= 2, "v={}", v);
        }
    }

    #[test]
    fn intersect2_union_matches_composition(ci in 0..CAPS.len(), ab in bits(), bb in bits(), cb in bits(), db in bits()) {
        let cap = CAPS[ci];
        let a = set_from(cap, &ab);
        let b = set_from(cap, &bb);
        let c = set_from(cap, &cb);
        let d = set_from(cap, &db);
        let mut fused = BitSet::new(cap);
        fused.intersect2_union_into(&a, &b, &c, &d);
        let mut reference = a.intersection(&b);
        reference.union_with(&c.intersection(&d));
        prop_assert_eq!(&fused, &reference);
    }

    #[test]
    fn weight_sums_match_iteration(ci in 0..CAPS.len(), ab in bits(), bb in bits(), cb in bits(), db in bits()) {
        let cap = CAPS[ci];
        let a = set_from(cap, &ab);
        let b = set_from(cap, &bb);
        let weights: Vec<u64> = (0..cap as u64).map(|v| v * v + 1).collect();
        let reference: u64 = a.iter().map(|v| weights[v]).sum();
        prop_assert_eq!(a.weight_sum(&weights), reference);
        let mut dst = BitSet::new(cap);
        let sum = dst.intersect_into_weight_sum(&a, &b, &weights);
        prop_assert_eq!(&dst, &a.intersection(&b));
        prop_assert_eq!(sum, dst.iter().map(|v| weights[v]).sum::<u64>());
    }

    #[test]
    fn masked_below_kernels_match_take_while(ci in 0..CAPS.len(), ab in bits(), bb in bits(), cb in bits(), db in bits(), limit in 0usize..600) {
        let cap = CAPS[ci];
        let a = set_from(cap, &ab);
        let b = set_from(cap, &bb);
        let limit = limit % (cap + 1);
        let subset = a.iter().take_while(|&v| v < limit).all(|v| b.contains(v));
        prop_assert_eq!(a.is_subset_below(&b, limit), subset);
        let disjoint = a.iter().take_while(|&v| v < limit).all(|v| !b.contains(v));
        prop_assert_eq!(a.is_disjoint_below(&b, limit), disjoint);
    }

    #[test]
    fn first_equals_cursor_origin(ci in 0..CAPS.len(), ab in bits(), bb in bits(), cb in bits(), db in bits()) {
        let cap = CAPS[ci];
        let a = set_from(cap, &ab);
        let _ = cap;
        prop_assert_eq!(a.first(), a.next_at_or_after(0));
        prop_assert_eq!(a.first(), a.iter().next());
    }

    #[test]
    fn clone_round_trips_across_storage_variants(ci in 0..CAPS.len(), ab in bits(), bb in bits(), cb in bits(), db in bits()) {
        let cap = CAPS[ci];
        let a = set_from(cap, &ab);
        let _ = cap;
        // Inline (≤ 256) and heap (> 256) variants must clone and compare
        // identically.
        let cloned = a.clone();
        prop_assert_eq!(&cloned, &a);
        prop_assert_eq!(cloned.len(), a.len());
        prop_assert_eq!(cloned.iter().collect::<Vec<_>>(), a.iter().collect::<Vec<_>>());
    }
}

/// Per-edge reference for `DenseGraph::is_clique`, as written before the
/// packed-row kernels.
fn is_clique_per_edge(g: &DenseGraph, set: &BitSet) -> bool {
    set.iter()
        .all(|u| set.iter().take_while(|&v| v < u).all(|v| g.has_edge(u, v)))
}

fn is_independent_per_edge(g: &DenseGraph, set: &BitSet) -> bool {
    set.iter()
        .all(|u| set.iter().take_while(|&v| v < u).all(|v| !g.has_edge(u, v)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn packed_row_predicates_match_per_edge_loops(
        n in 1usize..80,
        edges in proptest::collection::vec((0usize..80, 0usize..80), 0..200),
        members in proptest::collection::vec(0usize..80, 0..40),
    ) {
        let g = DenseGraph::from_edges(
            n,
            edges
                .into_iter()
                .map(|(u, v)| (u % n, v % n))
                .filter(|&(u, v)| u != v),
        );
        let set = set_from(n, &members);
        prop_assert_eq!(g.is_clique(&set), is_clique_per_edge(&g, &set));
        prop_assert_eq!(
            g.is_independent_set(&set),
            is_independent_per_edge(&g, &set)
        );
    }
}
