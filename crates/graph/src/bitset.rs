//! Fixed-capacity bitsets for vertex sets, with inline 256-bit-block
//! storage and fused wide-word kernels.
//!
//! Sets with capacity ≤ 256 store a single `[u64; 4]` block inline: no
//! heap allocation at all, which makes cloning a state full of vertex
//! sets — the dominant cost of donating a work unit in the parallel
//! search — allocation-free per set. Because the inline block has a
//! *statically known* size, every kernel's inline arm is a branch-free
//! straight-line expression over whole `[u64; 4]` blocks (the `#[inline]`
//! block helpers at the bottom of this file) that the autovectorizer
//! lowers to single 256-bit SIMD operations — no slice length arithmetic,
//! no bounds checks, no loop control. Capacities beyond 256 fall back to
//! a heap vector of words; those kernels run a main loop of whole blocks
//! via `chunks_exact(4)` plus a scalar word tail.
//!
//! The price of padded inline storage is a strict *tail invariant*: every
//! bit at position ≥ `capacity` — including whole padding words — is
//! always zero, so counts, scans, and iteration can walk the padded block
//! without masking. Every mutating kernel re-checks the invariant under
//! `debug_assertions`.

/// Words per block: the kernel main loops advance four `u64`s at a time.
const BLOCK_WORDS: usize = 4;
/// Bits per block — also the largest capacity stored inline.
const BLOCK_BITS: usize = BLOCK_WORDS * 64;

/// One 256-bit block, the unit of the fused kernels' inline arms.
type Block = [u64; BLOCK_WORDS];

/// Word storage: a single inline block for capacities up to
/// [`BLOCK_BITS`], a heap vector of exactly `capacity.div_ceil(64)` words
/// beyond.
#[derive(Clone)]
enum Store {
    /// Capacities `0..=256`: the block lives inside the set itself.
    /// Padding bits above the capacity are kept zero (tail invariant).
    Inline(Block),
    /// Larger capacities: `capacity.div_ceil(64)` words on the heap.
    Heap(Vec<u64>),
}

/// A fixed-capacity set of small integers backed by `u64` words, stored
/// inline as a single 256-bit block for capacities up to 256.
///
/// `BitSet` is the workhorse vertex-set representation of this crate: all
/// graph algorithms here operate on graphs with at most a few hundred
/// vertices, where a flat word array beats any pointer-based set. Sets with
/// capacity ≤ 256 are stored inline — creating or cloning them never
/// allocates.
///
/// Beyond the classic in-place operations, the set exposes *fused kernels*
/// ([`BitSet::intersect_into`], [`BitSet::intersect_count`],
/// [`BitSet::union_count`], [`BitSet::and_not_first`],
/// [`BitSet::majority_into`], [`BitSet::intersect2_union_into`], …) that
/// compute a multi-operand expression in a single pass over the words
/// instead of materializing intermediates.
///
/// # Invariant
///
/// Bits at positions `>= capacity` are always zero (the *tail invariant*),
/// including the padding words of the inline block; every mutating kernel
/// re-checks it under `debug_assertions`.
///
/// # Example
///
/// ```
/// use recopack_graph::BitSet;
///
/// let mut s = BitSet::new(70);
/// s.insert(3);
/// s.insert(69);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 69]);
/// ```
#[derive(Clone)]
pub struct BitSet {
    store: Store,
    capacity: usize,
}

impl PartialEq for BitSet {
    fn eq(&self, other: &Self) -> bool {
        // Equal capacities imply the same storage variant and word count
        // (layout is a function of capacity), and padding is zero on both
        // sides, so the raw word comparison is sound.
        self.capacity == other.capacity && self.words() == other.words()
    }
}

impl Eq for BitSet {}

impl std::hash::Hash for BitSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.capacity.hash(state);
        self.words().hash(state);
    }
}

impl BitSet {
    /// Creates an empty set able to hold values `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        let store = if capacity <= BLOCK_BITS {
            Store::Inline([0; BLOCK_WORDS])
        } else {
            Store::Heap(vec![0; capacity.div_ceil(64)])
        };
        Self { store, capacity }
    }

    /// Creates a set containing all of `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for w in s.words_mut() {
            *w = !0;
        }
        s.trim();
        s.debug_check_tail();
        s
    }

    /// The capacity this set was created with.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The backing words, low bits first — the whole padded block for
    /// inline sets (padding is zero by the tail invariant), the exact
    /// word count for heap sets. No per-call arithmetic: this is the
    /// accessor the single-set loops run on.
    #[inline]
    fn words(&self) -> &[u64] {
        match &self.store {
            Store::Inline(block) => block,
            Store::Heap(words) => words,
        }
    }

    /// Mutable view of the backing words (padded for inline sets; callers
    /// must preserve the tail invariant).
    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.store {
            Store::Inline(block) => block,
            Store::Heap(words) => words,
        }
    }

    /// Zeroes every bit at position `>= capacity` — the partial word and,
    /// for inline sets, the whole padding words above it.
    fn trim(&mut self) {
        let capacity = self.capacity;
        for (wi, w) in self.words_mut().iter_mut().enumerate() {
            let base = wi * 64;
            if base >= capacity {
                *w = 0;
            } else if base + 64 > capacity {
                *w &= !0 >> (base + 64 - capacity);
            }
        }
    }

    /// Debug check of the tail invariant: no bit at any position
    /// `>= capacity` is set, padding words included. Every mutating kernel
    /// calls this before returning.
    #[inline]
    fn debug_check_tail(&self) {
        #[cfg(debug_assertions)]
        {
            let capacity = self.capacity;
            for (wi, &w) in self.words().iter().enumerate() {
                let base = wi * 64;
                let masked = if base >= capacity {
                    w
                } else if base + 64 > capacity {
                    w & !(!0 >> (base + 64 - capacity))
                } else {
                    0
                };
                debug_assert_eq!(
                    masked, 0,
                    "tail invariant violated: bits above capacity {capacity} in word {wi}"
                );
            }
        }
    }

    /// Inserts `i`, returning whether it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        let bit = 1u64 << (i % 64);
        // `i < capacity <= 256` makes the masked index exact for the
        // inline arm while keeping it provably in bounds (no panic path).
        let w = match &mut self.store {
            Store::Inline(block) => &mut block[(i / 64) % BLOCK_WORDS],
            Store::Heap(words) => &mut words[i / 64],
        };
        let was = *w & bit != 0;
        *w |= bit;
        !was
    }

    /// Removes `i`, returning whether it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let bit = 1u64 << (i % 64);
        let w = match &mut self.store {
            Store::Inline(block) => &mut block[(i / 64) % BLOCK_WORDS],
            Store::Heap(words) => &mut words[i / 64],
        };
        let was = *w & bit != 0;
        *w &= !bit;
        was
    }

    /// Tests membership of `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let w = match &self.store {
            Store::Inline(block) => block[(i / 64) % BLOCK_WORDS],
            Store::Heap(words) => words[i / 64],
        };
        w & (1 << (i % 64)) != 0
    }

    /// Number of elements in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    #[inline]
    pub fn clear(&mut self) {
        match &mut self.store {
            Store::Inline(block) => *block = [0; BLOCK_WORDS],
            Store::Heap(words) => words.fill(0),
        }
    }

    /// In-place intersection with `other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        match (&mut self.store, &other.store) {
            (Store::Inline(a), Store::Inline(b)) => *a = block_and(*a, *b),
            (a, b) => {
                for (x, y) in raw_mut(a).iter_mut().zip(raw(b)) {
                    *x &= y;
                }
            }
        }
        self.debug_check_tail();
    }

    /// In-place union with `other`.
    #[inline]
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        match (&mut self.store, &other.store) {
            (Store::Inline(a), Store::Inline(b)) => *a = block_or(*a, *b),
            (a, b) => {
                for (x, y) in raw_mut(a).iter_mut().zip(raw(b)) {
                    *x |= y;
                }
            }
        }
        self.debug_check_tail();
    }

    /// In-place difference: removes every element of `other`.
    #[inline]
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        match (&mut self.store, &other.store) {
            (Store::Inline(a), Store::Inline(b)) => *a = block_andnot(*a, *b),
            (a, b) => {
                for (x, y) in raw_mut(a).iter_mut().zip(raw(b)) {
                    *x &= !y;
                }
            }
        }
        self.debug_check_tail();
    }

    /// Returns the intersection as a new set.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Fused kernel: overwrites `self` with `a & b` in one pass — the
    /// clone-free replacement for `copy_from(a)` + `intersect_with(b)`.
    ///
    /// All three sets must share a capacity (debug-asserted).
    #[inline]
    pub fn intersect_into(&mut self, a: &BitSet, b: &BitSet) {
        debug_assert_eq!(self.capacity, a.capacity);
        debug_assert_eq!(self.capacity, b.capacity);
        match (&mut self.store, &a.store, &b.store) {
            (Store::Inline(d), Store::Inline(x), Store::Inline(y)) => *d = block_and(*x, *y),
            (d, x, y) => {
                let (d, x, y) = (raw_mut(d), raw(x), raw(y));
                let mut dc = d.chunks_exact_mut(BLOCK_WORDS);
                let mut xc = x.chunks_exact(BLOCK_WORDS);
                let mut yc = y.chunks_exact(BLOCK_WORDS);
                for ((dw, xw), yw) in (&mut dc).zip(&mut xc).zip(&mut yc) {
                    block_store(dw, block_and(block_load(xw), block_load(yw)));
                }
                for ((dw, &xw), &yw) in dc
                    .into_remainder()
                    .iter_mut()
                    .zip(xc.remainder())
                    .zip(yc.remainder())
                {
                    *dw = xw & yw;
                }
            }
        }
        self.debug_check_tail();
    }

    /// Fused kernel: `|self & other|` without materializing the
    /// intersection.
    #[inline]
    pub fn intersect_count(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        match (&self.store, &other.store) {
            // `popcnt` is a scalar instruction on most targets, so the
            // single-word arm saves three of four popcounts for the
            // ≤ 64-vertex graphs that dominate this workspace.
            (Store::Inline(a), Store::Inline(b)) if self.capacity <= 64 => {
                (a[0] & b[0]).count_ones() as usize
            }
            (Store::Inline(a), Store::Inline(b)) => block_count(block_and(*a, *b)),
            (a, b) => raw(a)
                .iter()
                .zip(raw(b))
                .map(|(&x, &y)| (x & y).count_ones() as usize)
                .sum(),
        }
    }

    /// Fused kernel: `|self ∪ other|` without materializing the union.
    #[inline]
    pub fn union_count(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        match (&self.store, &other.store) {
            // Single-word arm: see [`BitSet::intersect_count`].
            (Store::Inline(a), Store::Inline(b)) if self.capacity <= 64 => {
                (a[0] | b[0]).count_ones() as usize
            }
            (Store::Inline(a), Store::Inline(b)) => block_count(block_or(*a, *b)),
            (a, b) => raw(a)
                .iter()
                .zip(raw(b))
                .map(|(&x, &y)| (x | y).count_ones() as usize)
                .sum(),
        }
    }

    /// Fused kernel: the smallest element of `self \ other`, if any,
    /// without materializing the difference.
    #[inline]
    pub fn and_not_first(&self, other: &BitSet) -> Option<usize> {
        self.and_not_next(other, 0)
    }

    /// Fused kernel: the smallest element `>= i` of `self \ other`, if any.
    ///
    /// The cursor form of [`BitSet::and_not_first`]: enables allocation-free
    /// "visit everything not yet seen" sweeps where `other` grows between
    /// steps (only at positions `< i`, which the cursor has passed).
    #[inline]
    pub fn and_not_next(&self, other: &BitSet, i: usize) -> Option<usize> {
        debug_assert_eq!(self.capacity, other.capacity);
        if i >= self.capacity {
            return None;
        }
        // Graphs in this workspace are frequently ≤ 64 vertices; a
        // single-word set scans in a handful of instructions, so skip the
        // padded-block walk entirely (`i < capacity <= 64` here). Matching
        // the stores keeps the word reads free of bounds checks.
        if let (Store::Inline(a), Store::Inline(b)) = (&self.store, &other.store) {
            if self.capacity <= 64 {
                let masked = (a[0] & !b[0]) & (!0u64 << (i % 64));
                return if masked != 0 {
                    Some(masked.trailing_zeros() as usize)
                } else {
                    None
                };
            }
        }
        let (a, b) = (self.words(), other.words());
        let (wi, bit) = (i / 64, i % 64);
        let masked = (a[wi] & !b[wi]) & (!0u64 << bit);
        if masked != 0 {
            return Some(wi * 64 + masked.trailing_zeros() as usize);
        }
        // Remaining words: the and-not combine keeps each step branch-free
        // until a nonzero difference word is found. Padding words of inline
        // sets are zero, so they can never yield a false positive.
        for (offset, (&wa, &wb)) in a[wi + 1..].iter().zip(&b[wi + 1..]).enumerate() {
            let diff = wa & !wb;
            if diff != 0 {
                return Some((wi + 1 + offset) * 64 + diff.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Fused kernel: overwrites `self` with the *majority* of three sets —
    /// `(a & b) | (a & c) | (b & c)`, every element in at least two of them
    /// — in one pass instead of three intersections and two unions.
    ///
    /// This is the candidate filter of the C4 scan: a live pattern has at
    /// most one open slot, so a candidate must sit in at least two of the
    /// three constraint rows.
    #[inline]
    pub fn majority_into(&mut self, a: &BitSet, b: &BitSet, c: &BitSet) {
        debug_assert_eq!(self.capacity, a.capacity);
        debug_assert_eq!(self.capacity, b.capacity);
        debug_assert_eq!(self.capacity, c.capacity);
        match (&mut self.store, &a.store, &b.store, &c.store) {
            (Store::Inline(d), Store::Inline(x), Store::Inline(y), Store::Inline(z)) => {
                *d = block_or(block_and(*x, *y), block_and(block_or(*x, *y), *z));
            }
            (d, x, y, z) => {
                for (dw, ((&xw, &yw), &zw)) in raw_mut(d)
                    .iter_mut()
                    .zip(raw(x).iter().zip(raw(y)).zip(raw(z)))
                {
                    *dw = (xw & yw) | ((xw | yw) & zw);
                }
            }
        }
        self.debug_check_tail();
    }

    /// Fused kernel: overwrites `self` with `(a & b) | (c & d)` in one
    /// pass — the shape of the D1 candidate scans, which intersect two
    /// row pairs and union the results.
    #[inline]
    pub fn intersect2_union_into(&mut self, a: &BitSet, b: &BitSet, c: &BitSet, d: &BitSet) {
        debug_assert_eq!(self.capacity, a.capacity);
        debug_assert_eq!(self.capacity, b.capacity);
        debug_assert_eq!(self.capacity, c.capacity);
        debug_assert_eq!(self.capacity, d.capacity);
        match (&mut self.store, &a.store, &b.store, &c.store, &d.store) {
            (
                Store::Inline(dst),
                Store::Inline(x),
                Store::Inline(y),
                Store::Inline(z),
                Store::Inline(w),
            ) => {
                *dst = block_or(block_and(*x, *y), block_and(*z, *w));
            }
            (dst, x, y, z, w) => {
                for (dw, (((&xw, &yw), &zw), &ww)) in raw_mut(dst)
                    .iter_mut()
                    .zip(raw(x).iter().zip(raw(y)).zip(raw(z)).zip(raw(w)))
                {
                    *dw = (xw & yw) | (zw & ww);
                }
            }
        }
        self.debug_check_tail();
    }

    /// Sum of `weights[v]` over the elements of the set.
    ///
    /// # Panics
    ///
    /// Panics (in debug) if `weights` is shorter than the capacity.
    #[inline]
    pub fn weight_sum(&self, weights: &[u64]) -> u64 {
        debug_assert!(weights.len() >= self.capacity);
        let mut sum = 0u64;
        if let Store::Inline(words) = &self.store {
            if self.capacity <= 64 {
                // Single-word arm: the bit-extraction loop never needs a
                // word index (tail invariant keeps `b < capacity`).
                let mut bits = words[0];
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    sum += weights[b];
                }
                return sum;
            }
        }
        for (wi, &w) in self.words().iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                sum += weights[wi * 64 + b];
            }
        }
        sum
    }

    /// Fused kernel: overwrites `self` with `a & b` and returns the weight
    /// sum of the result in the same pass — the clique search uses it to
    /// build a child candidate set together with its remaining-weight
    /// bound.
    #[inline]
    pub fn intersect_into_weight_sum(&mut self, a: &BitSet, b: &BitSet, weights: &[u64]) -> u64 {
        debug_assert_eq!(self.capacity, a.capacity);
        debug_assert_eq!(self.capacity, b.capacity);
        debug_assert!(weights.len() >= self.capacity);
        let mut sum = 0u64;
        match (&mut self.store, &a.store, &b.store) {
            // Single-word arm: padding words of `d` are already zero by
            // the tail invariant, so only word 0 needs writing.
            (Store::Inline(d), Store::Inline(x), Store::Inline(y)) if self.capacity <= 64 => {
                let w = x[0] & y[0];
                d[0] = w;
                let mut bits = w;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    sum += weights[b];
                }
            }
            (Store::Inline(d), Store::Inline(x), Store::Inline(y)) => {
                let w = block_and(*x, *y);
                *d = w;
                for (wi, &word) in w.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        sum += weights[wi * 64 + b];
                    }
                }
            }
            (d, x, y) => {
                for (wi, ((dw, &xw), &yw)) in
                    raw_mut(d).iter_mut().zip(raw(x)).zip(raw(y)).enumerate()
                {
                    let w = xw & yw;
                    *dw = w;
                    let mut bits = w;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        sum += weights[wi * 64 + b];
                    }
                }
            }
        }
        self.debug_check_tail();
        sum
    }

    /// Masked-row kernel: whether every element of `self` *below* `limit`
    /// is in `other`. Equivalent to
    /// `self.iter().take_while(|&v| v < limit).all(|v| other.contains(v))`
    /// but runs on whole words.
    #[inline]
    pub fn is_subset_below(&self, other: &BitSet, limit: usize) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        debug_assert!(limit <= self.capacity);
        let (a, b) = (self.words(), other.words());
        let (full, rem) = (limit / 64, limit % 64);
        for (&wa, &wb) in a.iter().zip(b).take(full) {
            if wa & !wb != 0 {
                return false;
            }
        }
        rem == 0 || (a[full] & !b[full]) & ((1u64 << rem) - 1) == 0
    }

    /// Masked-row kernel: whether no element of `self` *below* `limit` is
    /// in `other` (the disjoint counterpart of
    /// [`BitSet::is_subset_below`]).
    #[inline]
    pub fn is_disjoint_below(&self, other: &BitSet, limit: usize) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        debug_assert!(limit <= self.capacity);
        let (a, b) = (self.words(), other.words());
        let (full, rem) = (limit / 64, limit % 64);
        for (&wa, &wb) in a.iter().zip(b).take(full) {
            if wa & wb != 0 {
                return false;
            }
        }
        rem == 0 || (a[full] & b[full]) & ((1u64 << rem) - 1) == 0
    }

    /// Whether `self` and `other` share no element.
    #[inline]
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words()
            .iter()
            .zip(other.words())
            .all(|(a, b)| a & b == 0)
    }

    /// Whether every element of `self` is in `other`.
    #[inline]
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words()
            .iter()
            .zip(other.words())
            .all(|(a, b)| a & !b == 0)
    }

    /// The smallest element, if any.
    #[inline]
    pub fn first(&self) -> Option<usize> {
        self.next_at_or_after(0)
    }

    /// The smallest element `>= i`, if any.
    ///
    /// Enables allocation-free cursor iteration over a set that may be
    /// mutated between steps (unlike [`BitSet::iter`], which borrows the
    /// set for its whole lifetime):
    ///
    /// ```
    /// use recopack_graph::BitSet;
    ///
    /// let mut s = BitSet::new(10);
    /// s.extend([2, 5, 9]);
    /// let mut from = 0;
    /// let mut seen = Vec::new();
    /// while let Some(i) = s.next_at_or_after(from) {
    ///     from = i + 1;
    ///     seen.push(i);
    /// }
    /// assert_eq!(seen, vec![2, 5, 9]);
    /// ```
    #[inline]
    pub fn next_at_or_after(&self, i: usize) -> Option<usize> {
        if i >= self.capacity {
            return None;
        }
        // Single-word fast path, as in [`BitSet::and_not_next`].
        if let Store::Inline(words) = &self.store {
            if self.capacity <= 64 {
                let masked = words[0] & (!0u64 << (i % 64));
                return if masked != 0 {
                    Some(masked.trailing_zeros() as usize)
                } else {
                    None
                };
            }
        }
        let words = self.words();
        let (wi, b) = (i / 64, i % 64);
        let masked = words[wi] & (!0u64 << b);
        if masked != 0 {
            return Some(wi * 64 + masked.trailing_zeros() as usize);
        }
        for (offset, &w) in words[wi + 1..].iter().enumerate() {
            if w != 0 {
                return Some((wi + 1 + offset) * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Overwrites `self` with the contents of `other` without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    #[inline]
    pub fn copy_from(&mut self, other: &BitSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "copy_from requires equal capacities"
        );
        match (&mut self.store, &other.store) {
            (Store::Inline(a), Store::Inline(b)) => *a = *b,
            (a, b) => raw_mut(a).copy_from_slice(raw(b)),
        }
    }

    /// Iterates over elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words().first().copied().unwrap_or(0),
        }
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects elements into a set sized by the largest element.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let b = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + b);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words().len() {
                return None;
            }
            self.current = self.set.words()[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

// --- store and block helpers --------------------------------------------
//
// Shared by the fused kernels above. The block helpers take or return a
// whole [`Block`]; bodies are branch-free element-wise expressions that
// the autovectorizer lowers to single wide-register instructions.

/// Raw word view of a store (fallback arms of the kernels).
#[inline]
fn raw(store: &Store) -> &[u64] {
    match store {
        Store::Inline(block) => block,
        Store::Heap(words) => words,
    }
}

/// Mutable raw word view of a store.
#[inline]
fn raw_mut(store: &mut Store) -> &mut [u64] {
    match store {
        Store::Inline(block) => block,
        Store::Heap(words) => words,
    }
}

/// Loads a block from a 4-word chunk.
#[inline]
fn block_load(chunk: &[u64]) -> Block {
    [chunk[0], chunk[1], chunk[2], chunk[3]]
}

/// Stores a block into a 4-word chunk.
#[inline]
fn block_store(chunk: &mut [u64], x: Block) {
    chunk[0] = x[0];
    chunk[1] = x[1];
    chunk[2] = x[2];
    chunk[3] = x[3];
}

/// Element-wise AND.
#[inline]
fn block_and(x: Block, y: Block) -> Block {
    [x[0] & y[0], x[1] & y[1], x[2] & y[2], x[3] & y[3]]
}

/// Element-wise AND-NOT (`x & !y`).
#[inline]
fn block_andnot(x: Block, y: Block) -> Block {
    [x[0] & !y[0], x[1] & !y[1], x[2] & !y[2], x[3] & !y[3]]
}

/// Element-wise OR.
#[inline]
fn block_or(x: Block, y: Block) -> Block {
    [x[0] | y[0], x[1] | y[1], x[2] | y[2], x[3] | y[3]]
}

/// Population count of a block.
#[inline]
fn block_count(x: Block) -> usize {
    (x[0].count_ones() + x[1].count_ones() + x[2].count_ones() + x[3].count_ones()) as usize
}
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(100);
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn full_respects_capacity() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn full_and_complementy_ops_at_block_boundaries() {
        // The block-aligned layout keeps up to 255 slack bits; `full` and
        // every mutating kernel must keep them zero (the tail invariant) at
        // capacities straddling word and block boundaries.
        for cap in [0usize, 1, 63, 64, 65, 255, 256, 257, 511, 512, 513] {
            let full = BitSet::full(cap);
            assert_eq!(full.len(), cap, "capacity {cap}");
            if cap > 0 {
                assert!(full.contains(cap - 1));
            }
            assert!(!full.contains(cap));
            let mut s = BitSet::new(cap);
            s.copy_from(&full);
            s.intersect_with(&full);
            s.union_with(&full);
            s.difference_with(&BitSet::new(cap));
            assert_eq!(s.len(), cap, "capacity {cap} after kernels");
            let mut d = BitSet::new(cap);
            d.intersect_into(&full, &full);
            assert_eq!(d.len(), cap);
            d.majority_into(&full, &full, &BitSet::new(cap));
            assert_eq!(d.len(), cap);
            d.intersect2_union_into(&full, &full, &BitSet::new(cap), &full);
            assert_eq!(d.len(), cap);
            assert_eq!(full.intersect_count(&full), cap);
            assert_eq!(full.union_count(&BitSet::new(cap)), cap);
            assert_eq!(full.and_not_first(&full), None);
            assert_eq!(
                full.and_not_first(&BitSet::new(cap)),
                if cap == 0 { None } else { Some(0) }
            );
        }
    }

    #[test]
    fn inline_and_heap_variants_agree() {
        // 256 is the last inline capacity, 257 the first heap one; the
        // same elements must behave identically in both.
        for cap in [256usize, 257] {
            let mut s = BitSet::new(cap);
            s.extend([0, 63, 64, 127, 128, 191, 192, 255]);
            assert_eq!(s.len(), 8);
            assert_eq!(s.iter().count(), 8);
            assert_eq!(s.next_at_or_after(193), Some(255));
            assert_eq!(s.next_at_or_after(256), None);
        }
        let mut big = BitSet::new(257);
        big.insert(256);
        assert_eq!(big.next_at_or_after(256), Some(256));
        assert_eq!(big.len(), 1);
    }

    #[test]
    fn set_operations() {
        let a: BitSet = [1, 2, 3, 64].into_iter().collect();
        let b: BitSet = [2, 3, 4].into_iter().collect();
        // FromIterator sizes by max element; re-create on common capacity.
        let mut a2 = BitSet::new(65);
        a2.extend(a.iter());
        let mut b2 = BitSet::new(65);
        b2.extend(b.iter());
        let i = a2.intersection(&b2);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);
        let mut u = a2.clone();
        u.union_with(&b2);
        assert_eq!(u.len(), 5);
        let mut d = a2.clone();
        d.difference_with(&b2);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 64]);
    }

    #[test]
    fn fused_kernels_match_composed_operations() {
        let mut a = BitSet::new(300);
        a.extend([0, 2, 64, 65, 130, 255, 256, 299]);
        let mut b = BitSet::new(300);
        b.extend([2, 3, 65, 131, 255, 299]);
        let mut c = BitSet::new(300);
        c.extend([0, 2, 3, 131, 256]);
        let mut d = BitSet::new(300);
        d.extend([0, 65, 131, 299]);

        let mut expect = a.intersection(&b);
        let mut got = BitSet::new(300);
        got.intersect_into(&a, &b);
        assert_eq!(got, expect);
        assert_eq!(a.intersect_count(&b), expect.len());

        let mut union = a.clone();
        union.union_with(&b);
        assert_eq!(a.union_count(&b), union.len());

        let mut diff = a.clone();
        diff.difference_with(&b);
        assert_eq!(a.and_not_first(&b), diff.first());
        assert_eq!(a.and_not_next(&b, 65), diff.next_at_or_after(65));

        expect = a.intersection(&b);
        let mut t = a.intersection(&c);
        expect.union_with(&t);
        t = b.intersection(&c);
        expect.union_with(&t);
        got.majority_into(&a, &b, &c);
        assert_eq!(got, expect);

        expect = a.intersection(&b);
        t = c.intersection(&d);
        expect.union_with(&t);
        got.intersect2_union_into(&a, &b, &c, &d);
        assert_eq!(got, expect);

        let weights: Vec<u64> = (0..300).map(|v| v as u64 + 1).collect();
        assert_eq!(
            a.weight_sum(&weights),
            a.iter().map(|v| weights[v]).sum::<u64>()
        );
        let sum = got.intersect_into_weight_sum(&a, &b, &weights);
        assert_eq!(got, a.intersection(&b));
        assert_eq!(sum, got.iter().map(|v| weights[v]).sum::<u64>());
    }

    #[test]
    fn masked_below_kernels_match_iteration() {
        let mut a = BitSet::new(200);
        a.extend([1, 63, 64, 100, 199]);
        let mut b = BitSet::new(200);
        b.extend([1, 63, 64, 150]);
        for limit in [0usize, 1, 2, 63, 64, 65, 100, 101, 200] {
            let subset = a.iter().take_while(|&v| v < limit).all(|v| b.contains(v));
            assert_eq!(a.is_subset_below(&b, limit), subset, "limit {limit}");
            let disjoint = a.iter().take_while(|&v| v < limit).all(|v| !b.contains(v));
            assert_eq!(a.is_disjoint_below(&b, limit), disjoint, "limit {limit}");
        }
    }

    #[test]
    fn subset_and_disjoint() {
        let mut a = BitSet::new(10);
        a.extend([1, 2]);
        let mut b = BitSet::new(10);
        b.extend([1, 2, 3]);
        let mut c = BitSet::new(10);
        c.extend([7]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn iteration_crosses_word_boundaries() {
        let mut s = BitSet::new(200);
        s.extend([0, 63, 64, 127, 128, 199]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127, 128, 199]);
        assert_eq!(s.first(), Some(0));
    }

    #[test]
    fn empty_set_has_no_first() {
        let s = BitSet::new(10);
        assert_eq!(s.first(), None);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::new(4);
        s.insert(4);
    }

    #[test]
    fn next_at_or_after_scans_across_words() {
        let mut s = BitSet::new(200);
        s.extend([0, 63, 64, 127, 199]);
        assert_eq!(s.next_at_or_after(0), Some(0));
        assert_eq!(s.next_at_or_after(1), Some(63));
        assert_eq!(s.next_at_or_after(63), Some(63));
        assert_eq!(s.next_at_or_after(64), Some(64));
        assert_eq!(s.next_at_or_after(65), Some(127));
        assert_eq!(s.next_at_or_after(128), Some(199));
        assert_eq!(s.next_at_or_after(199), Some(199));
        assert_eq!(s.next_at_or_after(200), None);
        assert_eq!(BitSet::new(0).next_at_or_after(0), None);
    }

    #[test]
    fn cursor_iteration_matches_iter() {
        let mut s = BitSet::new(300);
        s.extend([3, 64, 65, 191, 192, 299]);
        let mut cursor = Vec::new();
        let mut from = 0;
        while let Some(i) = s.next_at_or_after(from) {
            from = i + 1;
            cursor.push(i);
        }
        assert_eq!(cursor, s.iter().collect::<Vec<_>>());
    }

    #[test]
    fn copy_from_overwrites_in_place() {
        let mut dst = BitSet::new(100);
        dst.extend([1, 2, 3]);
        let mut src = BitSet::new(100);
        src.extend([70, 99]);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.copy_from(&BitSet::new(100));
        assert!(dst.is_empty());
    }

    #[test]
    #[should_panic(expected = "equal capacities")]
    fn copy_from_rejects_capacity_mismatch() {
        let mut dst = BitSet::new(10);
        dst.copy_from(&BitSet::new(11));
    }
}
