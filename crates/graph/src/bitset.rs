//! Fixed-capacity bitsets for vertex sets.

/// A fixed-capacity set of small integers backed by `u64` words.
///
/// `BitSet` is the workhorse vertex-set representation of this crate: all
/// graph algorithms here operate on graphs with at most a few hundred
/// vertices, where a flat word array beats any pointer-based set.
///
/// # Example
///
/// ```
/// use recopack_graph::BitSet;
///
/// let mut s = BitSet::new(70);
/// s.insert(3);
/// s.insert(69);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 69]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set containing all of `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for w in &mut s.words {
            *w = !0;
        }
        s.trim();
        s
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.capacity;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= !0 >> extra;
            }
        }
    }

    /// Inserts `i`, returning whether it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes `i`, returning whether it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Tests membership of `i`.
    pub fn contains(&self, i: usize) -> bool {
        i < self.capacity && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// In-place intersection with `other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union with `other`.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference: removes every element of `other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns the intersection as a new set.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Whether `self` and `other` share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Whether every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// The smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// The smallest element `>= i`, if any.
    ///
    /// Enables allocation-free cursor iteration over a set that may be
    /// mutated between steps (unlike [`BitSet::iter`], which borrows the
    /// set for its whole lifetime):
    ///
    /// ```
    /// use recopack_graph::BitSet;
    ///
    /// let mut s = BitSet::new(10);
    /// s.extend([2, 5, 9]);
    /// let mut from = 0;
    /// let mut seen = Vec::new();
    /// while let Some(i) = s.next_at_or_after(from) {
    ///     from = i + 1;
    ///     seen.push(i);
    /// }
    /// assert_eq!(seen, vec![2, 5, 9]);
    /// ```
    pub fn next_at_or_after(&self, i: usize) -> Option<usize> {
        if i >= self.capacity {
            return None;
        }
        let (wi, b) = (i / 64, i % 64);
        let masked = self.words[wi] & (!0u64 << b);
        if masked != 0 {
            return Some(wi * 64 + masked.trailing_zeros() as usize);
        }
        for (offset, &w) in self.words[wi + 1..].iter().enumerate() {
            if w != 0 {
                return Some((wi + 1 + offset) * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Overwrites `self` with the contents of `other` without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn copy_from(&mut self, other: &BitSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "copy_from requires equal capacities"
        );
        self.words.copy_from_slice(&other.words);
    }

    /// Iterates over elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects elements into a set sized by the largest element.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let b = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + b);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(100);
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn full_respects_capacity() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn set_operations() {
        let a: BitSet = [1, 2, 3, 64].into_iter().collect();
        let b: BitSet = [2, 3, 4].into_iter().collect();
        // FromIterator sizes by max element; re-create on common capacity.
        let mut a2 = BitSet::new(65);
        a2.extend(a.iter());
        let mut b2 = BitSet::new(65);
        b2.extend(b.iter());
        let i = a2.intersection(&b2);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);
        let mut u = a2.clone();
        u.union_with(&b2);
        assert_eq!(u.len(), 5);
        let mut d = a2.clone();
        d.difference_with(&b2);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 64]);
    }

    #[test]
    fn subset_and_disjoint() {
        let mut a = BitSet::new(10);
        a.extend([1, 2]);
        let mut b = BitSet::new(10);
        b.extend([1, 2, 3]);
        let mut c = BitSet::new(10);
        c.extend([7]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn iteration_crosses_word_boundaries() {
        let mut s = BitSet::new(200);
        s.extend([0, 63, 64, 127, 128, 199]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127, 128, 199]);
        assert_eq!(s.first(), Some(0));
    }

    #[test]
    fn empty_set_has_no_first() {
        let s = BitSet::new(10);
        assert_eq!(s.first(), None);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::new(4);
        s.insert(4);
    }

    #[test]
    fn next_at_or_after_scans_across_words() {
        let mut s = BitSet::new(200);
        s.extend([0, 63, 64, 127, 199]);
        assert_eq!(s.next_at_or_after(0), Some(0));
        assert_eq!(s.next_at_or_after(1), Some(63));
        assert_eq!(s.next_at_or_after(63), Some(63));
        assert_eq!(s.next_at_or_after(64), Some(64));
        assert_eq!(s.next_at_or_after(65), Some(127));
        assert_eq!(s.next_at_or_after(128), Some(199));
        assert_eq!(s.next_at_or_after(199), Some(199));
        assert_eq!(s.next_at_or_after(200), None);
        assert_eq!(BitSet::new(0).next_at_or_after(0), None);
    }

    #[test]
    fn cursor_iteration_matches_iter() {
        let mut s = BitSet::new(300);
        s.extend([3, 64, 65, 191, 192, 299]);
        let mut cursor = Vec::new();
        let mut from = 0;
        while let Some(i) = s.next_at_or_after(from) {
            from = i + 1;
            cursor.push(i);
        }
        assert_eq!(cursor, s.iter().collect::<Vec<_>>());
    }

    #[test]
    fn copy_from_overwrites_in_place() {
        let mut dst = BitSet::new(100);
        dst.extend([1, 2, 3]);
        let mut src = BitSet::new(100);
        src.extend([70, 99]);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.copy_from(&BitSet::new(100));
        assert!(dst.is_empty());
    }

    #[test]
    #[should_panic(expected = "equal capacities")]
    fn copy_from_rejects_capacity_mismatch() {
        let mut dst = BitSet::new(10);
        dst.copy_from(&BitSet::new(11));
    }
}
