//! Lexicographic breadth-first search.

use crate::DenseGraph;

/// Computes a lexicographic BFS ordering of the graph.
///
/// Lex-BFS visits vertices so that, on chordal graphs, the *reverse* of the
/// returned order is a perfect elimination ordering — the fact underlying the
/// linear-time chordality test of Rose–Tarjan–Lueker used by
/// [`chordal::is_chordal`](crate::chordal::is_chordal).
///
/// This implementation is the simple `O(n^2)` partition-refinement variant,
/// which is optimal for the dense bitset representation used here.
///
/// # Example
///
/// ```
/// use recopack_graph::{lex_bfs, DenseGraph};
///
/// let g = DenseGraph::from_edges(3, [(0, 1), (1, 2)]);
/// let order = lex_bfs(&g);
/// assert_eq!(order.len(), 3);
/// ```
pub fn lex_bfs(g: &DenseGraph) -> Vec<usize> {
    let n = g.vertex_count();
    // Partition refinement over a list of cells; each cell is a Vec of
    // unvisited vertices sharing the same label prefix.
    let mut cells: Vec<Vec<usize>> = if n == 0 {
        vec![]
    } else {
        vec![(0..n).collect()]
    };
    let mut order = Vec::with_capacity(n);
    while let Some(first_cell) = cells.first_mut() {
        let v = first_cell.pop().expect("cells are never left empty");
        if first_cell.is_empty() {
            cells.remove(0);
        }
        order.push(v);
        // Split every cell into (neighbors of v, non-neighbors of v),
        // neighbors moving in front.
        let mut new_cells = Vec::with_capacity(cells.len() * 2);
        for cell in cells.drain(..) {
            let (nb, rest): (Vec<usize>, Vec<usize>) =
                cell.into_iter().partition(|&u| g.has_edge(u, v));
            if !nb.is_empty() {
                new_cells.push(nb);
            }
            if !rest.is_empty() {
                new_cells.push(rest);
            }
        }
        cells = new_cells;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visits_every_vertex_once() {
        let g = DenseGraph::from_edges(5, [(0, 1), (1, 2), (2, 3)]);
        let mut order = lex_bfs(&g);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_graph() {
        let g = DenseGraph::new(0);
        assert!(lex_bfs(&g).is_empty());
    }

    #[test]
    fn neighbors_of_start_come_before_non_neighbors() {
        // Star centered at 0: after visiting 0 (or whichever vertex is first),
        // its neighbors must precede non-neighbors among later visits.
        let g = DenseGraph::from_edges(4, [(0, 1), (0, 2)]);
        let order = lex_bfs(&g);
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        let first = order[0];
        // Vertex 3 is isolated; it must come last unless it was the start.
        if first != 3 {
            assert_eq!(order[3], 3);
        }
        let _ = pos;
    }
}
