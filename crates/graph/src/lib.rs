//! Dense small-graph algorithms used by the packing-class solver.
//!
//! The packing-class method of Fekete–Schepers–Köhler–Teich works on
//! *component graphs* over the set of tasks — one vertex per task, at most a
//! few dozen vertices in any realistic FPGA reconfiguration instance. This
//! crate therefore optimizes for **small, dense** graphs: adjacency is a
//! bitset matrix with packed 256-bit-block rows, vertex sets are
//! block-layout [`BitSet`]s (stored inline, allocation-free, up to 256
//! vertices) with fused wide-word kernels, and all algorithms are exact.
//!
//! Provided machinery:
//!
//! * [`BitSet`] — fixed-capacity bitset for vertex sets;
//! * [`DenseGraph`] — undirected graph with bitset adjacency rows;
//! * [`PairIndex`] — triangular indexing of unordered vertex pairs, the
//!   address space of the solver's edge-state tables;
//! * [`lex_bfs`] — lexicographic breadth-first search;
//! * [`chordal`] — perfect-elimination orderings, chordality,
//!   maximal cliques of chordal graphs;
//! * [`cliques`] — exact maximum-weight clique /
//!   independent-set search (Bron–Kerbosch style with weight pruning);
//! * [`induced`] — induced-`C4` detection used by the C1
//!   pruning rule of the packing-class search.
//!
//! # Example
//!
//! ```
//! use recopack_graph::DenseGraph;
//!
//! // A 4-cycle is not chordal; adding a chord makes it chordal.
//! let mut g = DenseGraph::new(4);
//! for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
//!     g.add_edge(u, v);
//! }
//! assert!(!recopack_graph::chordal::is_chordal(&g));
//! g.add_edge(0, 2);
//! assert!(recopack_graph::chordal::is_chordal(&g));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
pub mod chordal;
pub mod cliques;
mod dense;
pub mod induced;
mod lexbfs;
mod pairs;
pub mod pqtree;

pub use bitset::BitSet;
pub use dense::DenseGraph;
pub use lexbfs::lex_bfs;
pub use pairs::PairIndex;
