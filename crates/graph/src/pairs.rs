//! Triangular indexing of unordered vertex pairs.

/// Maps unordered pairs `{u, v}` of `0..n` to a dense index `0..n*(n-1)/2`.
///
/// The packing-class solver keeps one state per (pair, dimension); this type
/// is the address computation for those tables, kept in one place so the
/// layout can never drift between the solver and its propagators.
///
/// Pairs are ordered colexicographically: all pairs `{u, v}` with `v` fixed
/// and `u < v` are contiguous, i.e. `index({u, v}) = v*(v-1)/2 + u`.
///
/// # Example
///
/// ```
/// use recopack_graph::PairIndex;
///
/// let idx = PairIndex::new(4);
/// assert_eq!(idx.pair_count(), 6);
/// assert_eq!(idx.index(2, 1), idx.index(1, 2));
/// let (u, v) = idx.pair(idx.index(1, 2));
/// assert_eq!((u, v), (1, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairIndex {
    n: usize,
}

impl PairIndex {
    /// Creates an index over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self { n }
    }

    /// The number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// The number of unordered pairs, `n*(n-1)/2`.
    pub fn pair_count(&self) -> usize {
        self.n * self.n.saturating_sub(1) / 2
    }

    /// The dense index of the unordered pair `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` or either vertex is out of range.
    pub fn index(&self, u: usize, v: usize) -> usize {
        assert!(u != v, "pair requires distinct vertices, got {u} twice");
        assert!(u < self.n && v < self.n, "vertex out of range");
        let (lo, hi) = if u < v { (u, v) } else { (v, u) };
        hi * (hi - 1) / 2 + lo
    }

    /// The pair `(u, v)` with `u < v` for a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `p >= pair_count()`.
    pub fn pair(&self, p: usize) -> (usize, usize) {
        assert!(p < self.pair_count(), "pair index {p} out of range");
        // hi = floor((1 + sqrt(1 + 8p)) / 2); refine to be exact.
        let mut hi = ((1.0 + (1.0 + 8.0 * p as f64).sqrt()) / 2.0) as usize;
        while hi * (hi - 1) / 2 > p {
            hi -= 1;
        }
        while (hi + 1) * hi / 2 <= p {
            hi += 1;
        }
        let lo = p - hi * (hi - 1) / 2;
        (lo, hi)
    }

    /// Iterates over all pairs as `(index, u, v)` with `u < v`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        (1..self.n).flat_map(move |v| (0..v).map(move |u| (self.index(u, v), u, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_small() {
        let idx = PairIndex::new(6);
        let mut seen = vec![false; idx.pair_count()];
        for v in 0..6 {
            for u in 0..v {
                let p = idx.index(u, v);
                assert!(!seen[p], "index collision at {p}");
                seen[p] = true;
                assert_eq!(idx.pair(p), (u, v));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn symmetric() {
        let idx = PairIndex::new(10);
        assert_eq!(idx.index(3, 7), idx.index(7, 3));
    }

    #[test]
    fn iter_covers_all_pairs_once() {
        let idx = PairIndex::new(7);
        let items: Vec<_> = idx.iter().collect();
        assert_eq!(items.len(), idx.pair_count());
        for (p, u, v) in items {
            assert!(u < v);
            assert_eq!(idx.index(u, v), p);
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(PairIndex::new(0).pair_count(), 0);
        assert_eq!(PairIndex::new(1).pair_count(), 0);
        assert_eq!(PairIndex::new(2).pair_count(), 1);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn same_vertex_panics() {
        PairIndex::new(3).index(1, 1);
    }

    proptest! {
        #[test]
        fn roundtrip_random(n in 2usize..60, seed in 0usize..1000) {
            let idx = PairIndex::new(n);
            let p = seed % idx.pair_count();
            let (u, v) = idx.pair(p);
            prop_assert!(u < v && v < n);
            prop_assert_eq!(idx.index(u, v), p);
        }
    }
}
