//! Chordality: perfect elimination orderings and maximal cliques.
//!
//! Interval graphs — the class condition **C1** of packing classes — are
//! exactly the chordal graphs whose complement is a comparability graph
//! (Gilmore–Hoffman). This module provides the chordal half; the
//! comparability half lives in `recopack-order`.

use crate::{lex_bfs, BitSet, DenseGraph};

/// Whether `order` (visiting order; its reverse is the elimination order) is
/// such that `order` reversed is a perfect elimination ordering of `g`.
///
/// A perfect elimination ordering eliminates vertices so that the *later*
/// neighbors of each vertex form a clique. Following Rose–Tarjan–Lueker we
/// verify the standard "parent" condition: for each vertex `v`, the earlier
/// neighbors of `v` minus the latest one must be neighbors of that latest one.
pub fn is_perfect_elimination(g: &DenseGraph, order: &[usize]) -> bool {
    let n = g.vertex_count();
    debug_assert_eq!(order.len(), n);
    let mut pos = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v] = i;
    }
    // Interpreting `order` as a Lex-BFS visiting order, the reverse is the
    // elimination order; "earlier neighbors" (in visiting order) of v are the
    // ones eliminated after v.
    for (i, &v) in order.iter().enumerate() {
        // Earlier neighbors of v in visiting order.
        let earlier: Vec<usize> = g.neighbors(v).iter().filter(|&u| pos[u] < i).collect();
        let Some(&parent) = earlier.iter().max_by_key(|&&u| pos[u]) else {
            continue;
        };
        for &u in &earlier {
            if u != parent && !g.has_edge(u, parent) {
                return false;
            }
        }
    }
    true
}

/// Tests whether `g` is chordal (every cycle of length ≥ 4 has a chord).
///
/// Runs Lex-BFS and verifies the perfect-elimination property of the
/// resulting order, which succeeds iff the graph is chordal.
///
/// # Example
///
/// ```
/// use recopack_graph::{chordal::is_chordal, DenseGraph};
///
/// let c4 = DenseGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
/// assert!(!is_chordal(&c4));
/// ```
pub fn is_chordal(g: &DenseGraph) -> bool {
    let order = lex_bfs(g);
    is_perfect_elimination(g, &order)
}

/// The maximal cliques of a **chordal** graph, one per elimination step that
/// is not dominated by a later one.
///
/// Returns `None` if the graph is not chordal. A chordal graph on `n`
/// vertices has at most `n` maximal cliques; this enumerates them via the
/// Lex-BFS order.
pub fn maximal_cliques_chordal(g: &DenseGraph) -> Option<Vec<BitSet>> {
    let n = g.vertex_count();
    let order = lex_bfs(g);
    if !is_perfect_elimination(g, &order) {
        return None;
    }
    let mut pos = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v] = i;
    }
    // Candidate clique per vertex: v plus its earlier neighbors (a clique by
    // the perfect-elimination property). Keep the non-dominated ones.
    let mut cand: Vec<BitSet> = Vec::with_capacity(n);
    for (i, &v) in order.iter().enumerate() {
        let mut c = BitSet::new(n);
        c.insert(v);
        for u in g.neighbors(v).iter() {
            if pos[u] < i {
                c.insert(u);
            }
        }
        cand.push(c);
    }
    let mut maximal = Vec::new();
    'outer: for (i, c) in cand.iter().enumerate() {
        for (j, d) in cand.iter().enumerate() {
            if i != j && c.is_subset(d) && (c != d || j < i) {
                continue 'outer;
            }
        }
        maximal.push(c.clone());
    }
    Some(maximal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cycle(n: usize) -> DenseGraph {
        DenseGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    fn complete(n: usize) -> DenseGraph {
        let mut g = DenseGraph::new(n);
        for v in 1..n {
            for u in 0..v {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Brute-force chordality: check every subset cycle of length >= 4 has a chord
    /// by verifying no induced cycle C_k (k >= 4) exists.
    fn is_chordal_brute(g: &DenseGraph) -> bool {
        let n = g.vertex_count();
        // Enumerate all vertex subsets of size >= 4, check if the induced
        // subgraph is a cycle (2-regular connected).
        for mask in 0u32..(1 << n) {
            let verts: Vec<usize> = (0..n).filter(|&v| mask & (1 << v) != 0).collect();
            if verts.len() < 4 {
                continue;
            }
            let set: BitSet = {
                let mut s = BitSet::new(n);
                s.extend(verts.iter().copied());
                s
            };
            let (sub, _) = g.induced_subgraph(&set);
            let k = sub.vertex_count();
            let two_regular = (0..k).all(|v| sub.degree(v) == 2);
            if two_regular && sub.connected_components().len() == 1 {
                return false;
            }
        }
        true
    }

    fn random_graph(n: usize, density: f64, seed: u64) -> DenseGraph {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut g = DenseGraph::new(n);
        for v in 1..n {
            for u in 0..v {
                if next() < density {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    #[test]
    fn cycles_are_not_chordal_above_three() {
        assert!(is_chordal(&cycle(3)));
        assert!(!is_chordal(&cycle(4)));
        assert!(!is_chordal(&cycle(5)));
        assert!(!is_chordal(&cycle(6)));
    }

    #[test]
    fn trees_and_complete_graphs_are_chordal() {
        let tree = DenseGraph::from_edges(6, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]);
        assert!(is_chordal(&tree));
        assert!(is_chordal(&complete(5)));
        assert!(is_chordal(&DenseGraph::new(0)));
        assert!(is_chordal(&DenseGraph::new(3)));
    }

    #[test]
    fn interval_like_graph_is_chordal() {
        // Intervals [0,2], [1,3], [2,4], [5,6]: overlap graph.
        let g = DenseGraph::from_edges(4, [(0, 1), (1, 2), (0, 2)]);
        assert!(is_chordal(&g));
    }

    #[test]
    fn maximal_cliques_of_path() {
        let g = DenseGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let cliques = maximal_cliques_chordal(&g).expect("path is chordal");
        assert_eq!(cliques.len(), 3);
        for c in &cliques {
            assert_eq!(c.len(), 2);
            assert!(g.is_clique(c));
        }
    }

    #[test]
    fn maximal_cliques_of_complete_graph() {
        let g = complete(4);
        let cliques = maximal_cliques_chordal(&g).expect("complete graph is chordal");
        assert_eq!(cliques.len(), 1);
        assert_eq!(cliques[0].len(), 4);
    }

    #[test]
    fn cliques_none_for_non_chordal() {
        assert!(maximal_cliques_chordal(&cycle(4)).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn matches_brute_force(n in 1usize..9, seed in 0u64..200, d in 0.2f64..0.9) {
            let g = random_graph(n, d, seed);
            prop_assert_eq!(is_chordal(&g), is_chordal_brute(&g));
        }

        #[test]
        fn enumerated_cliques_are_maximal_cliques(n in 1usize..9, seed in 0u64..100) {
            let g = random_graph(n, 0.5, seed);
            if let Some(cliques) = maximal_cliques_chordal(&g) {
                for c in &cliques {
                    prop_assert!(g.is_clique(c));
                    // maximality: no vertex outside c is adjacent to all of c
                    for v in 0..n {
                        if !c.contains(v) {
                            let dominates = c.iter().all(|u| g.has_edge(u, v));
                            prop_assert!(!dominates, "clique {:?} not maximal, {} extends it", c, v);
                        }
                    }
                }
                // every edge is covered by some clique
                for (u, v) in g.edges() {
                    prop_assert!(cliques.iter().any(|c| c.contains(u) && c.contains(v)));
                }
            }
        }
    }
}
