//! Dense undirected graphs with bitset adjacency rows.

use crate::BitSet;

/// An undirected graph on vertices `0..n` with bitset adjacency rows.
///
/// Optimized for the small dense graphs of the packing-class method
/// (component graphs over task sets). No self-loops, no multi-edges.
///
/// # Example
///
/// ```
/// use recopack_graph::DenseGraph;
///
/// let mut g = DenseGraph::new(3);
/// g.add_edge(0, 1);
/// assert!(g.has_edge(1, 0));
/// assert_eq!(g.degree(0), 1);
/// let c = g.complement();
/// assert!(!c.has_edge(0, 1));
/// assert!(c.has_edge(0, 2));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DenseGraph {
    n: usize,
    adj: Vec<BitSet>,
    edge_count: usize,
}

impl DenseGraph {
    /// Creates an edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            adj: (0..n).map(|_| BitSet::new(n)).collect(),
            edge_count: 0,
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n` or an edge is a self-loop.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = Self::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds the edge `{u, v}`, returning whether it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` or either endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u != v, "self-loop at {u}");
        assert!(u < self.n && v < self.n, "vertex out of range");
        let added = self.adj[u].insert(v);
        self.adj[v].insert(u);
        if added {
            self.edge_count += 1;
        }
        added
    }

    /// Removes the edge `{u, v}`, returning whether it was present.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        let removed = self.adj[u].remove(v);
        self.adj[v].remove(u);
        if removed {
            self.edge_count -= 1;
        }
        removed
    }

    /// Whether the edge `{u, v}` is present.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.n && self.adj[u].contains(v)
    }

    /// The neighborhood of `u` as a bitset.
    pub fn neighbors(&self, u: usize) -> &BitSet {
        &self.adj[u]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Iterates over all edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |u| {
            self.adj[u]
                .iter()
                .filter(move |&v| v > u)
                .map(move |v| (u, v))
        })
    }

    /// The complement graph (edges and non-edges exchanged).
    pub fn complement(&self) -> DenseGraph {
        let mut g = DenseGraph::new(self.n);
        for v in 1..self.n {
            for u in 0..v {
                if !self.has_edge(u, v) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// The subgraph induced by `verts`, with vertices relabeled by their
    /// rank in `verts`; returns the graph and the old-vertex-per-new-vertex map.
    pub fn induced_subgraph(&self, verts: &BitSet) -> (DenseGraph, Vec<usize>) {
        let map: Vec<usize> = verts.iter().collect();
        let mut g = DenseGraph::new(map.len());
        for (i, &u) in map.iter().enumerate() {
            for (j, &v) in map.iter().enumerate().take(i) {
                if self.has_edge(u, v) {
                    g.add_edge(j, i);
                }
            }
        }
        (g, map)
    }

    /// Whether `set` is a clique (pairwise adjacent). Allocation-free: the
    /// solver asks this on every fixed comparability edge. Each member `u`
    /// is checked against its packed adjacency row with one masked-word
    /// sweep over the elements below `u`, instead of a per-edge loop.
    pub fn is_clique(&self, set: &BitSet) -> bool {
        set.iter().all(|u| set.is_subset_below(&self.adj[u], u))
    }

    /// Whether `set` is an independent set (pairwise non-adjacent).
    pub fn is_independent_set(&self, set: &BitSet) -> bool {
        set.iter().all(|u| set.is_disjoint_below(&self.adj[u], u))
    }

    /// Connected components, each as a sorted vertex list.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let mut seen = BitSet::new(self.n);
        let mut comps = Vec::new();
        for s in 0..self.n {
            if seen.contains(s) {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![s];
            seen.insert(s);
            while let Some(u) = stack.pop() {
                comp.push(u);
                for v in self.adj[u].iter() {
                    if seen.insert(v) {
                        stack.push(v);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }
}

impl std::fmt::Debug for DenseGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DenseGraph(n={}, edges=", self.n)?;
        f.debug_list().entries(self.edges()).finish()?;
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn random_graph(n: usize, density: f64, seed: u64) -> DenseGraph {
        // Simple LCG so the test has no dependency on rand.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut g = DenseGraph::new(n);
        for v in 1..n {
            for u in 0..v {
                if next() < density {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    #[test]
    fn add_remove_edges() {
        let mut g = DenseGraph::new(4);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0));
        assert_eq!(g.edge_count(), 1);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn complement_of_triangle_plus_isolated() {
        let g = DenseGraph::from_edges(4, [(0, 1), (1, 2), (0, 2)]);
        let c = g.complement();
        assert_eq!(c.edge_count(), 3);
        assert!(c.has_edge(0, 3) && c.has_edge(1, 3) && c.has_edge(2, 3));
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = DenseGraph::from_edges(5, [(0, 2), (2, 4), (1, 3)]);
        let verts: BitSet = {
            let mut s = BitSet::new(5);
            s.extend([0, 2, 4]);
            s
        };
        let (sub, map) = g.induced_subgraph(&verts);
        assert_eq!(map, vec![0, 2, 4]);
        assert!(sub.has_edge(0, 1) && sub.has_edge(1, 2) && !sub.has_edge(0, 2));
    }

    #[test]
    fn clique_and_independent_set_checks() {
        let g = DenseGraph::from_edges(4, [(0, 1), (1, 2), (0, 2)]);
        let mut tri = BitSet::new(4);
        tri.extend([0, 1, 2]);
        assert!(g.is_clique(&tri));
        assert!(!g.is_independent_set(&tri));
        let mut pair = BitSet::new(4);
        pair.extend([0, 3]);
        assert!(g.is_independent_set(&pair));
    }

    #[test]
    fn components_of_two_paths() {
        let g = DenseGraph::from_edges(6, [(0, 1), (1, 2), (3, 4)]);
        let comps = g.connected_components();
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3, 4], vec![5]]);
    }

    proptest! {
        #[test]
        fn complement_is_involution(n in 1usize..20, seed in 0u64..50) {
            let g = random_graph(n, 0.4, seed);
            prop_assert_eq!(g.complement().complement(), g);
        }

        #[test]
        fn edge_counts_partition_pairs(n in 1usize..20, seed in 0u64..50) {
            let g = random_graph(n, 0.5, seed);
            let c = g.complement();
            prop_assert_eq!(g.edge_count() + c.edge_count(), n * (n - 1) / 2);
        }
    }
}
