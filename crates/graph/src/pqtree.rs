//! PQ-trees: the consecutive-ones property (Booth–Lueker).
//!
//! A PQ-tree over a universe `0..n` represents a set of permutations closed
//! under the children-reordering rules: a **P** node's children may be
//! permuted arbitrarily, a **Q** node's children may only be reversed.
//! [`PqTree::reduce`] restricts the represented set to permutations where a
//! given subset appears consecutively — the primitive behind
//! consecutive-ones testing, planarity, and interval-graph recognition.
//! Korte & Möhring's algorithm for transitive orientations extending a
//! partial order (paper §4.2) runs on *modified* PQ-trees; this module
//! provides the classic data structure and the consecutive-ones driver
//! behind the Fulkerson–Gross interval-graph recognizer
//! (`recopack_order::interval::interval_representation`).
//!
//! The implementation follows the Booth–Lueker templates (P1–P6, Q1–Q3) in
//! their plain `O(n)`-per-node form (no amortized bookkeeping); each
//! [`reduce`](PqTree::reduce) is `O(tree)` which is plenty for solver-sized
//! universes.
//!
//! # Example
//!
//! ```
//! use recopack_graph::pqtree::consecutive_ones;
//!
//! // Rows {0,1}, {1,2}: orderable as 0,1,2.
//! let order = consecutive_ones(3, &[vec![0, 1], vec![1, 2]]).expect("C1P holds");
//! assert_eq!(order.len(), 3);
//!
//! // Rows {0,1}, {1,2}, {0,2} on three elements cannot all be consecutive
//! // ... actually any pair is consecutive in a 3-permutation; add a 4th
//! // element to break it: {0,1}, {1,2}, {0,2} with element 3 inside.
//! assert!(consecutive_ones(4, &[vec![0, 1], vec![1, 2], vec![0, 3, 2]]).is_none());
//! ```

use crate::BitSet;

/// Node label during a reduction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Label {
    Empty,
    Full,
    /// A Q node whose frontier is empty-then-full (after normalization).
    Partial,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Kind {
    Leaf(usize),
    P,
    Q,
}

#[derive(Debug, Clone)]
struct Node {
    kind: Kind,
    children: Vec<usize>,
    label: Label,
}

/// A PQ-tree over the universe `0..n`.
///
/// Created universal (all permutations); each [`reduce`](Self::reduce)
/// constrains one subset to be consecutive. [`frontier`](Self::frontier)
/// reads off one represented permutation.
#[derive(Debug, Clone)]
pub struct PqTree {
    nodes: Vec<Node>,
    root: usize,
    n: usize,
}

impl PqTree {
    /// The universal tree over `0..n`: a single P node over all leaves
    /// (or a lone leaf / empty tree for tiny universes).
    pub fn new(n: usize) -> Self {
        let mut nodes = Vec::with_capacity(n + 1);
        for e in 0..n {
            nodes.push(Node {
                kind: Kind::Leaf(e),
                children: Vec::new(),
                label: Label::Empty,
            });
        }
        let root = if n == 1 {
            0
        } else {
            nodes.push(Node {
                kind: Kind::P,
                children: (0..n).collect(),
                label: Label::Empty,
            });
            nodes.len() - 1
        };
        Self { nodes, root, n }
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// One permutation represented by the tree (left-to-right leaf order).
    pub fn frontier(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.n);
        if self.n == 0 {
            return out;
        }
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match &self.nodes[id].kind {
                Kind::Leaf(e) => out.push(*e),
                _ => {
                    for &c in self.nodes[id].children.iter().rev() {
                        stack.push(c);
                    }
                }
            }
        }
        out
    }

    fn alloc(&mut self, kind: Kind, children: Vec<usize>, label: Label) -> usize {
        self.nodes.push(Node {
            kind,
            children,
            label,
        });
        self.nodes.len() - 1
    }

    /// Collapses pathological shapes: P/Q nodes with a single child are
    /// replaced by the child; a Q node with two children becomes a P node.
    fn normalize_node(&mut self, id: usize) -> usize {
        if matches!(self.nodes[id].kind, Kind::Leaf(_)) {
            return id;
        }
        if self.nodes[id].children.len() == 1 {
            return self.nodes[id].children[0];
        }
        if self.nodes[id].children.len() == 2 && self.nodes[id].kind == Kind::Q {
            self.nodes[id].kind = Kind::P;
        }
        id
    }

    /// Restricts the tree so the elements of `s` are consecutive in every
    /// represented permutation. Returns `false` (leaving the tree in an
    /// unspecified but internally consistent state) when impossible.
    ///
    /// # Panics
    ///
    /// Panics if `s` contains an element `>= universe()`.
    pub fn reduce(&mut self, s: &BitSet) -> bool {
        let size = s.len();
        if size <= 1 || size == self.n {
            return true; // trivially consecutive
        }
        // The root of the pertinent subtree is the LCA of the full leaves;
        // recursion below finds it implicitly: process children first, and
        // the unique node whose subtree contains all of S applies the
        // "root" templates.
        match self.reduce_node(self.root, s) {
            Some(new_root) => {
                self.root = new_root;
                true
            }
            None => false,
        }
    }

    /// Recursive labeling + restructuring. Returns the (possibly replaced)
    /// node id, or `None` on failure. Afterwards the node's `label` is set.
    fn reduce_node(&mut self, id: usize, s: &BitSet) -> Option<usize> {
        // Count full leaves under each child to locate the pertinent root.
        let full_under = self.count_full(id, s);
        let total_full = s.len();
        if full_under == 0 {
            self.nodes[id].label = Label::Empty;
            return Some(id);
        }
        if let Kind::Leaf(_) = self.nodes[id].kind {
            self.nodes[id].label = Label::Full;
            return Some(id);
        }
        if full_under == self.subtree_size(id).min(total_full) && full_under == total_full {
            // This subtree contains all full leaves; if some child also
            // contains them all, recurse into it as the root path.
            let children = self.nodes[id].children.clone();
            for &c in &children {
                if self.count_full(c, s) == total_full {
                    // c is on the root path; this node only forwards.
                    let new_c = self.reduce_node(c, s)?;
                    let pos = self.nodes[id]
                        .children
                        .iter()
                        .position(|&x| x == c)
                        .expect("child present");
                    self.nodes[id].children[pos] = new_c;
                    self.nodes[id].label = Label::Empty; // unconstrained above
                    return Some(id);
                }
            }
            // This node IS the pertinent root.
            return self.apply_templates(id, s, true);
        }
        // Node strictly below the pertinent root (or a partial subtree).
        self.apply_templates(id, s, false)
    }

    fn subtree_size(&self, id: usize) -> usize {
        match &self.nodes[id].kind {
            Kind::Leaf(_) => 1,
            _ => self.nodes[id]
                .children
                .iter()
                .map(|&c| self.subtree_size(c))
                .sum(),
        }
    }

    fn count_full(&self, id: usize, s: &BitSet) -> usize {
        match &self.nodes[id].kind {
            Kind::Leaf(e) => usize::from(s.contains(*e)),
            _ => self.nodes[id]
                .children
                .iter()
                .map(|&c| self.count_full(c, s))
                .sum(),
        }
    }

    /// Booth–Lueker templates at `id`. `root` marks the pertinent root.
    /// Children are reduced recursively first.
    fn apply_templates(&mut self, id: usize, s: &BitSet, root: bool) -> Option<usize> {
        // Reduce children bottom-up.
        let children = self.nodes[id].children.clone();
        let mut new_children = Vec::with_capacity(children.len());
        for c in children {
            let nc = self.reduce_node(c, s)?;
            new_children.push(nc);
        }
        self.nodes[id].children = new_children;

        match self.nodes[id].kind.clone() {
            Kind::Leaf(e) => {
                self.nodes[id].label = if s.contains(e) {
                    Label::Full
                } else {
                    Label::Empty
                };
                Some(id)
            }
            Kind::P => self.reduce_p(id, root),
            Kind::Q => self.reduce_q(id, root),
        }
    }

    fn reduce_p(&mut self, id: usize, root: bool) -> Option<usize> {
        let children = self.nodes[id].children.clone();
        let empty: Vec<usize> = children
            .iter()
            .copied()
            .filter(|&c| self.nodes[c].label == Label::Empty)
            .collect();
        let full: Vec<usize> = children
            .iter()
            .copied()
            .filter(|&c| self.nodes[c].label == Label::Full)
            .collect();
        let partial: Vec<usize> = children
            .iter()
            .copied()
            .filter(|&c| self.nodes[c].label == Label::Partial)
            .collect();

        // P1: uniform children.
        if full.len() == children.len() {
            self.nodes[id].label = Label::Full;
            return Some(id);
        }
        if empty.len() == children.len() {
            self.nodes[id].label = Label::Empty;
            return Some(id);
        }

        // Group full children under one P node (used by several templates).
        let group_p = |tree: &mut Self, ids: &[usize], label: Label| -> Option<usize> {
            match ids.len() {
                0 => None,
                1 => Some(ids[0]),
                _ => Some(tree.alloc(Kind::P, ids.to_vec(), label)),
            }
        };

        match (partial.len(), root) {
            (0, true) => {
                // P2: root, no partial: group fulls under a new P child.
                let full_node = group_p(self, &full, Label::Full).expect("nonuniform");
                let mut kids = empty;
                kids.push(full_node);
                self.nodes[id].children = kids;
                self.nodes[id].label = Label::Empty; // done at root
                Some(self.normalize_node(id))
            }
            (0, false) => {
                // P3: non-root, no partial: become a partial Q
                // [empty-group, full-group].
                let empty_node = group_p(self, &empty, Label::Empty).expect("nonuniform");
                let full_node = group_p(self, &full, Label::Full).expect("nonuniform");
                let q = self.alloc(Kind::Q, vec![empty_node, full_node], Label::Partial);
                Some(q)
            }
            (1, true) => {
                // P4: root, one partial: fulls attach to the full end of the
                // partial Q; empties stay under this P node.
                let pq = partial[0];
                if let Some(full_node) = group_p(self, &full, Label::Full) {
                    self.nodes[pq].children.push(full_node); // full end = right
                }
                let mut kids = empty;
                kids.push(pq);
                self.nodes[id].children = kids;
                self.nodes[id].label = Label::Empty;
                Some(self.normalize_node(id))
            }
            (1, false) => {
                // P5: non-root, one partial: everything merges into the Q.
                let pq = partial[0];
                if let Some(full_node) = group_p(self, &full, Label::Full) {
                    self.nodes[pq].children.push(full_node);
                }
                if let Some(empty_node) = group_p(self, &empty, Label::Empty) {
                    self.nodes[pq].children.insert(0, empty_node);
                }
                self.nodes[pq].label = Label::Partial;
                Some(pq)
            }
            (2, true) => {
                // P6: root, two partials: merge as
                // [q1: empty..full] [fulls] [reversed q2: full..empty].
                let (q1, q2) = (partial[0], partial[1]);
                let mut merged = self.nodes[q1].children.clone();
                if let Some(full_node) = group_p(self, &full, Label::Full) {
                    merged.push(full_node);
                }
                let mut right = self.nodes[q2].children.clone();
                right.reverse();
                merged.extend(right);
                let q = self.alloc(Kind::Q, merged, Label::Empty);
                let mut kids = empty;
                kids.push(q);
                self.nodes[id].children = kids;
                self.nodes[id].label = Label::Empty;
                Some(self.normalize_node(id))
            }
            _ => None, // too many partial children
        }
    }

    fn reduce_q(&mut self, id: usize, root: bool) -> Option<usize> {
        // Normalize each partial child so its children run empty -> full,
        // then check the frontier pattern of labels.
        let children = self.nodes[id].children.clone();
        let labels: Vec<Label> = children.iter().map(|&c| self.nodes[c].label).collect();

        if labels.iter().all(|&l| l == Label::Full) {
            self.nodes[id].label = Label::Full;
            return Some(id);
        }
        if labels.iter().all(|&l| l == Label::Empty) {
            self.nodes[id].label = Label::Empty;
            return Some(id);
        }

        // Build the flattened child list, orienting partial children, and
        // verify the full block is consecutive (with partials only at its
        // boundaries).
        // Try both orientations of this Q node's child order.
        'orient: for flip in [false, true] {
            let mut order: Vec<usize> = children.clone();
            if flip {
                order.reverse();
            }
            let lab = |tree: &Self, c: usize| tree.nodes[c].label;
            // Pattern: empty* [partial] full* [partial] empty*  (root)
            //          empty* [partial] full*                   (non-root)
            let mut i = 0;
            let k = order.len();
            while i < k && lab(self, order[i]) == Label::Empty {
                i += 1;
            }
            let left_partial = if i < k && lab(self, order[i]) == Label::Partial {
                i += 1;
                Some(order[i - 1])
            } else {
                None
            };
            let full_start = i;
            while i < k && lab(self, order[i]) == Label::Full {
                i += 1;
            }
            let full_end = i;
            let right_partial = if i < k && lab(self, order[i]) == Label::Partial {
                i += 1;
                Some(order[i - 1])
            } else {
                None
            };
            let trailing_empty_start = i;
            while i < k && lab(self, order[i]) == Label::Empty {
                i += 1;
            }
            if i != k {
                continue 'orient;
            }
            let has_trailing = trailing_empty_start != k;
            let fully_trailing_empty = right_partial.is_some() || has_trailing;
            if !root && fully_trailing_empty {
                // Non-root must end with the full block (possibly via a
                // single left partial): pattern empty* partial? full*.
                if right_partial.is_some() || trailing_empty_start != k {
                    continue 'orient;
                }
            }
            let _ = full_start;
            let _ = full_end;

            // Splice partial children inline: left partial contributes
            // empty...full toward the full block; right partial reversed.
            let mut flat: Vec<usize> = Vec::with_capacity(k + 4);
            for &c in &order {
                if Some(c) == left_partial {
                    flat.extend(self.nodes[c].children.iter().copied());
                } else if Some(c) == right_partial {
                    let mut rev = self.nodes[c].children.clone();
                    rev.reverse();
                    flat.extend(rev);
                } else {
                    flat.push(c);
                }
            }
            self.nodes[id].children = flat;
            self.nodes[id].label = if root {
                Label::Empty
            } else if labels.iter().all(|&l| l != Label::Empty)
                && left_partial.is_none()
                && right_partial.is_none()
            {
                Label::Full
            } else {
                Label::Partial
            };
            // A non-root partial Q must present children empty -> full; the
            // chosen orientation already guarantees it.
            return Some(id);
        }
        None
    }
}

/// Tests the consecutive-ones property: is there an ordering of `0..n` in
/// which every given set is consecutive? Returns such an ordering, verified,
/// or `None`.
///
/// The returned ordering is checked against all sets before being returned,
/// so a `Some` is always correct; exhaustive tests back the `None` side.
pub fn consecutive_ones(n: usize, sets: &[Vec<usize>]) -> Option<Vec<usize>> {
    let mut tree = PqTree::new(n);
    for set in sets {
        let mut bits = BitSet::new(n);
        bits.extend(set.iter().copied());
        if !tree.reduce(&bits) {
            return None;
        }
    }
    let order = tree.frontier();
    debug_assert_eq!(order.len(), n);
    // Verify every set is consecutive in the frontier.
    let mut pos = vec![0usize; n];
    for (i, &e) in order.iter().enumerate() {
        pos[e] = i;
    }
    for set in sets {
        if set.is_empty() {
            continue;
        }
        let lo = set.iter().map(|&e| pos[e]).min().expect("nonempty");
        let hi = set.iter().map(|&e| pos[e]).max().expect("nonempty");
        if hi - lo + 1 != set.len() {
            return None;
        }
    }
    Some(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute force: try all permutations of 0..n.
    fn consecutive_ones_brute(n: usize, sets: &[Vec<usize>]) -> bool {
        fn permutations(n: usize) -> Vec<Vec<usize>> {
            if n == 0 {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            for p in permutations(n - 1) {
                for i in 0..=p.len() {
                    let mut q = p.clone();
                    q.insert(i, n - 1);
                    out.push(q);
                }
            }
            out
        }
        'perm: for perm in permutations(n) {
            let mut pos = vec![0usize; n];
            for (i, &e) in perm.iter().enumerate() {
                pos[e] = i;
            }
            for set in sets {
                if set.is_empty() {
                    continue;
                }
                let lo = set.iter().map(|&e| pos[e]).min().expect("nonempty");
                let hi = set.iter().map(|&e| pos[e]).max().expect("nonempty");
                if hi - lo + 1 != set.len() {
                    continue 'perm;
                }
            }
            return true;
        }
        false
    }

    #[test]
    fn trivial_cases() {
        assert!(consecutive_ones(0, &[]).is_some());
        assert!(consecutive_ones(1, &[vec![0]]).is_some());
        assert!(consecutive_ones(3, &[]).is_some());
        assert!(consecutive_ones(3, &[vec![0, 1, 2]]).is_some());
    }

    #[test]
    fn simple_chain() {
        let order =
            consecutive_ones(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]).expect("path structure");
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn known_negative() {
        // {0,1}, {1,2}, {0,2,3}: 0 and 2 must flank 1, but then {0,2,3}
        // cannot be consecutive without 1.
        assert!(consecutive_ones(4, &[vec![0, 1], vec![1, 2], vec![0, 2, 3]]).is_none());
    }

    #[test]
    fn overlapping_triples() {
        let sets = vec![vec![0, 1, 2], vec![1, 2, 3], vec![2, 3, 4]];
        let order = consecutive_ones(5, &sets).expect("staircase");
        // spot-verify
        let mut pos = [0usize; 5];
        for (i, &e) in order.iter().enumerate() {
            pos[e] = i;
        }
        for set in &sets {
            let lo = set.iter().map(|&e| pos[e]).min().expect("nonempty");
            let hi = set.iter().map(|&e| pos[e]).max().expect("nonempty");
            assert_eq!(hi - lo + 1, set.len());
        }
    }

    #[test]
    fn exhaustive_small_universes() {
        // All set families over n in {3, 4} with up to 3 nontrivial sets:
        // compare against brute force. Sets encoded as bitmasks 0..2^n.
        let mut checked = 0u32;
        for n in 3usize..=4 {
            let masks: Vec<u32> = (0..(1u32 << n))
                .filter(|m| m.count_ones() >= 2 && (m.count_ones() as usize) < n)
                .collect();
            let decode = |m: u32| -> Vec<usize> { (0..n).filter(|&b| m & (1 << b) != 0).collect() };
            for (i, &a) in masks.iter().enumerate() {
                for (j, &b) in masks.iter().enumerate().take(i + 1) {
                    for &c in masks.iter().take(j + 1) {
                        let sets = vec![decode(a), decode(b), decode(c)];
                        let ours = consecutive_ones(n, &sets).is_some();
                        let brute = consecutive_ones_brute(n, &sets);
                        assert_eq!(ours, brute, "disagreement on n={n}, sets={sets:?}");
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 50);
    }

    #[test]
    fn random_medium_universes_against_brute_force() {
        let mut state = 0x12345678u64;
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for _ in 0..400 {
            let n = 5 + (next(3) as usize); // 5..7
            let set_count = 2 + next(4) as usize;
            let sets: Vec<Vec<usize>> = (0..set_count)
                .map(|_| {
                    let size = 2 + next((n - 1) as u64) as usize;
                    let mut s: Vec<usize> =
                        (0..n).map(|_| next(n as u64) as usize).take(size).collect();
                    s.sort_unstable();
                    s.dedup();
                    s
                })
                .collect();
            let ours = consecutive_ones(n, &sets).is_some();
            let brute = consecutive_ones_brute(n, &sets);
            assert_eq!(ours, brute, "disagreement on n={n}, sets={sets:?}");
        }
    }

    #[test]
    fn frontier_is_a_permutation_after_many_reduces() {
        let sets = vec![vec![0, 1], vec![2, 3], vec![1, 2], vec![4, 5], vec![3, 4]];
        let order = consecutive_ones(6, &sets).expect("caterpillar");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }
}
