//! Induced-subgraph detection used by the C1 pruning rules.
//!
//! Interval graphs contain no induced chordless 4-cycle; the packing-class
//! search (paper §3.3) prunes nodes as soon as the fixed component edges form
//! one whose chords are fixed as comparability edges. This module provides
//! the detection primitives on plain [`DenseGraph`]s; the solver applies them
//! to its three-valued edge states through a thin adapter.

use crate::DenseGraph;

/// An induced chordless 4-cycle `a–b–c–d–a` (with `a–c`, `b–d` non-edges).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InducedC4 {
    /// The four cycle vertices in cycle order.
    pub cycle: [usize; 4],
}

/// Finds one induced `C4` in `g`, if any exists.
///
/// An induced `C4` certifies non-chordality (hence non-interval-ness). The
/// search is `O(n^2 · m)` over the dense representation, fine for solver-size
/// graphs.
///
/// # Example
///
/// ```
/// use recopack_graph::{induced::find_induced_c4, DenseGraph};
///
/// let c4 = DenseGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
/// assert!(find_induced_c4(&c4).is_some());
/// let diamond = DenseGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
/// assert!(find_induced_c4(&diamond).is_none());
/// ```
pub fn find_induced_c4(g: &DenseGraph) -> Option<InducedC4> {
    let n = g.vertex_count();
    // For each non-adjacent pair (a, c): two common neighbors b, d that are
    // themselves non-adjacent close an induced C4 a-b-c-d.
    for a in 0..n {
        for c in (a + 1)..n {
            if g.has_edge(a, c) {
                continue;
            }
            let common = g.neighbors(a).intersection(g.neighbors(c));
            let cands: Vec<usize> = common.iter().collect();
            for (i, &b) in cands.iter().enumerate() {
                for &d in &cands[..i] {
                    if !g.has_edge(b, d) {
                        return Some(InducedC4 {
                            cycle: [a, b, c, d],
                        });
                    }
                }
            }
        }
    }
    None
}

/// Whether `g` contains any induced chordless 4-cycle.
pub fn has_induced_c4(g: &DenseGraph) -> bool {
    find_induced_c4(g).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_cycle_is_found_and_valid() {
        let g = DenseGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let c4 = find_induced_c4(&g).expect("C4 exists");
        let [a, b, c, d] = c4.cycle;
        assert!(g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(c, d) && g.has_edge(d, a));
        assert!(!g.has_edge(a, c) && !g.has_edge(b, d));
    }

    #[test]
    fn chorded_cycle_is_clean() {
        let g = DenseGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]);
        assert!(!has_induced_c4(&g));
    }

    #[test]
    fn c4_inside_larger_graph() {
        // C4 on {2, 3, 4, 5} embedded in a 7-vertex graph.
        let g = DenseGraph::from_edges(7, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 2), (0, 6)]);
        assert!(has_induced_c4(&g));
    }

    #[test]
    fn c5_has_no_induced_c4() {
        let g = DenseGraph::from_edges(5, (0..5).map(|i| (i, (i + 1) % 5)));
        assert!(!has_induced_c4(&g));
    }

    #[test]
    fn empty_and_complete() {
        assert!(!has_induced_c4(&DenseGraph::new(6)));
        let mut k5 = DenseGraph::new(5);
        for v in 1..5 {
            for u in 0..v {
                k5.add_edge(u, v);
            }
        }
        assert!(!has_induced_c4(&k5));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn random_graph(n: usize, density: f64, seed: u64) -> DenseGraph {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(23);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut g = DenseGraph::new(n);
        for v in 1..n {
            for u in 0..v {
                if next() < density {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    fn has_induced_c4_brute(g: &DenseGraph) -> bool {
        let n = g.vertex_count();
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    for d in 0..n {
                        let distinct = a < c && b < d && a != b && a != d && b != c && c != d;
                        if distinct
                            && g.has_edge(a, b)
                            && g.has_edge(b, c)
                            && g.has_edge(c, d)
                            && g.has_edge(d, a)
                            && !g.has_edge(a, c)
                            && !g.has_edge(b, d)
                        {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn matches_brute_force(n in 1usize..9, seed in 0u64..200, d in 0.2f64..0.9) {
            let g = random_graph(n, d, seed);
            prop_assert_eq!(has_induced_c4(&g), has_induced_c4_brute(&g));
        }

        #[test]
        fn witness_is_always_valid(n in 4usize..10, seed in 0u64..100) {
            let g = random_graph(n, 0.5, seed);
            if let Some(c4) = find_induced_c4(&g) {
                let [a, b, c, d] = c4.cycle;
                prop_assert!(g.has_edge(a, b) && g.has_edge(b, c));
                prop_assert!(g.has_edge(c, d) && g.has_edge(d, a));
                prop_assert!(!g.has_edge(a, c) && !g.has_edge(b, d));
            }
        }
    }
}
